"""Dynamic happens-before trace sanitizer (the TSan half).

:mod:`repro.core.analysis.concurrency` proves races and deadlocks
*possible* from the plan; this package confirms them on a concrete
traced schedule. Feed any :class:`~repro.obs.tracer.Tracer` that
observed a workflow run to :func:`sanitize_tracer` — or pass
``--sanitize`` to ``repro run`` / ``repro chaos`` — and conflicting
accesses come back as SAN001-003 diagnostics with the same
suppression and ``--format json`` conventions as ``repro lint``.
"""

from repro.sanitize.checker import (
    HappensBeforeChecker,
    sanitize_tracer,
)
from repro.sanitize.vclock import VectorClock

__all__ = [
    "HappensBeforeChecker",
    "VectorClock",
    "sanitize_tracer",
]
