"""Happens-before checker over obs tracer events.

The dynamic half of the concurrency analyzer
(:mod:`repro.core.analysis.concurrency` is the static half): given a
traced run — ``repro run --sanitize`` / ``repro chaos --sanitize`` or
any :class:`~repro.obs.tracer.Tracer` holding ``workflow.task`` spans
— rebuild the run's happens-before order with vector clocks and
report the conflicting accesses that actually happened, as SAN001-003
diagnostics.

Happens-before edges mirror the runtime's real synchronization:

* program order — attempt *n+1* of a task sees everything attempt *n*
  saw;
* dataflow — a task attempt that reads an object synchronizes with
  the write that *produced* the object in the current lineage epoch
  (the dependency edge the dispatcher enforces). Later in-place
  rewrites of the object (``updates``) create **no** edge — exactly
  the hazard the sanitizer exists to catch.

Chaos lineage re-execution means one task legitimately writes the
same object several times. Each producer re-write opens a new *epoch*
for the object and accesses are only compared within an epoch, so
recovery replays do not show up as false races.

SAN003 audits the ``workflow.resource`` instants: worker-slot
occupancy reconstructed from request/release/reset events must stay
within ``[0, capacity]`` and drain to zero (or a crash reset) by the
end of the run.

All findings are emitted in a deterministic order with deterministic
messages, so sanitizer reports of seeded replays are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.analysis.diagnostics import Diagnostics
from repro.sanitize.vclock import VectorClock

#: Tracer categories consumed by the checker.
TASK_CATEGORY = "workflow.task"
RESOURCE_EVENT_CATEGORY = "workflow.resource"


@dataclass
class _ObjectState:
    """Per-object access history, split by lineage epoch."""

    first_writer: Optional[str] = None
    epoch: int = 0
    #: epoch -> clock of the epoch-opening (producing) write
    producing: Dict[int, VectorClock] = field(default_factory=dict)
    #: epoch -> [(task, attempt, clock)] for every write
    writes: Dict[int, List[Tuple[str, int, VectorClock]]] = field(
        default_factory=dict
    )
    #: epoch -> [(task, attempt, clock)] for every read
    reads: Dict[int, List[Tuple[str, int, VectorClock]]] = field(
        default_factory=dict
    )


class HappensBeforeChecker:
    """Replays task-attempt events and flags HB violations."""

    def __init__(self, diagnostics: Optional[Diagnostics] = None):
        self.diagnostics = (
            diagnostics if diagnostics is not None else Diagnostics()
        )
        self._attempts: Dict[str, int] = {}
        self._clocks: Dict[str, VectorClock] = {}
        self._objects: Dict[str, _ObjectState] = {}
        self._reported: Set[Tuple[str, str, str, str]] = set()
        self._occupancy: Dict[str, int] = {}
        self._capacity: Dict[str, int] = {}

    # -- data accesses -------------------------------------------------

    def _report(self, code: str, obj: str, task_a: str, task_b: str,
                message: str) -> None:
        first, second = sorted((task_a, task_b))
        key = (code, obj, first, second)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.error(
            code, message, anchor=obj, analysis="sanitize",
        )

    def observe_attempt(self, task: str, reads: List[str],
                        writes: List[str]) -> None:
        """Feed one *successful* task attempt, in completion order."""
        attempt = self._attempts.get(task, 0) + 1
        self._attempts[task] = attempt
        clock = self._clocks.get(task, VectorClock()).copy()
        read_set = [str(obj) for obj in reads]
        write_set = [str(obj) for obj in writes]
        for obj in read_set:
            state = self._objects.get(obj)
            if state is not None:
                producing = state.producing.get(state.epoch)
                if producing is not None:
                    clock.join(producing)
        clock.tick(task, attempt)
        self._clocks[task] = clock

        for obj in read_set:
            state = self._objects.setdefault(obj, _ObjectState())
            for writer, w_attempt, w_clock in state.writes.get(
                state.epoch, ()
            ):
                if writer != task and clock.concurrent(w_clock):
                    self._report(
                        "SAN002", obj, task, writer,
                        f"task {task!r} (attempt {attempt}) read "
                        f"{obj!r} concurrently with a write by "
                        f"{writer!r} (attempt {w_attempt})",
                    )
            state.reads.setdefault(state.epoch, []).append(
                (task, attempt, clock)
            )

        for obj in write_set:
            state = self._objects.setdefault(obj, _ObjectState())
            if state.first_writer is None:
                state.first_writer = task
            elif (
                task == state.first_writer
                and state.epoch in state.producing
            ):
                # lineage re-execution of the producer: new epoch
                state.epoch += 1
            if task == state.first_writer:
                state.producing[state.epoch] = clock
            for writer, w_attempt, w_clock in state.writes.get(
                state.epoch, ()
            ):
                if writer != task and clock.concurrent(w_clock):
                    self._report(
                        "SAN001", obj, task, writer,
                        f"tasks {min(task, writer)!r} and "
                        f"{max(task, writer)!r} wrote {obj!r} "
                        f"concurrently (last writer wins)",
                    )
            for reader, r_attempt, r_clock in state.reads.get(
                state.epoch, ()
            ):
                if reader != task and clock.concurrent(r_clock):
                    self._report(
                        "SAN002", obj, reader, task,
                        f"task {reader!r} (attempt {r_attempt}) read "
                        f"{obj!r} concurrently with a write by "
                        f"{task!r} (attempt {attempt})",
                    )
            state.writes.setdefault(state.epoch, []).append(
                (task, attempt, clock)
            )

    # -- resource occupancy --------------------------------------------

    def observe_resource(self, op: str, resource: str, units: int,
                         capacity: int) -> None:
        """Feed one request/release/reset instant, in trace order."""
        self._capacity[resource] = capacity
        held = self._occupancy.get(resource, 0)
        if op == "request":
            held += units
            if held > capacity:
                self.diagnostics.error(
                    "SAN003",
                    f"resource {resource!r} over-committed: "
                    f"{held}/{capacity} units requested",
                    anchor=resource, analysis="sanitize",
                )
        elif op == "release":
            held -= units
            if held < 0:
                self.diagnostics.error(
                    "SAN003",
                    f"resource {resource!r} released {units} units "
                    f"while holding {held + units}",
                    anchor=resource, analysis="sanitize",
                )
                held = 0
        elif op == "reset":
            held = 0
        self._occupancy[resource] = held

    def finish(self) -> Diagnostics:
        """Close the run: leftover occupancy is an imbalance."""
        for resource in sorted(self._occupancy):
            held = self._occupancy[resource]
            if held > 0:
                self.diagnostics.error(
                    "SAN003",
                    f"resource {resource!r} still holds {held} "
                    f"unreleased units at the end of the run",
                    anchor=resource, analysis="sanitize",
                )
        return self.diagnostics


def sanitize_tracer(
    tracer, diagnostics: Optional[Diagnostics] = None
) -> Diagnostics:
    """Run the happens-before checker over a tracer's events.

    Consumes ``workflow.task`` spans carrying ``reads``/``writes``
    args (emitted by the workflow servers) and ``workflow.resource``
    instants, in recording order — which for simulated runs is
    completion order, so seeded replays sanitize identically.
    """
    checker = HappensBeforeChecker(diagnostics)
    for event in tracer.events:
        if (
            event.phase == "X"
            and event.category == TASK_CATEGORY
            and "task" in event.args
            and "writes" in event.args
        ):
            checker.observe_attempt(
                str(event.args["task"]),
                list(event.args.get("reads", ())),
                list(event.args["writes"]),
            )
        elif (
            event.phase == "i"
            and event.category == RESOURCE_EVENT_CATEGORY
        ):
            checker.observe_resource(
                str(event.args.get("op", "")),
                str(event.args.get("resource", "")),
                int(event.args.get("units", 0)),
                int(event.args.get("capacity", 0)),
            )
    return checker.finish()
