"""Vector clocks for the happens-before trace sanitizer.

A :class:`VectorClock` maps a task name to the number of that task's
attempts known to have happened before the carrier. Clocks are
immutable-by-convention: callers :meth:`copy` before mutating, so one
attempt's clock can be joined into many successors safely.
"""

from __future__ import annotations

from typing import Dict


class VectorClock:
    """A task-name -> attempt-count logical clock."""

    __slots__ = ("components",)

    def __init__(self, components: Dict[str, int] = None):
        self.components: Dict[str, int] = dict(components or {})

    def copy(self) -> "VectorClock":
        """Independent clone of this clock."""
        return VectorClock(self.components)

    def tick(self, task: str, attempt: int) -> "VectorClock":
        """Advance the carrier task's own component; returns self."""
        self.components[task] = max(
            self.components.get(task, 0), attempt
        )
        return self

    def join(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum with ``other``; returns self."""
        for task, count in other.components.items():
            if count > self.components.get(task, 0):
                self.components[task] = count
        return self

    def dominates(self, other: "VectorClock") -> bool:
        """True when every component of ``other`` is <= ours."""
        return all(
            count <= self.components.get(task, 0)
            for task, count in other.components.items()
        )

    def concurrent(self, other: "VectorClock") -> bool:
        """True when neither clock happens-before the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{task}:{count}"
            for task, count in sorted(self.components.items())
        )
        return f"VC({inner})"
