"""Command-line interface to the EVEREST SDK.

Subcommands::

    python -m repro compile  KERNELS.edsl [--strategy ...] [--workers N]
    python -m repro synth    KERNELS.edsl --kernel NAME [--unroll N]
    python -m repro explore  KERNELS.edsl --kernel NAME [--workers N]
    python -m repro perf     KERNELS.edsl --kernel NAME [--format json]
    python -m repro emit     KERNELS.edsl --kernel NAME --what sycl|rtl|ir
    python -m repro lint     SPEC [--incremental] [--stats] [--workers N]
    python -m repro chaos    --graph-seed N --fault-seed M [--verify-replay]
    python -m repro run      SPEC [--trace PATH]
    python -m repro trace    SPEC --out trace.json [--clock logical|wall]
    python -m repro metrics  SPEC [--format text|json]
    python -m repro cache    stats|clear [--cache-dir PATH]
    python -m repro runs     list|show|gc [RUN_ID] [--journal-dir PATH]
    python -m repro service  init|submit|status|launch|cancel [--db PATH]
    python -m repro info

``service`` is the multi-tenant workflow service: a durable
SQLite-backed job store shared by independent sessions, bulk
submission of tagged jobs (``submit``), state queries (``status``),
and leasing launchers (``launch``) that drain the ready queue with
heartbeat-protected leases — a killed launcher's jobs are re-leased,
never lost. See ``docs/SERVICE.md`` for the operator guide.

``chaos`` and ``run`` accept ``--journal-dir``/``--run-id`` to make
the execution durable (a write-ahead journal plus periodic snapshots
under the run store) and ``--resume RUN_ID`` to pick a killed run back
up: the recipe is reloaded from the store, the journal is replayed,
and only work that never reached its journaled execution point is
re-executed — the resumed trace digest is byte-identical to an
unbroken run. ``repro runs`` inspects and garbage-collects the store.

Commands that price design points (compile, explore, synth, emit, run,
trace, metrics) share a persistent content-addressed cost cache
(``~/.cache/repro-dse`` unless ``--cache-dir``/``--no-cache`` says
otherwise), so repeated invocations skip HLS re-synthesis of
already-priced variants. ``repro cache stats|clear`` inspects it.

``KERNELS.edsl`` is a file of kernel-DSL source (see
:mod:`repro.core.dsl.kernel_dsl`); a ``.py`` file embedding kernel-DSL
strings works everywhere a spec is accepted. The CLI is a thin veneer
over the library API, intended for quick experiments and the examples
in the README. The full flag reference is ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.dse.cost_model import (
    ArchitectureModel,
    prepare_variant_module,
)
from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.core.ir.digest import module_digest
from repro.core.dsl.kernel_dsl import compile_kernel, kernel_names
from repro.core.variants import VariantKnobs
from repro.utils.tables import Table


def _read_source(path: str) -> str:
    """Kernel-DSL text of ``path``.

    ``.edsl`` files are taken verbatim; for Python files the embedded
    kernel-DSL strings are extracted, so the same example specs work
    for every subcommand.
    """
    from repro.obs.driver import load_kernel_sources

    return "\n".join(load_kernel_sources(path))


def _space_by_name(name: str) -> DesignSpace:
    if name == "small":
        return DesignSpace.small()
    if name == "thorough":
        return DesignSpace.thorough()
    raise SystemExit(f"unknown space {name!r}; use small or thorough")


def _configure_dse_caches(args: argparse.Namespace) -> None:
    """Install the persistent cost cache the flags ask for.

    Default: the shared on-disk store at
    :func:`repro.core.dse.cache.default_cache_dir`, so repeated CLI
    invocations reuse each other's synthesis work. ``--no-cache``
    falls back to a memory-only cache; ``--cache-dir`` relocates it.
    """
    from repro.core.dse import cache as dse_cache

    if getattr(args, "no_cache", False):
        dse_cache.configure(cache_dir=None)
        return
    directory = getattr(args, "cache_dir", None)
    dse_cache.configure(
        cache_dir=directory or dse_cache.default_cache_dir()
    )


def cmd_compile(args: argparse.Namespace) -> int:
    """Explore every kernel in the spec; print a variant table."""
    _configure_dse_caches(args)
    source = _read_source(args.file)
    module = compile_kernel(source)
    space = _space_by_name(args.space)
    table = Table(
        f"compilation report ({args.file})",
        ["kernel", "points", "feasible", "front", "best latency us",
         "best energy uJ"],
    )
    digest = module_digest(module)
    for name in kernel_names(source):
        explorer = Explorer(module, name, space, workers=args.workers,
                            workers_mode=args.workers_mode,
                            digest=digest)
        result = explorer.run(args.strategy)
        best_latency = result.best_latency()
        best_energy = result.best_energy()
        table.add_row(
            name,
            result.evaluations,
            len(result.feasible),
            len(result.front),
            best_latency.cost.latency_s * 1e6,
            best_energy.cost.energy_j * 1e6,
        )
    table.show()
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    """Print the HLS report for one kernel."""
    from repro.core.hls.bambu import HLSOptions, synthesize
    from repro.core.hls.scheduling import ResourceBudget

    _configure_dse_caches(args)
    source = _read_source(args.file)
    module = compile_kernel(source)
    knobs = VariantKnobs(
        target="fpga", unroll=args.unroll,
        clock_hz=args.clock_mhz * 1e6,
    )
    prepared = prepare_variant_module(module, args.kernel, knobs,
                                      module_digest(module))
    design = synthesize(
        prepared, args.kernel,
        HLSOptions(
            clock_hz=args.clock_mhz * 1e6,
            budget=ResourceBudget(
                fadd=4 * args.unroll, fmul=4 * args.unroll,
            ),
        ),
    )
    print(design.report())
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Print the design-space table for one kernel."""
    from repro.core.dse import cost_cache

    _configure_dse_caches(args)
    source = _read_source(args.file)
    module = compile_kernel(source)
    space = _space_by_name(args.space)
    explorer = Explorer(module, args.kernel, space,
                        workers=args.workers,
                        workers_mode=args.workers_mode,
                        bound_guided=getattr(args, "bound_guided",
                                             False))
    before = cost_cache().stats.snapshot()
    result = explorer.run(args.strategy)
    table = Table(
        f"design space of {args.kernel!r} "
        f"({result.evaluations} points, {args.strategy})",
        ["variant", "latency us", "energy uJ", "feasible", "on front"],
    )
    front_ids = {v.variant_id for v in result.front}
    for variant in result.evaluated:
        table.add_row(
            variant.knobs.describe(),
            variant.cost.latency_s * 1e6,
            variant.cost.energy_j * 1e6,
            variant.cost.feasible,
            variant.variant_id in front_ids,
        )
    table.show()
    delta = cost_cache().stats.delta(before)
    if delta.lookups:
        print(
            f"cost cache: {delta.hits}/{delta.lookups} hits "
            f"({100.0 * delta.hits / delta.lookups:.0f}%)"
        )
    if getattr(args, "bound_guided", False):
        print(
            f"bound-guided: skipped {explorer._bound_pruned} points "
            f"proved off-front by their analytic lower bound"
        )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Static performance report (analytic bounds) for one kernel."""
    import json as json_module

    from repro.core.analysis.cache import (
        configure_analysis_cache,
        default_analysis_cache_dir,
    )
    from repro.core.analysis.perf import kernel_bounds

    # Bounds persist in the same store ``repro lint --incremental``
    # uses, so a warm report (or a later bound-guided exploration of
    # the unchanged kernel) skips the derivation entirely.
    if getattr(args, "no_cache", False):
        configure_analysis_cache(cache_dir=None)
    else:
        configure_analysis_cache(
            cache_dir=getattr(args, "cache_dir", None)
            or default_analysis_cache_dir()
        )
    source = _read_source(args.file)
    module = compile_kernel(source)
    bounds = kernel_bounds(module, args.kernel)
    if bounds is None:
        raise SystemExit(
            f"no kernel named {args.kernel!r} in {args.file}"
        )
    if args.format == "json":
        print(json_module.dumps(
            bounds.to_payload(), indent=2, sort_keys=True,
        ))
        return 0

    ports = {
        info.buffer: info.ports("auto", 1) for info in bounds.buffers
    }
    cycle_floor = 0
    nest_rows = []
    for nest in bounds.nests:
        if nest.trip <= 0:
            continue
        ii = nest.min_ii(1, ports)
        cycles = nest.outer_iters * (1 + (nest.trip - 1) * ii)
        cycle_floor += cycles
        ops = sum(nest.ops.values()) * nest.total_iters
        nest_rows.append((
            nest.anchor, nest.depth, nest.trip, nest.outer_iters,
            ii, nest.chain_latency, ops, cycles,
        ))

    summary = Table(
        f"static bounds for {args.kernel!r}",
        ["property", "value"],
    )
    summary.add_row("verdict", f"{bounds.verdict} ({bounds.binding})")
    summary.add_row("work (flops est.)", bounds.work)
    summary.add_row("tensor data bytes", bounds.data_bytes)
    summary.add_row("streamed arg bytes", bounds.arg_bytes)
    summary.add_row("cycle floor @ defaults", cycle_floor)
    for op_class in sorted(bounds.op_counts):
        summary.add_row(
            f"ops[{op_class}]", bounds.op_counts[op_class]
        )
    summary.show()

    nests = Table(
        "loop-nest bounds (unroll 1)",
        ["nest", "depth", "trip", "outer iters", "II floor",
         "rec chain", "ops", "cycle floor"],
    )
    for row in nest_rows:
        nests.add_row(*row)
    nests.show()

    traffic = Table(
        "buffer traffic per invocation",
        ["buffer", "access sites", "bytes naive", "bytes moved",
         "reuse credit"],
    )
    for record in bounds.traffic:
        saved = record.bytes_naive - record.bytes_moved
        ratio = (
            saved / record.bytes_naive if record.bytes_naive else 0.0
        )
        traffic.add_row(
            record.buffer, record.accesses, record.bytes_naive,
            record.bytes_moved, f"{ratio:.0%}",
        )
    traffic.show()
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    """Print IR / lowered IR / SYCL / RTL for one kernel."""
    _configure_dse_caches(args)
    source = _read_source(args.file)
    module = compile_kernel(source)
    if args.what == "ir":
        from repro.core.ir import print_module

        print(print_module(module))
        return 0
    knobs = (
        VariantKnobs(target="cpu", threads=4)
        if args.what == "sycl"
        else VariantKnobs(target="fpga", unroll=args.unroll)
    )
    prepared = prepare_variant_module(module, args.kernel, knobs,
                                      module_digest(module))
    if args.what == "sycl":
        from repro.core.backend.sycl_gen import generate_sycl

        print(generate_sycl(prepared, args.kernel))
    elif args.what == "rtl":
        from repro.core.hls.bambu import HLSOptions, synthesize

        design = synthesize(prepared, args.kernel, HLSOptions())
        print(design.rtl())
    elif args.what == "lowered-ir":
        from repro.core.ir import print_module

        print(print_module(prepared))
    else:
        raise SystemExit(f"unknown emit target {args.what!r}")
    return 0


def _chaos_run(args: argparse.Namespace, journal=None, resume=None):
    """One deterministic chaos run for the given seed pair."""
    from repro.chaos import (
        ChaosConfig,
        generate_schedule,
        random_task_graph,
    )
    from repro.workflow import ResilientServer, Worker
    from repro.workflow.scheduler import make_policy

    graph = random_task_graph(args.graph_seed, num_tasks=args.tasks)
    workers = [
        Worker(f"w{index}", node_name=f"n{index}", cpus=2)
        for index in range(args.workers)
    ]
    config = ChaosConfig(
        crashes=args.crashes,
        link_faults=args.link_faults,
        reconfig_faults=args.reconfig_faults,
        stragglers=args.stragglers,
        task_faults=args.task_faults,
    )
    schedule = generate_schedule(
        graph, [worker.name for worker in workers],
        args.fault_seed, config,
    )
    server = ResilientServer(workers, policy=make_policy(args.policy))
    trace, stats = server.run(
        graph, chaos=schedule, journal=journal, resume=resume,
    )
    return graph, schedule, trace, stats


#: The argparse fields that fully determine a chaos run — persisted in
#: the run store's meta.json and restored verbatim on --resume.
_CHAOS_RECIPE_KEYS = (
    "graph_seed", "fault_seed", "tasks", "workers", "policy",
    "crashes", "link_faults", "reconfig_faults", "stragglers",
    "task_faults",
)

#: Ditto for `repro run` deployments.
_RUN_RECIPE_KEYS = ("file", "strategy", "clock", "workers",
                    "workers_mode")


def _open_durable_run(args: argparse.Namespace, kind: str,
                      recipe_keys) -> tuple:
    """Resolve the journal flags into ``(run_id, journal, resume)``.

    With ``--resume`` the run's persisted recipe overwrites the
    matching argparse fields, so the caller rebuilds the exact graph /
    pool / schedule the journal was written against. With
    ``--journal-dir`` / ``--run-id`` a fresh durable run is registered
    (recipe first, then journal) before any execution. Without any of
    the flags, returns ``(None, None, None)`` — plain volatile run.
    """
    from repro.workflow import RunStore

    if not (args.journal_dir or args.run_id or args.resume):
        return None, None, None
    store = RunStore(args.journal_dir)
    if args.resume:
        meta, state, journal = store.prepare_resume(
            args.resume, snapshot_every=args.snapshot_every,
        )
        if meta.get("kind") != kind:
            journal.close()
            raise SystemExit(
                f"run {args.resume!r} was recorded by "
                f"`repro {meta.get('kind')}`; resume it there"
            )
        for key, value in meta.get("meta", {}).items():
            setattr(args, key, value)
        return args.resume, journal, state
    recipe = {key: getattr(args, key) for key in recipe_keys}
    run_id, journal = store.create_run(
        kind, recipe, run_id=args.run_id,
        snapshot_every=args.snapshot_every,
    )
    return run_id, journal, None


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over DSL files, examples and workflow specs.

    Exit codes: 0 — no errors (warnings/notes allowed); 1 — at least
    one error-severity finding; 2 — a spec could not be loaded at all.

    Output is deterministic: files expand in sorted order and findings
    render fully sorted, so the same tree produces byte-identical
    reports on every run and every ``--workers`` count. With
    ``--incremental`` the per-file results are memoized (keyed by path,
    contents and selected checks) in a persistent store, so a warm run
    skips parsing, compiling and analyzing unchanged specs entirely;
    hit/miss traffic goes to stderr and the metrics registry, keeping
    stdout identical to a cold run.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.analysis import (
        ALL_CHECKS,
        ANALYSIS_CATEGORY,
        CONCURRENCY_CHECKS,
        Diagnostics,
        analyze_module,
        lint_concurrency_spec,
    )
    from repro.core.analysis.cache import (
        AnalysisCache,
        configure_analysis_cache,
        default_analysis_cache_dir,
    )
    from repro.core.analysis.specs import (
        expand_spec_files,
        load_targets_from_text,
        read_spec_text,
    )
    from repro.core.analysis.wfcheck import lint_workflow_spec
    from repro.core.ir.verifier import verify_diagnostics
    from repro.obs import Observation, current_metrics, observe
    from repro.obs.tracer import Tracer

    workflow_checks = ("wf",) + CONCURRENCY_CHECKS
    known = set(ALL_CHECKS) | set(workflow_checks)
    selected = set()
    for entry in args.only or ():
        for token in entry.split(","):
            token = token.strip().lower()
            if token:
                selected.add(token)
    unknown = selected - known
    if unknown:
        print(
            f"repro lint: error: unknown check(s) {sorted(unknown)}; "
            f"choose from {sorted(known)}",
            file=sys.stderr,
        )
        return 2
    module_checks = (
        selected & set(ALL_CHECKS) if selected else set(ALL_CHECKS)
    )
    wf_selected = "wf" in selected if selected else True
    conc_checks = (
        selected & set(CONCURRENCY_CHECKS)
        if selected
        else set(CONCURRENCY_CHECKS)
    )

    files: List[str] = []
    for path in args.paths:
        files.extend(expand_spec_files(path))

    cache = None
    if getattr(args, "incremental", False):
        cache_dir = (
            None if getattr(args, "no_cache", False)
            else (getattr(args, "cache_dir", None)
                  or default_analysis_cache_dir())
        )
        cache = configure_analysis_cache(cache_dir=cache_dir)
    check_signature = "|".join((
        ",".join(sorted(module_checks)),
        "wf" if wf_selected else "",
        ",".join(sorted(conc_checks)),
    ))

    def lint_file(path: str):
        """(diagnostics, target count, cache hit?) for one spec file."""
        diagnostics = Diagnostics()
        text = read_spec_text(path, diagnostics)
        if text is None:
            return diagnostics, 0, False
        key = None
        if cache is not None:
            # The path is part of the key: loader diagnostics anchor
            # on it, so one file's findings must never replay for an
            # identical copy elsewhere in the tree.
            key = AnalysisCache.source_key(
                f"{path}\x1f{text}", (check_signature,)
            )
            payload = cache.get(key)
            if payload is not None:
                return (
                    Diagnostics.from_dicts(
                        payload.get("diagnostics", [])
                    ),
                    int(payload.get("targets", 0)),
                    True,
                )
        targets = load_targets_from_text(path, text, diagnostics)
        for target in targets:
            try:
                if target.kind == "module":
                    if module_checks:
                        verify_diagnostics(target.module, diagnostics)
                        analyze_module(
                            target.module, diagnostics,
                            checks=sorted(module_checks),
                        )
                elif target.kind == "workflow":
                    if wf_selected:
                        lint_workflow_spec(target.spec, diagnostics)
                    if conc_checks:
                        lint_concurrency_spec(
                            target.spec, diagnostics,
                            checks=sorted(conc_checks),
                        )
            except Exception as exc:  # a crash must not hide the rest
                diagnostics.error(
                    "DSL001", f"cannot lint target: {exc}",
                    anchor=target.name, analysis="loader",
                )
        if key is not None:
            cache.put(key, {
                "diagnostics": [
                    item.to_dict() for item in diagnostics
                ],
                "targets": len(targets),
            })
        return diagnostics, len(targets), False

    stats_observation = None
    workers = max(1, getattr(args, "workers", 1))
    if getattr(args, "stats", False):
        # Per-pass timings need an enabled ambient tracer, which is
        # not safe to share across worker threads — stats runs serial.
        stats_observation = Observation(tracer=Tracer(enabled=True))
        workers = 1

    def run_files():
        if workers > 1 and len(files) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lint_file, files))
        return [lint_file(path) for path in files]

    if stats_observation is not None:
        with observe(stats_observation):
            outcomes = run_files()
    else:
        outcomes = run_files()

    diagnostics = Diagnostics()
    total_targets = 0
    hits = misses = 0
    for file_diagnostics, count, hit in outcomes:
        diagnostics.extend(file_diagnostics)
        total_targets += count
        if hit:
            hits += 1
        else:
            misses += 1

    if cache is not None:
        metrics = current_metrics()
        metrics.counter(
            "analysis.cache_hits", "analysis cache hits",
        ).inc(hits, layer="source")
        metrics.counter(
            "analysis.cache_misses", "analysis cache misses",
        ).inc(misses, layer="source")

    load_failed = any(
        item.analysis == "loader" for item in diagnostics.errors
    )
    if args.suppress:
        diagnostics = diagnostics.suppress(args.suppress)
    if args.format == "json":
        print(diagnostics.to_json(indent=2))
    else:
        targets_word = (
            f"{total_targets} "
            f"target{'s' if total_targets != 1 else ''}"
        )
        print(diagnostics.render_text(f"lint: {targets_word}"))
    if cache is not None:
        lookups = hits + misses
        ratio = hits / lookups if lookups else 0.0
        print(
            f"analysis cache: {hits} hits, {misses} misses "
            f"({ratio:.0%} hit ratio)",
            file=sys.stderr,
        )
    if stats_observation is not None:
        durations = stats_observation.tracer.total_durations(
            ANALYSIS_CATEGORY
        )
        table = Table(
            "analysis passes", ["pass", "total s"],
        )
        for name in sorted(durations):
            table.add_row(name, durations[name])
        if not durations:
            table.add_row("(all results cached)", 0.0)
        print(table.render(), file=sys.stderr)
    if load_failed:
        return 2
    return 1 if diagnostics.has_errors else 0


def _print_sanitize_report(tracer, args, header: str) -> int:
    """Render the happens-before report; returns the exit code."""
    from repro.sanitize import sanitize_tracer

    findings = sanitize_tracer(tracer)
    suppress = getattr(args, "suppress", None)
    if suppress:
        findings = findings.suppress(suppress)
    if getattr(args, "format", "text") == "json":
        print(findings.to_json(indent=2))
    else:
        print(findings.render_text(header))
    return 1 if findings.has_errors else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replay a seeded chaos scenario and report the outcome."""
    from repro.obs import observe, session

    run_id, journal, resume = _open_durable_run(
        args, "chaos", _CHAOS_RECIPE_KEYS
    )
    if resume is not None and resume.finished:
        journal.close()
        print(f"run {run_id} already complete: "
              f"trace digest {resume.digest}")
        return 0
    obs = None
    try:
        if args.trace or args.sanitize:
            obs = session(deterministic=True)
            with observe(obs):
                graph, schedule, trace, stats = _chaos_run(
                    args, journal=journal, resume=resume,
                )
            if args.trace:
                obs.tracer.write(args.trace)
        else:
            graph, schedule, trace, stats = _chaos_run(
                args, journal=journal, resume=resume,
            )
    finally:
        if journal is not None:
            journal.close()
    sanitize_header = (
        f"sanitize: chaos graph-seed={args.graph_seed} "
        f"fault-seed={args.fault_seed}"
    )
    if args.json:
        print(trace.to_json())
        if args.sanitize:
            return _print_sanitize_report(
                obs.tracer, args, sanitize_header
            )
        return 0
    table = Table(
        f"chaos run graph-seed={args.graph_seed} "
        f"fault-seed={args.fault_seed} ({schedule.describe()})",
        ["metric", "value"],
    )
    table.add_row("tasks completed",
                  f"{len({r.task for r in trace.records})}/{len(graph)}")
    table.add_row("makespan s", f"{trace.makespan:.4f}")
    for kind, count in sorted(trace.faults_by_kind().items()):
        table.add_row(f"fault: {kind}", count)
    for action, count in sorted(trace.recoveries_by_action().items()):
        table.add_row(f"recovery: {action}", count)
    table.add_row("retries", stats.retries)
    table.add_row("backoff seconds", f"{stats.backoff_seconds:.3f}")
    table.add_row("trace digest", trace.digest())
    table.show()
    if run_id:
        print(f"run id: {run_id}")
    if args.verify_replay:
        _graph2, _schedule2, replay, _stats2 = _chaos_run(args)
        if replay.to_json() != trace.to_json():
            print("REPLAY MISMATCH: the same seed pair produced a "
                  "different trace")
            return 1
        print(f"replay verified: identical trace ({trace.digest()})")
    if args.trace:
        print(f"chrome trace written to {args.trace}")
    if args.sanitize:
        return _print_sanitize_report(obs.tracer, args, sanitize_header)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Compile a spec and deploy it on the reference ecosystem."""
    from repro.obs.driver import run_traced

    run_id, journal, resume = _open_durable_run(
        args, "run", _RUN_RECIPE_KEYS
    )
    if resume is not None and resume.finished:
        journal.close()
        print(f"run {run_id} already complete: "
              f"trace digest {resume.digest}")
        return 0
    _configure_dse_caches(args)
    try:
        run = run_traced(
            args.file, clock=args.clock, strategy=args.strategy,
            workers=args.workers, workers_mode=args.workers_mode,
            journal=journal, resume=resume,
        )
    finally:
        if journal is not None:
            journal.close()
    report = run.report
    table = Table(
        f"deployment of {args.file}",
        ["task", "placed on", "variant"],
    )
    for task_name in sorted(report.placement):
        table.add_row(
            task_name,
            report.placement[task_name],
            report.selections.get(task_name, "-"),
        )
    table.show()
    print(f"makespan: {report.makespan * 1e3:.4f} ms  "
          f"energy: {report.energy.total_joules:.4f} J  "
          f"trace digest: {report.trace.digest()}")
    if run_id:
        print(f"run id: {run_id}")
    if args.trace:
        run.observation.tracer.write(args.trace)
        print(f"chrome trace written to {args.trace}")
    if args.sanitize:
        return _print_sanitize_report(
            run.observation.tracer, args, f"sanitize: {args.file}"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a spec end to end and export the Chrome trace."""
    from repro.obs import validate_chrome_trace
    from repro.obs.driver import run_traced

    _configure_dse_caches(args)
    run = run_traced(
        args.file, clock=args.clock, strategy=args.strategy,
        workers=args.workers, workers_mode=args.workers_mode,
    )
    tracer = run.observation.tracer
    problems = validate_chrome_trace(tracer.to_chrome())
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    tracer.write(args.out)
    spans = sum(1 for e in tracer.events if e.phase == "X")
    instants = sum(1 for e in tracer.events if e.phase == "i")
    counters = sum(1 for e in tracer.events if e.phase == "C")
    print(f"{args.out}: {spans} spans, {instants} instants, "
          f"{counters} counter samples ({args.clock} clock)")
    print("open it in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a spec end to end and print the metrics snapshot."""
    from repro.obs.driver import run_traced

    _configure_dse_caches(args)
    run = run_traced(args.file, strategy=args.strategy,
                     workers=args.workers,
                     workers_mode=args.workers_mode)
    metrics = run.observation.metrics
    if args.format == "json":
        print(metrics.to_json(indent=2))
    else:
        print(metrics.render_text(f"metrics: {args.file}"))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent DSE and analysis caches."""
    from repro.core.analysis import cache as analysis_cache_module
    from repro.core.dse import cache as dse_cache

    directory = args.cache_dir or dse_cache.default_cache_dir()
    store = dse_cache.CostCache(directory=directory)
    analysis_dir = (
        args.cache_dir
        or analysis_cache_module.default_analysis_cache_dir()
    )
    analysis_store = analysis_cache_module.AnalysisCache(
        directory=analysis_dir
    )
    if args.action == "stats":
        table = Table(
            "DSE cost cache",
            ["property", "value"],
        )
        table.add_row("directory", str(directory))
        table.add_row("entries", store.entry_count())
        table.add_row("disk bytes", store.disk_bytes())
        table.show()
        table = Table(
            "analysis cache",
            ["property", "value"],
        )
        table.add_row("directory", str(analysis_dir))
        table.add_row("entries", analysis_store.entry_count())
        table.add_row("disk bytes", analysis_store.disk_bytes())
        breakdown = analysis_store.breakdown()
        for kind in sorted(breakdown):
            row = breakdown[kind]
            table.add_row(f"{kind} entries", row["entries"])
            table.add_row(f"{kind} disk bytes", row["disk_bytes"])
        table.show()
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached cost entries from {directory}")
        removed = analysis_store.clear()
        print(
            f"cleared {removed} cached analysis entries from "
            f"{analysis_dir}"
        )
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


def cmd_runs(args: argparse.Namespace) -> int:
    """List, inspect or garbage-collect durable journaled runs."""
    from repro.workflow import RunStore

    store = RunStore(args.journal_dir)
    if args.action == "list":
        rows = store.list_runs()
        table = Table(
            f"durable runs in {store.root}",
            ["run id", "kind", "status", "records", "attempts",
             "digest"],
        )
        for row in rows:
            table.add_row(
                row.run_id, row.kind, row.status,
                row.info.records_total, row.attempts,
                row.state.digest or "-",
            )
        table.show()
        return 0
    if args.action == "show":
        if not args.run_id:
            raise SystemExit("repro runs show needs a RUN_ID")
        meta = store.load_meta(args.run_id)
        state, info = store.load_state(args.run_id)
        table = Table(f"run {args.run_id}", ["property", "value"])
        table.add_row("kind", meta.get("kind", "?"))
        table.add_row("attempts", meta.get("attempts", 1))
        table.add_row(
            "status", "complete" if state.finished else "in-flight"
        )
        table.add_row("journal records", info.records_total)
        table.add_row("replayed after snapshot", info.records_replayed)
        table.add_row(
            "snapshot seq",
            info.snapshot_seq if info.snapshot_seq >= 0 else "-",
        )
        table.add_row("torn tail", info.torn_tail)
        table.add_row("payload executions",
                      sum(state.exec_counts.values()))
        table.add_row("task completions", state.total_completions())
        table.add_row("faults seen", state.faults)
        table.add_row("recoveries", state.recoveries)
        table.add_row("checkpoints", len(state.checkpoints))
        table.add_row("sim time s", f"{state.last_time:.4f}")
        table.add_row("digest", state.digest or "-")
        for key, value in sorted(meta.get("meta", {}).items()):
            table.add_row(f"recipe: {key}", value)
        table.show()
        return 0
    if args.action == "gc":
        removed = store.gc(completed_only=not args.all)
        kinds = "run(s)" if args.all else "completed run(s)"
        print(f"removed {len(removed)} {kinds} from {store.root}")
        for run_id in removed:
            print(f"  {run_id}")
        if args.db:
            from repro.workflow import JobStore

            live = [row.run_id for row in store.list_runs()]
            with JobStore(args.db) as jobs:
                finished, orphans = jobs.gc(live_run_ids=live)
            print(
                f"pruned {finished} finished and {orphans} orphaned "
                f"job row(s) from {args.db}"
            )
        return 0
    raise SystemExit(f"unknown runs action {args.action!r}")


def _service_specs(args: argparse.Namespace):
    """The job batch one ``repro service submit`` describes."""
    from repro.workflow import JobSpec

    specs = []
    for index in range(args.count):
        if args.kind == "chaos":
            spec = {
                "graph_seed": args.graph_seed + index * args.seed_step,
                "fault_seed": args.fault_seed,
                "tasks": args.tasks,
                "workers": args.pool,
            }
            if args.durable:
                spec["durable"] = True
        elif args.kind == "graph":
            spec = {
                "seed": args.graph_seed + index * args.seed_step,
                "tasks": args.tasks,
                "workers": args.pool,
            }
        else:
            spec = {"index": index}
        specs.append(JobSpec(
            name=f"{args.name_prefix}{index}", kind=args.kind,
            spec=spec, max_attempts=args.max_attempts,
        ))
    return specs


def cmd_service(args: argparse.Namespace) -> int:
    """Drive the multi-tenant workflow service (see docs/SERVICE.md)."""
    from repro.workflow import (
        JobStore,
        Launcher,
        RunStore,
        ServiceClient,
        default_jobstore_path,
    )
    from repro.workflow.jobstore import JOB_STATES, SCHEMA_VERSION

    db = args.db or default_jobstore_path()
    if args.action == "init":
        with JobStore(db):
            pass
        print(f"job store ready at {db} (schema v{SCHEMA_VERSION})")
        return 0
    if args.action == "submit":
        with ServiceClient(db, default_owner=args.owner) as client:
            result = client.submit(
                _service_specs(args), tags=tuple(args.tag),
                ready=not args.staged,
            )
        state = "staged" if args.staged else "ready"
        print(
            f"submitted {len(result.inserted)} {state} job(s), "
            f"{len(result.duplicates)} duplicate(s) ignored"
        )
        return 0
    if args.action == "status":
        with ServiceClient(db) as client:
            counts = client.counts(owner=args.owner or None,
                                   tag=args.filter_tag)
            jobs = client.jobs(
                state=args.state, owner=args.owner or None,
                tag=args.filter_tag, limit=args.limit,
            )
        if args.json:
            import json as json_module

            print(json_module.dumps(
                {
                    "counts": counts,
                    "jobs": [
                        {
                            "id": job.id, "name": job.name,
                            "owner": job.owner, "kind": job.kind,
                            "state": job.state,
                            "attempts": job.attempts,
                            "tags": list(job.tags),
                            "result": job.result,
                        }
                        for job in jobs
                    ],
                },
                indent=2, sort_keys=True,
            ))
            return 0
        table = Table(
            f"job store {db}", ["state", "jobs"],
        )
        for state in JOB_STATES:
            table.add_row(state, counts[state])
        table.show()
        if jobs:
            table = Table(
                "jobs (oldest first)",
                ["id", "name", "owner", "kind", "state", "attempts",
                 "digest"],
            )
            for job in jobs:
                digest = (job.result or {}).get("digest", "-")
                table.add_row(job.id, job.name, job.owner or "-",
                              job.kind, job.state, job.attempts,
                              digest)
            table.show()
        return 0
    if args.action == "launch":
        launcher = Launcher(
            db,
            launcher_id=args.launcher_id,
            lease_size=args.lease_size,
            lease_ttl_s=args.lease_ttl,
            heartbeat_every=args.heartbeat_every,
            run_store=RunStore(args.journal_dir),
        )
        stats = launcher.run(
            max_jobs=args.max_jobs, exit_on_idle=args.exit_on_idle,
        )
        print(
            f"launcher {launcher.launcher_id}: "
            f"{stats.completed} completed, {stats.failed} failed, "
            f"{stats.cancelled} cancelled over {stats.leases} "
            f"lease(s)"
        )
        return 1 if stats.failed else 0
    if args.action == "cancel":
        if not (args.job or args.owner or args.filter_tag):
            raise SystemExit(
                "repro service cancel needs --job, --owner or --tag"
            )
        with ServiceClient(db) as client:
            cancelled, requested = client.cancel(
                args.job, owner=args.owner or None,
                tag=args.filter_tag,
            )
        print(
            f"cancelled {cancelled} queued job(s); requested "
            f"cancellation of {requested} running job(s)"
        )
        return 0
    raise SystemExit(f"unknown service action {args.action!r}")


def cmd_info(_args: argparse.Namespace) -> int:
    """Print the SDK inventory (dialects, default target)."""
    from repro.core.ir.dialects import registered_dialects

    print("EVEREST SDK reproduction")
    print("dialects:")
    for name, dialect in sorted(registered_dialects().items()):
        print(f"  {name:10s} {len(dialect.ops):3d} ops  "
              f"{dialect.description}")
    model = ArchitectureModel()
    print(f"default target: {model.name}, "
          f"{model.cpu.cores}x {model.cpu.name} + FPGA role "
          f"{model.fpga_role_capacity.luts} LUTs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_flags(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--cache-dir", metavar="PATH", default=None,
            help="persistent DSE cost-cache directory (default: "
                 "~/.cache/repro-dse, XDG aware)",
        )
        command_parser.add_argument(
            "--no-cache", action="store_true",
            help="keep the cost cache in memory only for this run",
        )

    def add_workers_flag(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="evaluate DSE batches on N workers; any value "
                 "produces identical results (default: 1)",
        )
        command_parser.add_argument(
            "--workers-mode", choices=("thread", "process"),
            default="thread", dest="workers_mode",
            help="pool flavor for --workers: 'thread' (cheap, "
                 "GIL-bound) or 'process' (true parallelism); both "
                 "produce identical results (default: thread)",
        )

    def add_journal_flags(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--journal-dir", metavar="PATH", default=None,
            help="run-store root for the durable write-ahead journal "
                 "(default: ~/.local/state/repro-runs, XDG aware); "
                 "giving any journal flag enables journaling",
        )
        command_parser.add_argument(
            "--run-id", metavar="ID", default=None,
            help="name the journaled run (default: generated)",
        )
        command_parser.add_argument(
            "--snapshot-every", type=int, default=100, metavar="N",
            help="snapshot the replay state every N journaled events "
                 "so resume cost is O(tail) (default: 100)",
        )
        command_parser.add_argument(
            "--resume", metavar="RUN_ID", default=None,
            help="resume a killed journaled run: reload its recipe, "
                 "replay the journal and re-execute only work that "
                 "never reached its journaled execution point",
        )

    p_compile = sub.add_parser(
        "compile", help="explore every kernel in a DSL file"
    )
    p_compile.add_argument("file")
    p_compile.add_argument("--space", default="small")
    p_compile.add_argument("--strategy", default="exhaustive")
    add_workers_flag(p_compile)
    add_cache_flags(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_synth = sub.add_parser("synth", help="HLS report for one kernel")
    p_synth.add_argument("file")
    p_synth.add_argument("--kernel", required=True)
    p_synth.add_argument("--unroll", type=int, default=4)
    p_synth.add_argument("--clock-mhz", type=float, default=250.0)
    add_cache_flags(p_synth)
    p_synth.set_defaults(func=cmd_synth)

    p_explore = sub.add_parser(
        "explore", help="design-space table for one kernel"
    )
    p_explore.add_argument("file")
    p_explore.add_argument("--kernel", required=True)
    p_explore.add_argument("--space", default="small")
    p_explore.add_argument("--strategy", default="exhaustive")
    p_explore.add_argument(
        "--bound-guided", action="store_true",
        help="order points by their analytic lower bound and skip "
             "points the bound proves off-front (exhaustive strategy "
             "only; identical front, fewer pricings)",
    )
    add_workers_flag(p_explore)
    add_cache_flags(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_perf = sub.add_parser(
        "perf",
        help="static performance report for one kernel: analytic "
             "work/traffic/II lower bounds and the roofline verdict",
    )
    p_perf.add_argument("file")
    p_perf.add_argument("--kernel", required=True)
    p_perf.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="report rendering (default: text)",
    )
    p_perf.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent analysis-cache directory (default: "
             "~/.cache/repro-analysis, XDG aware)",
    )
    p_perf.add_argument(
        "--no-cache", action="store_true",
        help="keep the bounds cache in memory only for this run",
    )
    p_perf.set_defaults(func=cmd_perf)

    p_emit = sub.add_parser(
        "emit", help="print IR / SYCL / RTL for one kernel"
    )
    p_emit.add_argument("file")
    p_emit.add_argument("--kernel", required=True)
    p_emit.add_argument(
        "--what", default="ir",
        choices=("ir", "lowered-ir", "sycl", "rtl"),
    )
    p_emit.add_argument("--unroll", type=int, default=4)
    add_cache_flags(p_emit)
    p_emit.set_defaults(func=cmd_emit)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis (taint, partition legality, DAG lints) "
             "over DSL files, examples and workflow specs",
    )
    p_lint.add_argument(
        "paths", nargs="+",
        help=".edsl / .ir / .py / .json files or directories of them",
    )
    p_lint.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="diagnostic rendering (default: text)",
    )
    p_lint.add_argument(
        "--suppress", action="append", default=[], metavar="CODE",
        help="drop findings with this code (repeatable)",
    )
    p_lint.add_argument(
        "--only", action="append", default=[], metavar="CHECK",
        help="restrict checks to a comma-separated subset of "
             "taint/partition/lint/absint/shapes/perf (IR) and "
             "wf/race/dl (workflow specs); repeatable, "
             "case-insensitive",
    )
    p_lint.add_argument(
        "--incremental", action="store_true",
        help="memoize per-file results in the persistent analysis "
             "cache (default: ~/.cache/repro-analysis, XDG aware; "
             "--cache-dir overrides, --no-cache keeps it in memory); "
             "a warm run skips unchanged files entirely",
    )
    p_lint.add_argument(
        "--stats", action="store_true",
        help="print a per-analysis-pass timing table to stderr "
             "(forces serial analysis)",
    )
    p_lint.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="lint files on N threads; any value produces identical "
             "output (default: 1)",
    )
    add_cache_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_chaos = sub.add_parser(
        "chaos",
        help="replay a seeded fault-injection scenario on the "
             "resilient workflow server",
    )
    p_chaos.add_argument("--graph-seed", type=int, default=0)
    p_chaos.add_argument("--fault-seed", type=int, default=0)
    p_chaos.add_argument("--tasks", type=int, default=12)
    p_chaos.add_argument("--workers", type=int, default=3)
    p_chaos.add_argument("--policy", default="b-level")
    p_chaos.add_argument("--crashes", type=int, default=1)
    p_chaos.add_argument("--link-faults", type=int, default=1)
    p_chaos.add_argument("--reconfig-faults", type=int, default=1)
    p_chaos.add_argument("--stragglers", type=int, default=1)
    p_chaos.add_argument("--task-faults", type=int, default=1)
    p_chaos.add_argument(
        "--json", action="store_true",
        help="print the serialized trace instead of the summary table",
    )
    p_chaos.add_argument(
        "--verify-replay", action="store_true",
        help="run the scenario twice and fail unless the traces are "
             "byte-identical",
    )
    p_chaos.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also export the run's Chrome trace JSON to PATH",
    )
    p_chaos.add_argument(
        "--sanitize", action="store_true",
        help="run the happens-before checker over the traced run; "
             "exits 1 when it finds unsuppressed races or "
             "acquire/release imbalances",
    )
    p_chaos.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="sanitizer report rendering (default: text)",
    )
    p_chaos.add_argument(
        "--suppress", action="append", default=[], metavar="CODE",
        help="drop sanitizer findings with this code (repeatable)",
    )
    add_journal_flags(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_run = sub.add_parser(
        "run",
        help="compile a spec and deploy it on the reference ecosystem",
    )
    p_run.add_argument("file", help=".edsl or .py kernel spec")
    p_run.add_argument("--strategy", default="exhaustive")
    p_run.add_argument(
        "--clock", default="logical", choices=("logical", "wall"),
        help="trace clock when --trace is given (default: logical)",
    )
    p_run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also export the run's Chrome trace JSON to PATH",
    )
    p_run.add_argument(
        "--sanitize", action="store_true",
        help="run the happens-before checker over the traced run; "
             "exits 1 when it finds unsuppressed races or "
             "acquire/release imbalances",
    )
    p_run.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="sanitizer report rendering (default: text)",
    )
    p_run.add_argument(
        "--suppress", action="append", default=[], metavar="CODE",
        help="drop sanitizer findings with this code (repeatable)",
    )
    add_workers_flag(p_run)
    add_cache_flags(p_run)
    add_journal_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run a spec end to end and export a Chrome trace for "
             "Perfetto / chrome://tracing",
    )
    p_trace.add_argument("file", help=".edsl or .py kernel spec")
    p_trace.add_argument(
        "--out", default="trace.json",
        help="output path (default: trace.json)",
    )
    p_trace.add_argument(
        "--clock", default="logical", choices=("logical", "wall"),
        help="logical = deterministic (byte-identical re-runs), "
             "wall = real profiling (default: logical)",
    )
    p_trace.add_argument("--strategy", default="exhaustive")
    add_workers_flag(p_trace)
    add_cache_flags(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a spec end to end and print the metrics snapshot",
    )
    p_metrics.add_argument("file", help=".edsl or .py kernel spec")
    p_metrics.add_argument(
        "--format", default="text", choices=("text", "json"),
    )
    p_metrics.add_argument("--strategy", default="exhaustive")
    add_workers_flag(p_metrics)
    add_cache_flags(p_metrics)
    p_metrics.set_defaults(func=cmd_metrics)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent DSE cost cache",
    )
    p_cache.add_argument(
        "action", choices=("stats", "clear"),
        help="stats: entry count and size; clear: drop every entry",
    )
    p_cache.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="cache directory (default: ~/.cache/repro-dse, XDG aware)",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_runs = sub.add_parser(
        "runs",
        help="list, inspect or garbage-collect durable journaled runs",
    )
    p_runs.add_argument(
        "action", choices=("list", "show", "gc"),
        help="list: one row per run; show: full state of one run; "
             "gc: delete completed runs (--all: every run)",
    )
    p_runs.add_argument(
        "run_id", nargs="?", default=None,
        help="run id (required by show)",
    )
    p_runs.add_argument(
        "--journal-dir", metavar="PATH", default=None,
        help="run-store root (default: ~/.local/state/repro-runs, "
             "XDG aware)",
    )
    p_runs.add_argument(
        "--all", action="store_true",
        help="gc: also remove in-flight (crashed, resumable) runs",
    )
    p_runs.add_argument(
        "--db", metavar="PATH", default=None,
        help="gc: also prune the service job store at PATH — finished "
             "rows plus jobs bound to runs the gc removed",
    )
    p_runs.set_defaults(func=cmd_runs)

    p_service = sub.add_parser(
        "service",
        help="multi-tenant workflow service: durable job store, bulk "
             "submission, leasing launchers (docs/SERVICE.md)",
    )
    service_sub = p_service.add_subparsers(dest="action",
                                           required=True)

    def add_db_flag(action_parser: argparse.ArgumentParser) -> None:
        action_parser.add_argument(
            "--db", metavar="PATH", default=None,
            help="job-store database (default: "
                 "~/.local/state/repro-service/jobs.db, XDG aware)",
        )

    s_init = service_sub.add_parser(
        "init", help="create (or open) the shared job store",
    )
    add_db_flag(s_init)
    s_init.set_defaults(func=cmd_service)

    s_submit = service_sub.add_parser(
        "submit", help="bulk-submit a batch of tagged jobs",
    )
    add_db_flag(s_submit)
    s_submit.add_argument(
        "--count", type=int, default=1, metavar="N",
        help="number of jobs in the batch (default: 1)",
    )
    s_submit.add_argument(
        "--kind", default="chaos",
        choices=("noop", "graph", "chaos"),
        help="job payload: noop (marker), graph (seeded task graph), "
             "chaos (seeded fault-injection run; default)",
    )
    s_submit.add_argument(
        "--name-prefix", default="job-", metavar="PFX",
        help="job names are PFX0..PFX<count-1> (default: job-)",
    )
    s_submit.add_argument(
        "--graph-seed", type=int, default=0, metavar="N",
        help="base graph seed; job i uses N + i*seed-step "
             "(default: 0)",
    )
    s_submit.add_argument(
        "--seed-step", type=int, default=1, metavar="N",
        help="per-job graph-seed increment (default: 1)",
    )
    s_submit.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="chaos jobs: fault schedule seed (default: 0)",
    )
    s_submit.add_argument(
        "--tasks", type=int, default=9, metavar="N",
        help="tasks per generated graph (default: 9)",
    )
    s_submit.add_argument(
        "--pool", type=int, default=3, metavar="N",
        help="simulated workers per job execution (default: 3)",
    )
    s_submit.add_argument(
        "--owner", default="", metavar="NAME",
        help="tenant the jobs belong to (default: anonymous)",
    )
    s_submit.add_argument(
        "--tag", action="append", default=[], metavar="TAG",
        help="tag every job in the batch (repeatable)",
    )
    s_submit.add_argument(
        "--staged", action="store_true",
        help="insert as staged (not leasable) instead of ready",
    )
    s_submit.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="executions before a job is declared failed "
             "(default: 3)",
    )
    s_submit.add_argument(
        "--durable", action="store_true",
        help="chaos jobs: write-ahead journal each execution in the "
             "run store so a killed launcher's job resumes "
             "byte-identically",
    )
    s_submit.set_defaults(func=cmd_service)

    s_status = service_sub.add_parser(
        "status", help="per-state counts and a job listing",
    )
    add_db_flag(s_status)
    s_status.add_argument(
        "--owner", default="", metavar="NAME",
        help="only this tenant's jobs",
    )
    s_status.add_argument(
        "--tag", dest="filter_tag", default=None, metavar="TAG",
        help="only jobs carrying this tag",
    )
    s_status.add_argument(
        "--state", default=None, metavar="STATE",
        help="only jobs in this state (staged/ready/running/done/"
             "failed/cancelled)",
    )
    s_status.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="job rows to list (default: 20)",
    )
    s_status.add_argument(
        "--json", action="store_true",
        help="machine-readable counts + jobs instead of tables",
    )
    s_status.set_defaults(func=cmd_service)

    s_launch = service_sub.add_parser(
        "launch",
        help="run a launcher: lease ready jobs in batches and "
             "execute them until the store drains",
    )
    add_db_flag(s_launch)
    s_launch.add_argument(
        "--launcher-id", default=None, metavar="ID",
        help="stable launcher name (default: generated)",
    )
    s_launch.add_argument(
        "--lease-size", type=int, default=8, metavar="N",
        help="jobs claimed per lease (default: 8)",
    )
    s_launch.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="seconds without a heartbeat before this launcher's "
             "jobs are re-leased (default: 60)",
    )
    s_launch.add_argument(
        "--heartbeat-every", type=int, default=4, metavar="N",
        help="jobs executed between lease heartbeats (default: 4)",
    )
    s_launch.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after executing N jobs (default: drain)",
    )
    s_launch.add_argument(
        "--exit-on-idle", action="store_true",
        help="exit at the first empty lease instead of polling for "
             "other launchers' jobs to expire back",
    )
    s_launch.add_argument(
        "--journal-dir", metavar="PATH", default=None,
        help="run-store root for durable job journals (default: "
             "~/.local/state/repro-runs, XDG aware)",
    )
    s_launch.set_defaults(func=cmd_service)

    s_cancel = service_sub.add_parser(
        "cancel", help="cancel jobs by id, owner or tag",
    )
    add_db_flag(s_cancel)
    s_cancel.add_argument(
        "--job", action="append", type=int, default=[],
        metavar="ID", help="cancel this job id (repeatable)",
    )
    s_cancel.add_argument(
        "--owner", default="", metavar="NAME",
        help="cancel every queued job of this tenant",
    )
    s_cancel.add_argument(
        "--tag", dest="filter_tag", default=None, metavar="TAG",
        help="cancel every queued job carrying this tag",
    )
    s_cancel.set_defaults(func=cmd_service)

    p_info = sub.add_parser("info", help="SDK inventory")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into head/less that exited early: not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
