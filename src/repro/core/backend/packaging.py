"""Variant packaging for the runtime system.

Bundles, per kernel, every variant's artifact plus the JSON-serializable
metadata the runtime decision maker (mARGOt, §IV) consumes: predicted
latency/energy, resource footprint, and knob descriptions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.backend.binary import Artifact
from repro.core.variants import Variant
from repro.errors import BackendError


@dataclass
class VariantPackage:
    """The deployable unit for one application: kernels × variants."""

    application: str
    variants: Dict[str, List[Variant]] = field(default_factory=dict)
    artifacts: Dict[int, Artifact] = field(default_factory=dict)
    signing_key: Optional[str] = None

    def add_variant(self, variant: Variant,
                    artifact: Optional[Artifact] = None) -> None:
        """Register a variant (and its artifact) under its kernel."""
        self.variants.setdefault(variant.kernel, []).append(variant)
        if artifact is not None:
            if self.signing_key:
                artifact.sign(self.signing_key)
            self.artifacts[variant.variant_id] = artifact

    def kernels(self) -> List[str]:
        """Kernel names with at least one packaged variant."""
        return sorted(self.variants)

    def variants_for(self, kernel: str) -> List[Variant]:
        """All packaged variants of one kernel."""
        if kernel not in self.variants:
            raise BackendError(
                f"package has no variants for kernel {kernel!r}"
            )
        return list(self.variants[kernel])

    def artifact_for(self, variant: Variant) -> Optional[Artifact]:
        """The artifact packaged with a variant, if any."""
        return self.artifacts.get(variant.variant_id)

    def verify_integrity(self) -> bool:
        """Check every signed artifact against the signing key."""
        if not self.signing_key:
            return False
        return all(
            artifact.verify(self.signing_key)
            for artifact in self.artifacts.values()
        )

    def manifest(self) -> str:
        """JSON manifest consumed by the runtime decision maker."""
        payload = {
            "application": self.application,
            "kernels": {
                kernel: [variant.to_metadata() for variant in variants]
                for kernel, variants in sorted(self.variants.items())
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @staticmethod
    def manifest_summary(manifest_text: str) -> Dict[str, int]:
        """Parse a manifest back into {kernel: variant count}."""
        payload = json.loads(manifest_text)
        return {
            kernel: len(variants)
            for kernel, variants in payload["kernels"].items()
        }
