"""SYCL-like C++ code generation from kernel-form IR.

The EVEREST backend re-expresses selected variants in a mainstream
parallel programming model so standard toolchains can build them. The
generator walks the kernel-form function and emits a C++ translation
unit: buffers become raw pointers with row-major flattening, loop nests
become ``for`` statements, and the outermost parallel loop becomes a
``parallel_for`` over a SYCL range.

The emitted text is syntactically plausible SYCL; it is not compiled
here (no SYCL toolchain offline) but is exercised structurally by the
tests and serves as the packaged software-variant artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Block, Operation, Value
from repro.core.ir.types import MemRefType, ScalarType
from repro.errors import BackendError

_CPP_TYPES = {
    "f32": "float", "f64": "double", "i1": "bool", "i8": "int8_t",
    "i32": "int32_t", "i64": "int64_t", "index": "size_t",
}

_BINARY_CPP = {
    "kernel.addf": "+", "kernel.subf": "-", "kernel.mulf": "*",
    "kernel.divf": "/", "kernel.addi": "+", "kernel.subi": "-",
    "kernel.muli": "*", "kernel.divi": "/",
    "kernel.cmplt": "<", "kernel.cmple": "<=",
    "kernel.cmpeq": "==", "kernel.cmpgt": ">",
}
_CALL_CPP = {
    "kernel.maxf": "std::max", "kernel.minf": "std::min",
    "kernel.expf": "std::exp", "kernel.sqrtf": "std::sqrt",
    "kernel.tanhf": "std::tanh", "kernel.absf": "std::abs",
}


class _SyclEmitter:
    """Emits one function; values get stable C++ identifiers."""

    def __init__(self, function: Function, parallel_outer: bool):
        self.function = function
        self.parallel_outer = parallel_outer
        self.names: Dict[int, str] = {}
        self.counter = 0
        self.lines: List[str] = []
        self.indent = 1

    def _emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def _name(self, value: Value) -> str:
        key = id(value)
        if key not in self.names:
            self.names[key] = f"v{self.counter}"
            self.counter += 1
        return self.names[key]

    def _cpp_type(self, scalar: ScalarType) -> str:
        return _CPP_TYPES[scalar.name]

    # ------------------------------------------------------------------

    def emit_function(self) -> str:
        function = self.function
        params: List[str] = []
        for value in function.arguments:
            declared = value.type
            if isinstance(declared, MemRefType):
                params.append(
                    f"{self._cpp_type(declared.element)}* "
                    f"{self._name(value)}"
                )
            elif isinstance(declared, ScalarType):
                params.append(
                    f"{self._cpp_type(declared)} {self._name(value)}"
                )
            else:
                raise BackendError(
                    f"SYCL backend cannot pass parameter of type "
                    f"{declared}"
                )
        result = "void"
        if function.type.results:
            if len(function.type.results) > 1:
                raise BackendError(
                    "SYCL backend supports at most one scalar result"
                )
            only = function.type.results[0]
            if not isinstance(only, ScalarType):
                raise BackendError(
                    "non-scalar results must be out-parameters; run "
                    "LowerTensorPass first"
                )
            result = self._cpp_type(only)

        header = (
            f"{result} {function.name}(sycl::queue &q, "
            + ", ".join(params) + ") {"
        )
        self.lines = [header]
        self._emit_block(function.entry_block, top_level=True)
        self.lines.append("}")
        return "\n".join(self.lines)

    def _emit_block(self, block: Block, top_level: bool = False) -> None:
        first_loop = True
        for op in block.operations:
            if op.name == "kernel.for" and top_level and first_loop \
                    and self.parallel_outer:
                first_loop = False
                self._emit_parallel_for(op)
            else:
                self._emit_op(op)

    def _emit_parallel_for(self, op: Operation) -> None:
        lower, upper = op.attr("lower"), op.attr("upper")
        step = op.attr("step")
        if step != 1 or lower != 0:
            self._emit_for(op)
            return
        body = op.regions[0].blocks[0]
        iv = self._name(body.arguments[0])
        self._emit("q.submit([&](sycl::handler &h) {")
        self.indent += 1
        self._emit(
            f"h.parallel_for(sycl::range<1>({upper}), "
            f"[=](sycl::id<1> {iv}_id) {{"
        )
        self.indent += 1
        self._emit(f"size_t {iv} = {iv}_id[0];")
        self._emit_block(body)
        self.indent -= 1
        self._emit("});")
        self.indent -= 1
        self._emit("}).wait();")

    def _emit_for(self, op: Operation) -> None:
        lower, upper = op.attr("lower"), op.attr("upper")
        step = op.attr("step")
        body = op.regions[0].blocks[0]
        iv = self._name(body.arguments[0])
        self._emit(
            f"for (size_t {iv} = {lower}; {iv} < {upper}; "
            f"{iv} += {step}) {{"
        )
        self.indent += 1
        self._emit_block(body)
        self.indent -= 1
        self._emit("}")

    def _flat_index(self, memref: MemRefType,
                    indices: List[Value]) -> str:
        terms: List[str] = []
        stride = 1
        strides: List[int] = []
        for dim in reversed(memref.shape):
            strides.append(stride)
            stride *= dim
        strides.reverse()
        for value, dim_stride in zip(indices, strides):
            if dim_stride == 1:
                terms.append(self._name(value))
            else:
                terms.append(f"{self._name(value)} * {dim_stride}")
        return " + ".join(terms) if terms else "0"

    def _emit_op(self, op: Operation) -> None:
        name = op.name
        if name == "kernel.for":
            self._emit_for(op)
        elif name == "kernel.yield":
            pass
        elif name == "func.return":
            if op.operands:
                self._emit(f"return {self._name(op.operands[0])};")
        elif name == "kernel.const":
            value = op.attr("value")
            result = op.results[0]
            cpp = self._cpp_type(result.type)
            literal = (
                f"{value}" if isinstance(value, int)
                else f"{float(value)}f" if cpp == "float"
                else f"{float(value)}"
            )
            self._emit(f"{cpp} {self._name(result)} = {literal};")
        elif name == "kernel.alloc":
            memref: MemRefType = op.results[0].type
            cpp = self._cpp_type(memref.element)
            self._emit(
                f"std::vector<{cpp}> {self._name(op.results[0])}_storage"
                f"({memref.num_elements});"
            )
            self._emit(
                f"{cpp}* {self._name(op.results[0])} = "
                f"{self._name(op.results[0])}_storage.data();"
            )
        elif name == "kernel.view":
            source = self._name(op.operands[0])
            self._emit(
                f"auto* {self._name(op.results[0])} = {source};"
            )
        elif name == "kernel.load":
            memref = op.operands[0].type
            index = self._flat_index(memref, list(op.operands[1:]))
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"{self._name(op.operands[0])}[{index}];"
            )
        elif name == "kernel.store":
            memref = op.operands[1].type
            index = self._flat_index(memref, list(op.operands[2:]))
            self._emit(
                f"{self._name(op.operands[1])}[{index}] = "
                f"{self._name(op.operands[0])};"
            )
        elif name in _BINARY_CPP:
            operator = _BINARY_CPP[name]
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"{self._name(op.operands[0])} {operator} "
                f"{self._name(op.operands[1])};"
            )
        elif name in _CALL_CPP:
            callee = _CALL_CPP[name]
            arguments = ", ".join(self._name(o) for o in op.operands)
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"{callee}({arguments});"
            )
        elif name == "kernel.sigmoidf":
            operand = self._name(op.operands[0])
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"1.0f / (1.0f + std::exp(-{operand}));"
            )
        elif name == "kernel.negf":
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"-{self._name(op.operands[0])};"
            )
        elif name == "kernel.select":
            cond, a, b = (self._name(o) for o in op.operands)
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"{cond} ? {a} : {b};"
            )
        elif name == "secure.taint":
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"{self._name(op.operands[0])}; "
                f"// taint: {op.attr('label')}"
            )
        elif name == "secure.check":
            self._emit(
                f"everest::dift_check(\"{op.attr('policy')}\");"
            )
        elif name in ("secure.encrypt", "secure.decrypt"):
            verb = name.split(".")[1]
            self._emit(
                f"auto {self._name(op.results[0])} = "
                f"everest::{verb}<{op.attr('cipher')!r}>("
                f"{self._name(op.operands[0])});"
            )
        else:
            raise BackendError(f"SYCL backend: unsupported op {name}")


def generate_sycl(
    module: Module,
    kernel: str,
    parallel_outer: bool = True,
) -> str:
    """Emit a SYCL-like C++ translation unit for one kernel."""
    function = module.find_function(kernel)
    if function is None:
        raise BackendError(f"no function named {kernel!r}")
    for op in function.walk():
        if op.dialect == "tensor":
            raise BackendError(
                f"{kernel!r} is still in tensor form; run "
                f"LowerTensorPass before code generation"
            )
    emitter = _SyclEmitter(function, parallel_outer)
    body = emitter.emit_function()
    prelude = "\n".join([
        "// Generated by the EVEREST SDK backend",
        "#include <sycl/sycl.hpp>",
        "#include <algorithm>",
        "#include <cmath>",
        "#include <cstdint>",
        "#include <vector>",
        "#include \"everest_runtime.hpp\"",
        "",
    ])
    return prelude + body + "\n"
