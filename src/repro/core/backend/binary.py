"""Deployable artifacts: software binaries and FPGA bitstreams.

"Standard toolchains will be used to generate binaries and bitstreams
for the target devices" (paper §III-B). We model the artifacts rather
than invoke vendor toolchains: a :class:`SoftwareBinary` carries the
generated SYCL source and the architecture it was "built" for; FPGA
images reuse :class:`repro.platform.fpga.Bitstream`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.platform.fpga import Bitstream

_SUPPORTED_ARCHS = ("x86", "ppc64le", "arm", "riscv")


@dataclass(frozen=True)
class SoftwareBinary:
    """A compiled software variant for one CPU architecture."""

    name: str
    arch: str
    source_text: str
    threads: int = 1

    def __post_init__(self):
        if self.arch not in _SUPPORTED_ARCHS:
            raise ValueError(
                f"unsupported architecture {self.arch!r}; expected one "
                f"of {_SUPPORTED_ARCHS}"
            )

    @property
    def checksum(self) -> str:
        """Content hash standing in for the built object's identity."""
        digest = hashlib.sha256(
            f"{self.arch}:{self.threads}:{self.source_text}".encode()
        )
        return digest.hexdigest()[:16]

    @property
    def size_bytes(self) -> int:
        """Mock binary size: proportional to the source."""
        return 4096 + 12 * len(self.source_text)


@dataclass
class Artifact:
    """One deployable artifact with integrity metadata."""

    variant_id: int
    kind: str  # "binary" | "bitstream"
    payload: Union[SoftwareBinary, Bitstream]
    signed: bool = False
    signature: Optional[str] = None

    def sign(self, key: str) -> None:
        """Attach an integrity signature (HMAC-style content hash)."""
        if self.kind == "binary":
            assert isinstance(self.payload, SoftwareBinary)
            content = self.payload.checksum
        else:
            assert isinstance(self.payload, Bitstream)
            content = f"{self.payload.name}:{self.payload.size_bytes}"
        digest = hashlib.sha256(f"{key}:{content}".encode()).hexdigest()
        self.signature = digest[:32]
        self.signed = True

    def verify(self, key: str) -> bool:
        """Check the signature against the current payload."""
        if not self.signed or self.signature is None:
            return False
        expected = Artifact(
            variant_id=self.variant_id, kind=self.kind,
            payload=self.payload,
        )
        expected.sign(key)
        return expected.signature == self.signature
