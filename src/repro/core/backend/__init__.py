"""Backend: code generation and artifact packaging (paper §III-B).

"The backend will generate software implementation relying on
state-of-the-art programming models (e.g. SYCL) ... Meta-information
about the variants will be provided to the runtime system ... standard
toolchains will be used to generate binaries and bitstreams."
"""

from repro.core.backend.sycl_gen import generate_sycl
from repro.core.backend.binary import Artifact, SoftwareBinary
from repro.core.backend.packaging import VariantPackage

__all__ = [
    "generate_sycl",
    "Artifact",
    "SoftwareBinary",
    "VariantPackage",
]
