"""Unified MLIR-style intermediate representation (paper Fig. 1, [22]).

The compiler front-end lowers workflow descriptions, tensor-expression
DSL kernels and imported ML models into a single module mixing five
dialects (workflow, tensor, kernel, hw, secure); passes then transform
it into code variants.
"""

from repro.core.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    INDEX,
    TOKEN,
    FunctionType,
    MemRefType,
    ScalarType,
    StreamType,
    TensorType,
    TokenType,
    Type,
)
from repro.core.ir.ops import Block, Operation, Region, Value
from repro.core.ir.module import Function, Module
from repro.core.ir.builder import Builder, LoopHandle
from repro.core.ir.verifier import verify
from repro.core.ir.printer import print_module, print_op
from repro.core.ir.parser import parse_module
from repro.core.ir.digest import function_digest, module_digest
import repro.core.ir.dialects  # noqa: F401  (registers dialects)

__all__ = [
    "F32",
    "F64",
    "I1",
    "I8",
    "I32",
    "I64",
    "INDEX",
    "TOKEN",
    "Type",
    "ScalarType",
    "TensorType",
    "MemRefType",
    "StreamType",
    "TokenType",
    "FunctionType",
    "Value",
    "Operation",
    "Block",
    "Region",
    "Module",
    "Function",
    "Builder",
    "LoopHandle",
    "verify",
    "print_module",
    "print_op",
    "parse_module",
    "module_digest",
    "function_digest",
]
