"""Secure dialect: data-protection operations.

Realizes the paper's data-centric security approach (§III-A): values
flowing through the pipeline can be encrypted/decrypted at trust-zone
boundaries, tagged as tainted for dynamic information flow tracking
(TaintHLS, [18]), and guarded by declassification checks.
"""

from __future__ import annotations

from repro.core.ir.dialects import Dialect, OpDef, register_dialect
from repro.core.ir.ops import Operation
from repro.errors import IRError

secure_dialect = register_dialect(
    Dialect("secure", "data protection: crypto, taint, monitors")
)

_CIPHERS = ("aes128-gcm", "aes256-gcm", "chacha20-poly1305", "ascon128")


def _verify_crypto(op: Operation) -> None:
    cipher = op.attr("cipher")
    if cipher not in _CIPHERS:
        raise IRError(
            f"{op.name}: cipher must be one of {_CIPHERS}, got {cipher!r}"
        )
    if op.results[0].type != op.operands[0].type:
        raise IRError(f"{op.name}: result type must match operand type")


def _verify_taint(op: Operation) -> None:
    label = op.attr("label")
    if not isinstance(label, str) or not label:
        raise IRError("secure.taint requires a non-empty label attribute")
    if op.results[0].type != op.operands[0].type:
        raise IRError("secure.taint: result type must match operand type")


def _verify_check(op: Operation) -> None:
    if not isinstance(op.attr("policy"), str):
        raise IRError("secure.check requires a policy attribute")


secure_dialect.register(
    OpDef(name="encrypt", min_operands=1, max_operands=1, num_results=1,
          verify=_verify_crypto)
)
secure_dialect.register(
    OpDef(name="decrypt", min_operands=1, max_operands=1, num_results=1,
          verify=_verify_crypto)
)
secure_dialect.register(
    OpDef(name="taint", min_operands=1, max_operands=1, num_results=1,
          verify=_verify_taint)
)
secure_dialect.register(
    OpDef(name="declassify", min_operands=1, max_operands=1, num_results=1)
)
secure_dialect.register(
    OpDef(name="check", min_operands=1, num_results=0, verify=_verify_check)
)
secure_dialect.register(
    OpDef(name="monitor", min_operands=0, num_results=0)
)
