"""Workflow dialect: dataflow orchestration of coarse-grain tasks.

Mirrors the HyperLoom pipeline abstraction (paper §III-A): a
``workflow.pipeline`` op holds a region whose operations are
``workflow.task`` nodes; each task names the kernel function it invokes
and consumes/produces data values. ``workflow.source`` and
``workflow.sink`` mark external data endpoints (sensor streams, result
stores), carrying locality annotations used for placement.
"""

from __future__ import annotations

from repro.core.ir.dialects import (
    Dialect,
    OpDef,
    TRAIT_TERMINATOR,
    register_dialect,
)
from repro.core.ir.ops import Operation
from repro.errors import IRError

workflow_dialect = register_dialect(
    Dialect("workflow", "coarse-grain dataflow orchestration")
)


def _verify_task(op: Operation) -> None:
    if not isinstance(op.attr("kernel"), str):
        raise IRError("workflow.task requires a kernel symbol attribute")


def _verify_source(op: Operation) -> None:
    if len(op.operands) != 0:
        raise IRError("workflow.source takes no operands")
    if not op.results:
        raise IRError("workflow.source must produce at least one value")


workflow_dialect.register(
    OpDef(
        name="pipeline",
        min_operands=0,
        max_operands=0,
        num_results=0,
        num_regions=1,
    )
)
workflow_dialect.register(OpDef(name="task", verify=_verify_task))
workflow_dialect.register(OpDef(name="source", verify=_verify_source))
workflow_dialect.register(OpDef(name="sink", num_results=0))
workflow_dialect.register(
    OpDef(
        name="yield",
        num_results=0,
        traits=frozenset({TRAIT_TERMINATOR}),
    )
)
