"""Builtin and func dialects: module container, functions, calls."""

from __future__ import annotations

from repro.core.ir.dialects import (
    Dialect,
    OpDef,
    TRAIT_ISOLATED,
    TRAIT_TERMINATOR,
    register_dialect,
)
from repro.core.ir.ops import Operation
from repro.core.ir.types import FunctionType
from repro.errors import IRError

builtin_dialect = register_dialect(
    Dialect("builtin", "module container")
)

builtin_dialect.register(
    OpDef(
        name="module",
        min_operands=0,
        max_operands=0,
        num_results=0,
        num_regions=1,
        traits=frozenset({TRAIT_ISOLATED}),
    )
)


def _verify_func(op: Operation) -> None:
    function_type = op.attr("function_type")
    if not isinstance(function_type, FunctionType):
        raise IRError("func.func: function_type attribute missing")
    if not isinstance(op.attr("sym_name"), str):
        raise IRError("func.func: sym_name attribute missing")
    region = op.regions[0]
    if region.blocks and region.blocks[0].arguments:
        arg_types = tuple(a.type for a in region.blocks[0].arguments)
        if arg_types != function_type.inputs:
            raise IRError(
                f"func.func {op.attr('sym_name')!r}: entry block args "
                f"{arg_types} do not match signature "
                f"{function_type.inputs}"
            )


def _verify_return(op: Operation) -> None:
    parent_block = op.parent
    if parent_block is None:
        return
    func_op = parent_block.region.owner
    if func_op.name != "func.func":
        raise IRError("func.return must be nested in func.func")
    function_type = func_op.attr("function_type")
    returned = tuple(v.type for v in op.operands)
    if returned != function_type.results:
        raise IRError(
            f"func.return types {returned} do not match signature "
            f"results {function_type.results}"
        )


def _verify_call(op: Operation) -> None:
    if not isinstance(op.attr("callee"), str):
        raise IRError("func.call requires a callee symbol attribute")


func_dialect = register_dialect(Dialect("func", "functions and calls"))

func_dialect.register(
    OpDef(
        name="func",
        min_operands=0,
        max_operands=0,
        num_results=0,
        num_regions=1,
        traits=frozenset({TRAIT_ISOLATED}),
        verify=_verify_func,
    )
)
func_dialect.register(
    OpDef(
        name="return",
        num_results=0,
        traits=frozenset({TRAIT_TERMINATOR}),
        verify=_verify_return,
    )
)
func_dialect.register(OpDef(name="call", verify=_verify_call))
