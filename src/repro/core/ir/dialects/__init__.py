"""Dialect registry for the unified IR.

Each dialect registers :class:`OpDef` entries describing the structural
constraints of its operations (operand/result/region counts, traits and
an optional custom verifier). The verifier consults this registry; the
builder uses it to infer result counts.

Importing this package registers the builtin/func dialects and the five
EVEREST dialects: ``workflow``, ``tensor``, ``kernel``, ``hw`` and
``secure``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

from repro.core.ir.ops import Operation
from repro.errors import IRError

# Traits understood by the verifier and passes.
TRAIT_TERMINATOR = "terminator"
TRAIT_PURE = "pure"  # no side effects: eligible for CSE/DCE
TRAIT_COMMUTATIVE = "commutative"
TRAIT_ISOLATED = "isolated"  # region may not reference outer values


@dataclass(frozen=True)
class OpDef:
    """Structural definition of one operation kind."""

    name: str
    min_operands: int = 0
    max_operands: Optional[int] = None  # None = variadic
    num_results: Optional[int] = None  # None = any
    num_regions: int = 0
    traits: FrozenSet[str] = field(default_factory=frozenset)
    verify: Optional[Callable[[Operation], None]] = None

    def has_trait(self, trait: str) -> bool:
        """True if the definition carries the trait."""
        return trait in self.traits

    def check(self, op: Operation) -> None:
        """Verify structural constraints; raises :class:`IRError`."""
        count = len(op.operands)
        if count < self.min_operands:
            raise IRError(
                f"{op.name}: expected at least {self.min_operands} "
                f"operands, got {count}"
            )
        if self.max_operands is not None and count > self.max_operands:
            raise IRError(
                f"{op.name}: expected at most {self.max_operands} "
                f"operands, got {count}"
            )
        if (
            self.num_results is not None
            and len(op.results) != self.num_results
        ):
            raise IRError(
                f"{op.name}: expected {self.num_results} results, "
                f"got {len(op.results)}"
            )
        if len(op.regions) != self.num_regions:
            raise IRError(
                f"{op.name}: expected {self.num_regions} regions, "
                f"got {len(op.regions)}"
            )
        if self.verify is not None:
            self.verify(op)


class Dialect:
    """A named group of operation definitions."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.ops: Dict[str, OpDef] = {}

    def register(self, opdef: OpDef) -> OpDef:
        """Add an op definition; the name must not be qualified."""
        if "." in opdef.name:
            raise IRError(
                f"op names are registered unqualified, got {opdef.name!r}"
            )
        if opdef.name in self.ops:
            raise IRError(
                f"dialect {self.name!r}: duplicate op {opdef.name!r}"
            )
        self.ops[opdef.name] = opdef
        return opdef

    def lookup(self, opname: str) -> OpDef:
        """Find a definition by unqualified name."""
        if opname not in self.ops:
            raise IRError(
                f"dialect {self.name!r} has no operation {opname!r}"
            )
        return self.ops[opname]


_REGISTRY: Dict[str, Dialect] = {}


def register_dialect(dialect: Dialect) -> Dialect:
    """Install a dialect in the global registry."""
    if dialect.name in _REGISTRY:
        raise IRError(f"dialect {dialect.name!r} already registered")
    _REGISTRY[dialect.name] = dialect
    return dialect


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name."""
    if name not in _REGISTRY:
        raise IRError(f"unknown dialect {name!r}")
    return _REGISTRY[name]


def lookup_op(qualified_name: str) -> OpDef:
    """Find the definition of a dialect-qualified op name."""
    if "." not in qualified_name:
        raise IRError(f"op name must be qualified, got {qualified_name!r}")
    dialect_name, opname = qualified_name.split(".", 1)
    return get_dialect(dialect_name).lookup(opname)


def registered_dialects() -> Dict[str, Dialect]:
    """Copy of the registry mapping."""
    return dict(_REGISTRY)


def op_is_pure(op: Operation) -> bool:
    """True when the op's definition carries the pure trait."""
    try:
        return lookup_op(op.name).has_trait(TRAIT_PURE)
    except IRError:
        return False


def op_is_terminator(op: Operation) -> bool:
    """True when the op's definition carries the terminator trait."""
    try:
        return lookup_op(op.name).has_trait(TRAIT_TERMINATOR)
    except IRError:
        return False


# Import dialect modules for their registration side effects.
from repro.core.ir.dialects import builtin as _builtin  # noqa: E402,F401
from repro.core.ir.dialects import workflow as _workflow  # noqa: E402,F401
from repro.core.ir.dialects import tensor as _tensor  # noqa: E402,F401
from repro.core.ir.dialects import kernel as _kernel  # noqa: E402,F401
from repro.core.ir.dialects import hw as _hw  # noqa: E402,F401
from repro.core.ir.dialects import secure as _secure  # noqa: E402,F401
