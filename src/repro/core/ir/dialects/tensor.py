"""Tensor dialect: high-level tensor expressions.

This is the data-centric abstraction of the paper (§III-B, [14-16]):
contractions, elementwise arithmetic, reductions and shape ops over
dense tensors with static shapes. Passes tile/fuse these before they
are lowered to kernel-dialect loop nests.
"""

from __future__ import annotations

from repro.core.ir.dialects import (
    Dialect,
    OpDef,
    TRAIT_COMMUTATIVE,
    TRAIT_PURE,
    register_dialect,
)
from repro.core.ir.ops import Operation
from repro.core.ir.types import ScalarType, TensorType
from repro.errors import IRError

tensor_dialect = register_dialect(
    Dialect("tensor", "dense tensor expressions")
)


def _tensor_type(op: Operation, value_index: int) -> TensorType:
    value = op.operands[value_index]
    if not isinstance(value.type, TensorType):
        raise IRError(
            f"{op.name}: operand {value_index} must be a tensor, "
            f"got {value.type}"
        )
    return value.type


def _verify_elementwise(op: Operation) -> None:
    first = _tensor_type(op, 0)
    for index in range(1, len(op.operands)):
        other = _tensor_type(op, index)
        if other.shape != first.shape or other.element != first.element:
            raise IRError(
                f"{op.name}: operand shapes/elements differ: "
                f"{first} vs {other}"
            )
    result = op.results[0].type
    if result != first:
        raise IRError(
            f"{op.name}: result type {result} must match operand {first}"
        )


def _verify_matmul(op: Operation) -> None:
    lhs, rhs = _tensor_type(op, 0), _tensor_type(op, 1)
    if lhs.rank != 2 or rhs.rank != 2:
        raise IRError(f"{op.name}: operands must be rank-2")
    if lhs.shape[1] != rhs.shape[0]:
        raise IRError(
            f"{op.name}: inner dimensions differ "
            f"({lhs.shape[1]} vs {rhs.shape[0]})"
        )
    result = op.results[0].type
    expected = TensorType((lhs.shape[0], rhs.shape[1]), lhs.element)
    if result != expected:
        raise IRError(
            f"{op.name}: result {result} should be {expected}"
        )


def _verify_contract(op: Operation) -> None:
    spec = op.attr("indexing")
    if not isinstance(spec, str) or "->" not in spec:
        raise IRError(
            "tensor.contract requires an einsum-style 'indexing' attribute"
        )
    inputs_spec = spec.split("->")[0].split(",")
    if len(inputs_spec) != len(op.operands):
        raise IRError(
            f"tensor.contract: {len(inputs_spec)} index groups but "
            f"{len(op.operands)} operands"
        )
    for group, operand in zip(inputs_spec, op.operands):
        operand_type = operand.type
        if not isinstance(operand_type, TensorType):
            raise IRError("tensor.contract operands must be tensors")
        if len(group.strip()) != operand_type.rank:
            raise IRError(
                f"tensor.contract: index group {group.strip()!r} does "
                f"not match rank-{operand_type.rank} operand"
            )


def _verify_transpose(op: Operation) -> None:
    source = _tensor_type(op, 0)
    perm = op.attr("permutation")
    if not isinstance(perm, (list, tuple)) or sorted(perm) != list(
        range(source.rank)
    ):
        raise IRError(
            f"tensor.transpose: permutation {perm!r} invalid for "
            f"rank {source.rank}"
        )
    expected = TensorType(
        tuple(source.shape[axis] for axis in perm), source.element
    )
    if op.results[0].type != expected:
        raise IRError(
            f"tensor.transpose: result should be {expected}"
        )


def _verify_reduce(op: Operation) -> None:
    source = _tensor_type(op, 0)
    axes = op.attr("axes")
    if not isinstance(axes, (list, tuple)) or not axes:
        raise IRError("tensor.reduce requires non-empty 'axes'")
    for axis in axes:
        if not 0 <= axis < source.rank:
            raise IRError(
                f"tensor.reduce: axis {axis} out of range for "
                f"rank {source.rank}"
            )
    if op.attr("kind") not in ("sum", "max", "min", "mean"):
        raise IRError("tensor.reduce: kind must be sum/max/min/mean")


def _verify_constant(op: Operation) -> None:
    if op.attr("value") is None:
        raise IRError("tensor.constant requires a value attribute")


_ELEMENTWISE_BINARY = ("add", "sub", "mul", "div", "maximum", "minimum")
_ELEMENTWISE_UNARY = ("neg", "exp", "relu", "sqrt", "tanh", "sigmoid")

for _name in _ELEMENTWISE_BINARY:
    traits = {TRAIT_PURE}
    if _name in ("add", "mul", "maximum", "minimum"):
        traits.add(TRAIT_COMMUTATIVE)
    tensor_dialect.register(
        OpDef(
            name=_name,
            min_operands=2,
            max_operands=2,
            num_results=1,
            traits=frozenset(traits),
            verify=_verify_elementwise,
        )
    )

for _name in _ELEMENTWISE_UNARY:
    tensor_dialect.register(
        OpDef(
            name=_name,
            min_operands=1,
            max_operands=1,
            num_results=1,
            traits=frozenset({TRAIT_PURE}),
            verify=_verify_elementwise,
        )
    )

tensor_dialect.register(
    OpDef(
        name="matmul",
        min_operands=2,
        max_operands=2,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_matmul,
    )
)
tensor_dialect.register(
    OpDef(
        name="contract",
        min_operands=1,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_contract,
    )
)
tensor_dialect.register(
    OpDef(
        name="transpose",
        min_operands=1,
        max_operands=1,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_transpose,
    )
)
tensor_dialect.register(
    OpDef(
        name="reduce",
        min_operands=1,
        max_operands=1,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_reduce,
    )
)
tensor_dialect.register(
    OpDef(
        name="constant",
        min_operands=0,
        max_operands=0,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_constant,
    )
)
def _verify_splat(op: Operation) -> None:
    scalar = op.operands[0].type
    result = op.results[0].type
    if not isinstance(scalar, ScalarType):
        raise IRError("tensor.splat operand must be a scalar")
    if not isinstance(result, TensorType) or result.element != scalar:
        raise IRError(
            f"tensor.splat: result must be a tensor of {scalar}"
        )


tensor_dialect.register(
    OpDef(
        name="splat",
        min_operands=1,
        max_operands=1,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
        verify=_verify_splat,
    )
)
tensor_dialect.register(
    OpDef(
        name="reshape",
        min_operands=1,
        max_operands=1,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
    )
)
