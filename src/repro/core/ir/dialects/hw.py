"""Hardware dialect: accelerator instantiation and memory customization.

Carries the decisions of hardware/software partitioning and of the
memory-subsystem customization the paper describes (§III-B, [28-30]):
``hw.accelerator`` wraps a kernel destined for HLS; ``hw.partition``
records banking/multi-port directives on a buffer; ``hw.stream_read``
and ``hw.stream_write`` connect accelerators over FIFO channels.
"""

from __future__ import annotations

from repro.core.ir.dialects import (
    Dialect,
    OpDef,
    register_dialect,
)
from repro.core.ir.ops import Operation
from repro.core.ir.types import StreamType
from repro.errors import IRError

hw_dialect = register_dialect(
    Dialect("hw", "accelerators and memory customization")
)


def _verify_accelerator(op: Operation) -> None:
    if not isinstance(op.attr("kernel"), str):
        raise IRError("hw.accelerator requires a kernel symbol attribute")


def _verify_partition(op: Operation) -> None:
    scheme = op.attr("scheme")
    if scheme not in ("cyclic", "block", "complete"):
        raise IRError(
            "hw.partition: scheme must be cyclic/block/complete, "
            f"got {scheme!r}"
        )
    factor = op.attr("factor")
    if not isinstance(factor, int) or factor < 1:
        raise IRError("hw.partition: positive integer factor required")


def _verify_stream_read(op: Operation) -> None:
    if not isinstance(op.operands[0].type, StreamType):
        raise IRError("hw.stream_read operand must be a stream")


def _verify_stream_write(op: Operation) -> None:
    if not isinstance(op.operands[0].type, StreamType):
        raise IRError("hw.stream_write first operand must be a stream")


hw_dialect.register(
    OpDef(name="accelerator", num_regions=0, verify=_verify_accelerator)
)
hw_dialect.register(
    OpDef(name="partition", min_operands=1, max_operands=1, num_results=0,
          verify=_verify_partition)
)
hw_dialect.register(
    OpDef(name="stream_read", min_operands=1, max_operands=1, num_results=1,
          verify=_verify_stream_read)
)
hw_dialect.register(
    OpDef(name="stream_write", min_operands=2, max_operands=2, num_results=0,
          verify=_verify_stream_write)
)
hw_dialect.register(OpDef(name="stream", min_operands=0, max_operands=0,
                          num_results=1))
