"""Kernel dialect: loop nests, scalar arithmetic and memory accesses.

This is the level the HLS engine consumes: explicit ``kernel.for``
loops over ``kernel.load``/``kernel.store`` on memrefs, with scalar
arithmetic in between — the moral equivalent of MLIR's scf+memref+arith
stack collapsed into one dialect.
"""

from __future__ import annotations

from repro.core.ir.dialects import (
    Dialect,
    OpDef,
    TRAIT_COMMUTATIVE,
    TRAIT_PURE,
    TRAIT_TERMINATOR,
    register_dialect,
)
from repro.core.ir.ops import Operation
from repro.core.ir.types import MemRefType, ScalarType
from repro.errors import IRError

kernel_dialect = register_dialect(
    Dialect("kernel", "loops, scalar arithmetic and memory accesses")
)


def _verify_for(op: Operation) -> None:
    for key in ("lower", "upper", "step"):
        value = op.attr(key)
        if not isinstance(value, int):
            raise IRError(f"kernel.for: integer attribute {key!r} required")
    if op.attr("step") <= 0:
        raise IRError("kernel.for: step must be positive")
    region = op.regions[0]
    if region.blocks and len(region.blocks[0].arguments) != 1:
        raise IRError(
            "kernel.for: body block must take exactly the induction "
            "variable argument"
        )


def _memref_operand(op: Operation, index: int) -> MemRefType:
    value_type = op.operands[index].type
    if not isinstance(value_type, MemRefType):
        raise IRError(
            f"{op.name}: operand {index} must be a memref, got {value_type}"
        )
    return value_type


def _verify_load(op: Operation) -> None:
    memref = _memref_operand(op, 0)
    indices = op.operands[1:]
    if len(indices) != memref.rank:
        raise IRError(
            f"kernel.load: {len(indices)} indices for rank-{memref.rank} "
            f"memref"
        )
    if op.results[0].type != memref.element:
        raise IRError(
            f"kernel.load: result type {op.results[0].type} should be "
            f"{memref.element}"
        )


def _verify_store(op: Operation) -> None:
    memref = _memref_operand(op, 1)
    value_type = op.operands[0].type
    if value_type != memref.element:
        raise IRError(
            f"kernel.store: value type {value_type} should be "
            f"{memref.element}"
        )
    indices = op.operands[2:]
    if len(indices) != memref.rank:
        raise IRError(
            f"kernel.store: {len(indices)} indices for rank-{memref.rank} "
            f"memref"
        )


def _verify_binary_arith(op: Operation) -> None:
    lhs, rhs = op.operands[0].type, op.operands[1].type
    if lhs != rhs:
        raise IRError(f"{op.name}: operand types differ ({lhs} vs {rhs})")
    if not isinstance(lhs, ScalarType):
        raise IRError(f"{op.name}: operands must be scalars, got {lhs}")
    result_type = op.results[0].type
    if op.opname.startswith("cmp"):
        if result_type != ScalarType("i1"):
            raise IRError(f"{op.name}: comparison must produce i1")
    elif result_type != lhs:
        raise IRError(
            f"{op.name}: result type {result_type} should be {lhs}"
        )


def _verify_const(op: Operation) -> None:
    if op.attr("value") is None:
        raise IRError("kernel.const requires a value attribute")
    if not isinstance(op.results[0].type, ScalarType):
        raise IRError("kernel.const produces a scalar")


def _verify_alloc(op: Operation) -> None:
    if not isinstance(op.results[0].type, MemRefType):
        raise IRError("kernel.alloc produces a memref")


kernel_dialect.register(
    OpDef(name="for", min_operands=0, max_operands=0, num_results=0,
          num_regions=1, verify=_verify_for)
)
kernel_dialect.register(
    OpDef(name="yield", num_results=0,
          traits=frozenset({TRAIT_TERMINATOR}))
)
kernel_dialect.register(
    OpDef(name="load", min_operands=1, num_results=1, verify=_verify_load)
)
kernel_dialect.register(
    OpDef(name="store", min_operands=2, num_results=0, verify=_verify_store)
)
kernel_dialect.register(
    OpDef(name="alloc", min_operands=0, max_operands=0, num_results=1,
          verify=_verify_alloc)
)
kernel_dialect.register(
    OpDef(name="const", min_operands=0, max_operands=0, num_results=1,
          traits=frozenset({TRAIT_PURE}), verify=_verify_const)
)
kernel_dialect.register(OpDef(name="call", verify=None))

_BINARY_OPS = {
    "addf": True, "subf": False, "mulf": True, "divf": False,
    "addi": True, "subi": False, "muli": True, "divi": False,
    "maxf": True, "minf": True, "cmplt": False, "cmple": False,
    "cmpeq": True, "cmpgt": False,
}
for _name, _commutative in _BINARY_OPS.items():
    traits = {TRAIT_PURE}
    if _commutative:
        traits.add(TRAIT_COMMUTATIVE)
    kernel_dialect.register(
        OpDef(
            name=_name,
            min_operands=2,
            max_operands=2,
            num_results=1,
            traits=frozenset(traits),
            verify=_verify_binary_arith,
        )
    )

_UNARY_OPS = ("negf", "expf", "sqrtf", "tanhf", "sigmoidf", "absf")
for _name in _UNARY_OPS:
    kernel_dialect.register(
        OpDef(
            name=_name,
            min_operands=1,
            max_operands=1,
            num_results=1,
            traits=frozenset({TRAIT_PURE}),
        )
    )

kernel_dialect.register(
    OpDef(
        name="select",
        min_operands=3,
        max_operands=3,
        num_results=1,
        traits=frozenset({TRAIT_PURE}),
    )
)


def _verify_view(op: Operation) -> None:
    source = _memref_operand(op, 0)
    result_type = op.results[0].type
    if not isinstance(result_type, MemRefType):
        raise IRError("kernel.view produces a memref")
    if result_type.num_elements != source.num_elements:
        raise IRError(
            f"kernel.view: element counts differ "
            f"({source.num_elements} vs {result_type.num_elements})"
        )
    if result_type.element != source.element:
        raise IRError("kernel.view: element type must be preserved")


kernel_dialect.register(
    OpDef(
        name="view",
        min_operands=1,
        max_operands=1,
        num_results=1,
        verify=_verify_view,
    )
)
