"""Core SSA structures: values, operations, blocks, regions.

The design mirrors MLIR's generic operation model [22]: every operation
has a dialect-qualified name, SSA operands and results, an attribute
dictionary and nested regions. Dialects constrain and verify specific
operations (see :mod:`repro.core.ir.dialects`); the structures here are
dialect-agnostic.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.ir.types import Type
from repro.errors import IRError

_value_counter = itertools.count()


class _AttrDict(dict):
    """Attribute dictionary that version-bumps its owning operation.

    Every mutation of an operation's attributes — including direct
    ``op.attributes[...] = v`` / ``del op.attributes[...]`` writes that
    bypass :meth:`Operation.set_attr` — must invalidate any memoized
    digest of the enclosing module, so the structural hash can never be
    served for changed IR.
    """

    __slots__ = ("owner",)

    def __init__(self, owner: "Operation", data: Optional[Dict[str, Any]] = None):
        super().__init__(data or {})
        self.owner = owner

    def __setitem__(self, key: str, value: Any) -> None:
        self.owner.bump_version()
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        self.owner.bump_version()
        super().__delitem__(key)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self.owner.bump_version()
        super().update(*args, **kwargs)

    def pop(self, *args: Any) -> Any:
        self.owner.bump_version()
        return super().pop(*args)

    def popitem(self) -> Any:
        self.owner.bump_version()
        return super().popitem()

    def setdefault(self, key: str, default: Any = None) -> Any:
        if key not in self:
            self.owner.bump_version()
        return super().setdefault(key, default)

    def clear(self) -> None:
        self.owner.bump_version()
        super().clear()


class _OperationList(list):
    """Operation list that version-bumps its owning block's root.

    Passes mutate ``block.operations`` directly (remove/insert/slice);
    routing every mutator through the version bump keeps memoized
    digests sound without requiring all rewrites to go through helper
    methods.
    """

    __slots__ = ("block",)

    def __init__(self, block: "Block"):
        super().__init__()
        self.block = block

    def _bump(self) -> None:
        self.block.bump_version()

    def append(self, op: "Operation") -> None:
        self._bump()
        super().append(op)

    def extend(self, ops: Any) -> None:
        self._bump()
        super().extend(ops)

    def insert(self, index: int, op: "Operation") -> None:
        self._bump()
        super().insert(index, op)

    def remove(self, op: "Operation") -> None:
        self._bump()
        super().remove(op)

    def pop(self, index: int = -1) -> "Operation":
        self._bump()
        return super().pop(index)

    def clear(self) -> None:
        self._bump()
        super().clear()

    def sort(self, **kwargs: Any) -> None:
        self._bump()
        super().sort(**kwargs)

    def reverse(self) -> None:
        self._bump()
        super().reverse()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._bump()
        super().__setitem__(index, value)

    def __delitem__(self, index: Any) -> None:
        self._bump()
        super().__delitem__(index)

    def __iadd__(self, other: Any) -> "_OperationList":
        self._bump()
        super().extend(other)
        return self


class Value:
    """An SSA value: produced by an operation result or a block argument."""

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name or f"v{next(_value_counter)}"
        self.producer: Optional["Operation"] = None
        self.result_index: int = -1
        self.block: Optional["Block"] = None  # set for block arguments
        self.uses: List["Operation"] = []

    @property
    def is_block_argument(self) -> bool:
        """True when the value is a block argument, not an op result."""
        return self.block is not None

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every user of this value to use ``other``."""
        if other is self:
            return
        for user in list(self.uses):
            user.operands = [
                other if operand is self else operand
                for operand in user.operands
            ]
            user.bump_version()
            if user not in other.uses:
                other.uses.append(user)
        self.uses.clear()

    def __repr__(self) -> str:
        return f"%{self.name}: {self.type}"


class Operation:
    """A generic operation with operands, results, attributes, regions."""

    def __init__(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Any]] = None,
        num_regions: int = 0,
    ):
        if "." not in name:
            raise IRError(
                f"operation name must be dialect-qualified, got {name!r}"
            )
        self.name = name
        self.parent: Optional["Block"] = None
        self._version: int = 0
        self.operands: List[Value] = list(operands)
        self.attributes: Dict[str, Any] = _AttrDict(self, attributes or {})
        self.results: List[Value] = []
        for index, result_type in enumerate(result_types):
            value = Value(result_type)
            value.producer = self
            value.result_index = index
            self.results.append(value)
        self.regions: List[Region] = [Region(self) for _ in range(num_regions)]
        for operand in self.operands:
            if self not in operand.uses:
                operand.uses.append(self)

    def root(self) -> "Operation":
        """The outermost operation enclosing this op (itself if detached)."""
        op = self
        while op.parent is not None:
            op = op.parent.region.owner
        return op

    def bump_version(self) -> None:
        """Record a structural mutation on the enclosing operation tree.

        The counter lives on the root operation, so one walk up the
        parent chain invalidates every memoized digest of the module no
        matter how deep the mutation happened.
        """
        root = self.root()
        root._version += 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter of the enclosing operation tree."""
        return self.root()._version

    @property
    def dialect(self) -> str:
        """Dialect prefix of the operation name."""
        return self.name.split(".", 1)[0]

    @property
    def opname(self) -> str:
        """Operation name without the dialect prefix."""
        return self.name.split(".", 1)[1]

    @property
    def result(self) -> Value:
        """The single result; raises if the op has zero or many."""
        if len(self.results) != 1:
            raise IRError(
                f"{self.name} has {len(self.results)} results, not 1"
            )
        return self.results[0]

    def attr(self, key: str, default: Any = None) -> Any:
        """Read an attribute with a default."""
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value: Any) -> None:
        """Set an attribute."""
        self.attributes[key] = value

    def replace_operand(self, old: Value, new: Value) -> None:
        """Substitute one operand value for another."""
        if old not in self.operands:
            raise IRError(f"{self.name}: {old!r} is not an operand")
        self.operands = [
            new if operand is old else operand for operand in self.operands
        ]
        self.bump_version()
        if self in old.uses:
            old.uses.remove(self)
        if self not in new.uses:
            new.uses.append(self)

    def erase(self) -> None:
        """Remove the op from its block; results must be unused."""
        for result in self.results:
            if result.uses:
                raise IRError(
                    f"cannot erase {self.name}: result %{result.name} "
                    f"still has {len(result.uses)} uses"
                )
        for operand in self.operands:
            if self in operand.uses:
                operand.uses.remove(self)
        if self.parent is not None:
            self.parent.operations.remove(self)
            self.parent = None

    def walk(self) -> Iterator["Operation"]:
        """Yield this op and every op nested in its regions, pre-order."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def clone(self, value_map: Optional[Dict[Value, Value]] = None
              ) -> "Operation":
        """Deep-copy the op (and regions), remapping operands.

        ``value_map`` maps original values to replacement values; cloned
        results and block arguments are added to it so nested uses
        resolve correctly.
        """
        value_map = value_map if value_map is not None else {}
        new_operands = [value_map.get(operand, operand)
                        for operand in self.operands]
        clone = Operation(
            self.name,
            operands=new_operands,
            result_types=[result.type for result in self.results],
            attributes=dict(self.attributes),
            num_regions=len(self.regions),
        )
        for old, new in zip(self.results, clone.results):
            value_map[old] = new
        for old_region, new_region in zip(self.regions, clone.regions):
            for old_block in old_region.blocks:
                new_block = new_region.add_block(
                    [arg.type for arg in old_block.arguments]
                )
                for old_arg, new_arg in zip(
                    old_block.arguments, new_block.arguments
                ):
                    value_map[old_arg] = new_arg
                for op in old_block.operations:
                    new_block.append(op.clone(value_map))
        return clone

    def __repr__(self) -> str:
        return f"<op {self.name} ({len(self.operands)}->{len(self.results)})>"


class Block:
    """A straight-line sequence of operations with typed arguments."""

    def __init__(self, region: "Region", arg_types: Sequence[Type] = ()):
        self.region = region
        self.arguments: List[Value] = []
        for arg_type in arg_types:
            value = Value(arg_type)
            value.block = self
            self.arguments.append(value)
        self.operations: List[Operation] = _OperationList(self)

    def bump_version(self) -> None:
        """Propagate a mutation in this block to the root op's counter."""
        self.region.owner.bump_version()

    def append(self, op: Operation) -> Operation:
        """Add an operation at the end of the block."""
        op.parent = self
        self.operations.append(op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        """Insert ``op`` immediately before ``anchor``."""
        index = self.operations.index(anchor)
        op.parent = self
        self.operations.insert(index, op)
        return op

    @property
    def terminator(self) -> Optional[Operation]:
        """The last operation, if any."""
        return self.operations[-1] if self.operations else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, owner: Operation):
        self.owner = owner
        self.blocks: List[Block] = []

    def add_block(self, arg_types: Sequence[Type] = ()) -> Block:
        """Append a new block with the given argument types."""
        block = Block(self, arg_types)
        self.blocks.append(block)
        self.owner.bump_version()
        return block

    @property
    def entry(self) -> Block:
        """The first block; created empty if the region has none."""
        if not self.blocks:
            return self.add_block()
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        """True when the region has no blocks."""
        return not self.blocks

    def walk(self) -> Iterator[Operation]:
        """Yield every operation in the region, pre-order."""
        for block in self.blocks:
            for op in list(block.operations):
                yield from op.walk()
