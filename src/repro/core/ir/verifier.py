"""Structural verification of IR modules.

Checks, in order:

1. every operation's dialect and kind are registered, and its
   structural constraints (operand/result/region counts plus the op's
   own verifier) hold;
2. terminator placement — terminator-trait ops appear only as the last
   op of a block, and blocks of region-carrying ops that require
   termination end with the right terminator;
3. SSA visibility — each operand is defined before use, either earlier
   in the same block, as an enclosing block argument, or earlier in an
   enclosing (non-isolated) region;
4. use-def consistency — ``value.uses`` agrees with actual operand
   lists.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.ir.dialects import (
    TRAIT_ISOLATED,
    TRAIT_TERMINATOR,
    lookup_op,
)
from repro.core.ir.module import Module
from repro.core.ir.ops import Block, Operation, Value
from repro.errors import VerificationError

_REQUIRED_TERMINATORS = {
    "func.func": "func.return",
    "kernel.for": "kernel.yield",
    "workflow.pipeline": "workflow.yield",
}


def verify(module: Module) -> None:
    """Verify a module; raises :class:`VerificationError` on failure."""
    _verify_op(module.op, visible=set())
    _verify_uses(module)


def _verify_op(op: Operation, visible: Set[Value]) -> None:
    try:
        opdef = lookup_op(op.name)
    except Exception as exc:
        raise VerificationError(str(exc)) from exc

    try:
        opdef.check(op)
    except VerificationError:
        raise
    except Exception as exc:
        raise VerificationError(f"{op.name}: {exc}") from exc

    for operand in op.operands:
        if operand not in visible:
            raise VerificationError(
                f"{op.name}: operand %{operand.name} is not visible at "
                f"its use (use before def, or crossing an isolated region)"
            )

    isolated = opdef.has_trait(TRAIT_ISOLATED)
    inner_visible: Set[Value] = set() if isolated else set(visible)
    for region in op.regions:
        for block in region.blocks:
            _verify_block(op, block, set(inner_visible))


def _verify_block(parent: Operation, block: Block,
                  visible: Set[Value]) -> None:
    visible.update(block.arguments)
    operations = block.operations
    for index, op in enumerate(operations):
        is_last = index == len(operations) - 1
        try:
            opdef = lookup_op(op.name)
        except Exception as exc:
            raise VerificationError(str(exc)) from exc
        if opdef.has_trait(TRAIT_TERMINATOR) and not is_last:
            raise VerificationError(
                f"terminator {op.name} is not the last operation of "
                f"its block (inside {parent.name})"
            )
        _verify_op(op, visible)
        visible.update(op.results)

    required = _REQUIRED_TERMINATORS.get(parent.name)
    if required is not None and operations:
        last = operations[-1]
        if last.name != required:
            raise VerificationError(
                f"{parent.name}: block must end with {required}, "
                f"found {last.name}"
            )


def _verify_uses(module: Module) -> None:
    all_ops: List[Operation] = list(module.walk())
    for op in all_ops:
        for operand in op.operands:
            if op not in operand.uses:
                raise VerificationError(
                    f"use-def inconsistency: {op.name} uses "
                    f"%{operand.name} but is missing from its use list"
                )
    defined: Set[int] = set()
    for op in all_ops:
        for result in op.results:
            if id(result) in defined:
                raise VerificationError(
                    f"value %{result.name} defined more than once"
                )
            defined.add(id(result))
