"""Structural verification of IR modules.

Checks, in order:

1. every operation's dialect and kind are registered, and its
   structural constraints (operand/result/region counts plus the op's
   own verifier) hold (IR001/IR002);
2. terminator placement — terminator-trait ops appear only as the last
   op of a block, and blocks of region-carrying ops that require
   termination end with the right terminator (IR004/IR005);
3. SSA visibility — each operand is defined before use, either earlier
   in the same block, as an enclosing block argument, or earlier in an
   enclosing (non-isolated) region (IR003);
4. use-def consistency — ``value.uses`` agrees with actual operand
   lists (IR006/IR007).

Two entry points share one walker:

* :func:`verify` — fail fast, raising :class:`VerificationError` at
  the first defect (the raised exception carries the partial
  ``diagnostics`` collection);
* :func:`verify_diagnostics` — collect *every* defect into a
  :class:`~repro.core.analysis.diagnostics.Diagnostics` and return it,
  never raising. This is what the pass manager and the lint CLI use.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.ir.dialects import (
    TRAIT_ISOLATED,
    TRAIT_TERMINATOR,
    lookup_op,
)
from repro.core.ir.module import Module
from repro.core.ir.ops import Block, Operation, Value
from repro.errors import VerificationError

_REQUIRED_TERMINATORS = {
    "func.func": "func.return",
    "kernel.for": "kernel.yield",
    "workflow.pipeline": "workflow.yield",
}


class _Verifier:
    """One verification sweep, optionally stopping at the first error."""

    def __init__(self, diagnostics: Diagnostics, fail_fast: bool):
        self.diagnostics = diagnostics
        self.fail_fast = fail_fast

    def fail(self, code: str, message: str, anchor: str = "") -> None:
        diagnostic = self.diagnostics.error(
            code, message, anchor=anchor, analysis="verifier"
        )
        if self.fail_fast:
            exc = VerificationError(diagnostic.render())
            exc.diagnostics = self.diagnostics
            raise exc

    # ------------------------------------------------------------------

    def run(self, module: Module) -> None:
        self.verify_op(module.op, visible=set())
        self.verify_uses(module)

    def verify_op(self, op: Operation, visible: Set[Value]) -> None:
        opdef = self._lookup(op)
        if opdef is None:
            return

        try:
            opdef.check(op)
        except Exception as exc:
            text = str(exc)
            if not text.startswith(op.name):
                text = f"{op.name}: {text}"
            self.fail("IR002", text, anchor=op.name)

        for operand in op.operands:
            if operand not in visible:
                self.fail(
                    "IR003",
                    f"{op.name}: operand %{operand.name} is not visible "
                    f"at its use (use before def, or crossing an "
                    f"isolated region)",
                    anchor=op.name,
                )

        isolated = opdef.has_trait(TRAIT_ISOLATED)
        inner_visible: Set[Value] = set() if isolated else set(visible)
        for region in op.regions:
            for block in region.blocks:
                self.verify_block(op, block, set(inner_visible))

    def verify_block(self, parent: Operation, block: Block,
                     visible: Set[Value]) -> None:
        visible.update(block.arguments)
        operations = block.operations
        for index, op in enumerate(operations):
            is_last = index == len(operations) - 1
            opdef = self._lookup(op)
            if opdef is not None and opdef.has_trait(
                TRAIT_TERMINATOR
            ) and not is_last:
                self.fail(
                    "IR004",
                    f"terminator {op.name} is not the last operation of "
                    f"its block (inside {parent.name})",
                    anchor=op.name,
                )
            self.verify_op(op, visible)
            visible.update(op.results)

        required = _REQUIRED_TERMINATORS.get(parent.name)
        if required is not None and operations:
            last = operations[-1]
            if last.name != required:
                self.fail(
                    "IR005",
                    f"{parent.name}: block must end with {required}, "
                    f"found {last.name}",
                    anchor=parent.name,
                )

    def verify_uses(self, module: Module) -> None:
        all_ops: List[Operation] = list(module.walk())
        for op in all_ops:
            for operand in op.operands:
                if op not in operand.uses:
                    self.fail(
                        "IR006",
                        f"use-def inconsistency: {op.name} uses "
                        f"%{operand.name} but is missing from its "
                        f"use list",
                        anchor=op.name,
                    )
        defined: Set[int] = set()
        for op in all_ops:
            for result in op.results:
                if id(result) in defined:
                    self.fail(
                        "IR007",
                        f"value %{result.name} defined more than once",
                        anchor=op.name,
                    )
                defined.add(id(result))

    # ------------------------------------------------------------------

    def _lookup(self, op: Operation):
        try:
            return lookup_op(op.name)
        except Exception as exc:
            self.fail("IR001", str(exc), anchor=op.name)
            return None


def verify(module: Module) -> None:
    """Verify a module; raises :class:`VerificationError` on failure."""
    _Verifier(Diagnostics(), fail_fast=True).run(module)


def verify_diagnostics(
    module: Module, diagnostics: Optional[Diagnostics] = None
) -> Diagnostics:
    """Collect every structural defect; never raises."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    _Verifier(diagnostics, fail_fast=False).run(module)
    return diagnostics
