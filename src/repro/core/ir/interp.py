"""Reference interpreter for IR functions.

Two entry points:

* :func:`run_function` — executes a function in either tensor form or
  kernel form against numpy arrays. Tensor ops evaluate with vectorized
  numpy; kernel form walks the loop nests element by element (slow, but
  it is the semantic ground truth the HLS engine and the lowering are
  tested against).
* :class:`Interpreter` — reusable object exposing taint tracking: the
  set of ``secure.taint`` labels that reached each produced value, used
  by the data-protection tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Block, Operation, Value
from repro.core.ir.types import (
    MemRefType,
    ScalarType,
    TensorType,
)
from repro.errors import IRError, SecurityError

_NUMPY_DTYPES = {
    "f32": np.float32,
    "f64": np.float64,
    "i1": np.bool_,
    "i8": np.int8,
    "i32": np.int32,
    "i64": np.int64,
    "index": np.int64,
}

_TENSOR_BINARY = {
    "tensor.add": np.add,
    "tensor.sub": np.subtract,
    "tensor.mul": np.multiply,
    "tensor.div": np.divide,
    "tensor.maximum": np.maximum,
    "tensor.minimum": np.minimum,
}
_TENSOR_UNARY = {
    "tensor.neg": np.negative,
    "tensor.exp": np.exp,
    "tensor.relu": lambda x: np.maximum(x, 0),
    "tensor.sqrt": np.sqrt,
    "tensor.tanh": np.tanh,
    "tensor.sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}
_KERNEL_BINARY = {
    "kernel.addf": lambda a, b: a + b,
    "kernel.subf": lambda a, b: a - b,
    "kernel.mulf": lambda a, b: a * b,
    "kernel.divf": lambda a, b: a / b,
    "kernel.addi": lambda a, b: a + b,
    "kernel.subi": lambda a, b: a - b,
    "kernel.muli": lambda a, b: a * b,
    "kernel.divi": lambda a, b: a // b,
    "kernel.maxf": max,
    "kernel.minf": min,
    "kernel.cmplt": lambda a, b: a < b,
    "kernel.cmple": lambda a, b: a <= b,
    "kernel.cmpeq": lambda a, b: a == b,
    "kernel.cmpgt": lambda a, b: a > b,
}
_KERNEL_UNARY = {
    "kernel.negf": lambda a: -a,
    "kernel.expf": lambda a: float(np.exp(min(a, 700.0))),
    "kernel.sqrtf": lambda a: float(np.sqrt(a)),
    "kernel.tanhf": lambda a: float(np.tanh(a)),
    "kernel.sigmoidf": lambda a: float(1.0 / (1.0 + np.exp(-a))),
    "kernel.absf": abs,
}


def dtype_for(scalar: ScalarType) -> np.dtype:
    """Numpy dtype matching a scalar IR type."""
    return np.dtype(_NUMPY_DTYPES[scalar.name])


class Interpreter:
    """Executes IR functions; tracks taint labels through values."""

    def __init__(self, module: Module, enforce_checks: bool = False):
        self.module = module
        self.enforce_checks = enforce_checks
        #: taint labels attached to each live value id
        self.taints: Dict[int, Set[str]] = {}
        #: labels that reached a secure.check
        self.flagged: List[Tuple[str, Set[str]]] = []

    # ------------------------------------------------------------------

    def run(self, function_name: str, *args: Any) -> List[Any]:
        """Run a function by name; returns its result list.

        For kernel-form functions, memref arguments must be numpy
        arrays and are mutated in place (out-parameters receive the
        results).
        """
        function = self.module.find_function(function_name)
        if function is None:
            raise IRError(f"no function named {function_name!r}")
        return self.run_function(function, *args)

    def run_function(self, function: Function, *args: Any) -> List[Any]:
        """Run a function wrapper with positional arguments."""
        expected = len(function.type.inputs)
        if len(args) != expected:
            raise IRError(
                f"{function.name}: expected {expected} arguments, "
                f"got {len(args)}"
            )
        env: Dict[Value, Any] = {}
        for value, arg, declared in zip(
            function.arguments, args, function.type.inputs
        ):
            env[value] = self._coerce(arg, declared)
        return self._run_block(function.entry_block, env)

    @staticmethod
    def _coerce(arg: Any, declared) -> Any:
        if isinstance(declared, (TensorType, MemRefType)):
            array = np.asarray(arg, dtype=dtype_for(declared.element))
            if tuple(array.shape) != tuple(declared.shape):
                raise IRError(
                    f"argument shape {array.shape} does not match "
                    f"declared {declared.shape}"
                )
            return array
        return arg

    # ------------------------------------------------------------------

    def _run_block(self, block: Block, env: Dict[Value, Any]) -> List[Any]:
        for op in block.operations:
            result = self._run_op(op, env)
            if result is not None:
                return result
        return []

    def _taint_of(self, operands: Sequence[Value]) -> Set[str]:
        labels: Set[str] = set()
        for operand in operands:
            labels |= self.taints.get(id(operand), set())
        return labels

    def _set_result(self, op: Operation, env: Dict[Value, Any],
                    value: Any) -> None:
        env[op.results[0]] = value
        inherited = self._taint_of(op.operands)
        if inherited:
            self.taints[id(op.results[0])] = inherited

    def _run_op(self, op: Operation, env: Dict[Value, Any]):
        name = op.name

        if name == "func.return":
            return [env[operand] for operand in op.operands]

        if name in _TENSOR_BINARY:
            function = _TENSOR_BINARY[name]
            self._set_result(
                op, env, function(env[op.operands[0]], env[op.operands[1]])
            )
        elif name in _TENSOR_UNARY:
            self._set_result(op, env, _TENSOR_UNARY[name](
                env[op.operands[0]]))
        elif name == "tensor.matmul":
            self._set_result(
                op, env, env[op.operands[0]] @ env[op.operands[1]]
            )
        elif name == "tensor.transpose":
            perm = tuple(op.attr("permutation"))
            self._set_result(op, env, np.transpose(
                env[op.operands[0]], perm))
        elif name == "tensor.reduce":
            source = env[op.operands[0]]
            axes = tuple(op.attr("axes"))
            kind = op.attr("kind")
            reducers = {
                "sum": np.sum, "mean": np.mean,
                "max": np.max, "min": np.min,
            }
            reduced = reducers[kind](source, axis=axes)
            result_type = op.results[0].type
            reduced = np.asarray(reduced).reshape(result_type.shape)
            self._set_result(op, env, reduced)
        elif name == "tensor.reshape":
            result_type: TensorType = op.results[0].type
            self._set_result(
                op, env, env[op.operands[0]].reshape(result_type.shape)
            )
        elif name == "tensor.constant":
            result_type = op.results[0].type
            fill = op.attr("value")
            array = np.full(
                result_type.shape, fill, dtype=dtype_for(result_type.element)
            )
            self._set_result(op, env, array)
        elif name == "tensor.splat":
            result_type = op.results[0].type
            array = np.full(
                result_type.shape,
                env[op.operands[0]],
                dtype=dtype_for(result_type.element),
            )
            self._set_result(op, env, array)
        elif name == "tensor.contract":
            spec = op.attr("indexing")
            arrays = [env[operand] for operand in op.operands]
            self._set_result(op, env, np.einsum(spec, *arrays))

        elif name == "kernel.const":
            env[op.results[0]] = op.attr("value")
        elif name == "kernel.alloc":
            memref: MemRefType = op.results[0].type
            env[op.results[0]] = np.zeros(
                memref.shape, dtype=dtype_for(memref.element)
            )
        elif name == "kernel.view":
            memref = op.results[0].type
            env[op.results[0]] = env[op.operands[0]].reshape(memref.shape)
        elif name == "kernel.load":
            array = env[op.operands[0]]
            indices = tuple(int(env[v]) for v in op.operands[1:])
            self._set_result(op, env, array[indices].item())
        elif name == "kernel.store":
            value = env[op.operands[0]]
            array = env[op.operands[1]]
            indices = tuple(int(env[v]) for v in op.operands[2:])
            array[indices] = value
            labels = self._taint_of(op.operands[:1])
            if labels:
                existing = self.taints.setdefault(id(op.operands[1]), set())
                existing |= labels
        elif name in _KERNEL_BINARY:
            function = _KERNEL_BINARY[name]
            self._set_result(
                op, env,
                function(env[op.operands[0]], env[op.operands[1]]),
            )
        elif name in _KERNEL_UNARY:
            self._set_result(
                op, env, _KERNEL_UNARY[name](env[op.operands[0]])
            )
        elif name == "kernel.select":
            condition = env[op.operands[0]]
            self._set_result(
                op, env,
                env[op.operands[1]] if condition else env[op.operands[2]],
            )
        elif name == "kernel.for":
            lower, upper = op.attr("lower"), op.attr("upper")
            step = op.attr("step")
            body = op.regions[0].blocks[0]
            for iteration in range(lower, upper, step):
                env[body.arguments[0]] = iteration
                early = self._run_block_loop(body, env)
                if early is not None:
                    return early
        elif name == "kernel.yield":
            pass
        elif name == "kernel.call" or name == "func.call":
            callee = self.module.find_function(op.attr("callee"))
            if callee is None:
                raise IRError(f"call to unknown symbol {op.attr('callee')}")
            results = self.run_function(
                callee, *[env[operand] for operand in op.operands]
            )
            for value, result in zip(op.results, results):
                env[value] = result

        elif name == "secure.taint":
            env[op.results[0]] = env[op.operands[0]]
            labels = self.taints.setdefault(id(op.results[0]), set())
            labels.add(op.attr("label"))
            # Arrays alias: taint the underlying operand too.
            self.taints.setdefault(id(op.operands[0]), set()).add(
                op.attr("label")
            )
        elif name == "secure.declassify":
            env[op.results[0]] = env[op.operands[0]]
            self.taints[id(op.results[0])] = set()
        elif name == "secure.check":
            labels = self._taint_of(op.operands)
            if labels:
                self.flagged.append((op.attr("policy"), labels))
                if self.enforce_checks:
                    raise SecurityError(
                        f"policy {op.attr('policy')!r} violated by "
                        f"taint labels {sorted(labels)}"
                    )
        elif name in ("secure.encrypt", "secure.decrypt"):
            # Functionally a passthrough at this level; cost is modeled
            # by the HLS/runtime layers.
            env[op.results[0]] = env[op.operands[0]]
            if name == "secure.encrypt":
                self.taints[id(op.results[0])] = set()
            else:
                self._set_result(op, env, env[op.operands[0]])
        elif name == "secure.monitor":
            pass
        else:
            raise IRError(f"interpreter: unsupported operation {name}")
        return None

    def _run_block_loop(self, block: Block, env: Dict[Value, Any]):
        """Run a loop body; returns early results if a return occurred."""
        for op in block.operations:
            result = self._run_op(op, env)
            if result is not None:
                return result
        return None


def run_function(module: Module, name: str, *args: Any) -> List[Any]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(module).run(name, *args)
