"""Data layout selection: array-of-structures vs structure-of-arrays.

The paper's example of a software variant axis (§III-B): "a
software-only implementation could explore layouts of particles as
array-of-structures or structure-of-arrays". The pass rewrites the
layout tag of memref-typed function arguments and local allocations;
the cost model and HLS memory mapper interpret the tag (SoA enables
per-field banking and unit-stride streaming, AoS favors whole-record
access).
"""

from __future__ import annotations

from repro.core.ir.module import Module
from repro.core.ir.ops import Value
from repro.core.ir.passes.pass_manager import Pass
from repro.core.ir.types import MemRefType
from repro.errors import PassError

_RECORD_LAYOUTS = ("aos", "soa")


class DataLayoutPass(Pass):
    """Set the layout of record-structured buffers to AoS or SoA.

    Only buffers whose current layout is already a record layout (aos/
    soa) — i.e. buffers the frontend marked as records — are rewritten;
    plain row-major arrays are untouched.
    """

    name = "data-layout"

    def __init__(self, layout: str = "soa"):
        if layout not in _RECORD_LAYOUTS:
            raise PassError(
                f"layout must be one of {_RECORD_LAYOUTS}, got {layout!r}"
            )
        self.layout = layout

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions():
            for argument in func.arguments:
                changed |= self._retag(argument)
            new_inputs = tuple(arg.type for arg in func.arguments)
            function_type = func.type
            if new_inputs != function_type.inputs:
                from repro.core.ir.types import FunctionType

                func.op.set_attr(
                    "function_type",
                    FunctionType(new_inputs, function_type.results),
                )
            for op in func.walk():
                if op.name == "kernel.alloc":
                    changed |= self._retag(op.results[0])
        return changed

    def _retag(self, value: Value) -> bool:
        value_type = value.type
        if not isinstance(value_type, MemRefType):
            return False
        if value_type.layout not in _RECORD_LAYOUTS:
            return False
        if value_type.layout == self.layout:
            return False
        value.type = value_type.with_layout(self.layout)
        return True
