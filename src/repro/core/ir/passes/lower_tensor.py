"""Lowering from the tensor dialect to kernel-dialect loop nests.

This is the bufferization + loop-materialization step of the flow in
Fig. 1: each function whose body contains tensor operations is rewritten
into *kernel form*:

* tensor-typed parameters become memref parameters;
* tensor-typed results become out-parameter memrefs (appended after the
  inputs), leaving only scalar results;
* tensor ops become explicit ``kernel.for`` nests of loads, scalar
  arithmetic and stores;
* fusion groups (from :class:`ElementwiseFusionPass`) share one loop
  nest, with intermediates kept in registers unless used outside the
  group;
* ``tile_sizes`` attributes (from :class:`TilingPass`) turn matmuls
  into tiled 6-deep nests when the tile sizes divide the problem.

Functions already in kernel form are left untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.ir.builder import Builder
from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Operation, Value
from repro.core.ir.passes.pass_manager import Pass
from repro.core.ir.types import (
    FunctionType,
    MemRefType,
    ScalarType,
    TensorType,
)
from repro.errors import PassError

_UNARY_MAP = {
    "tensor.neg": "negf",
    "tensor.exp": "expf",
    "tensor.sqrt": "sqrtf",
    "tensor.tanh": "tanhf",
    "tensor.sigmoid": "sigmoidf",
}
_BINARY_MAP = {
    "tensor.add": "addf",
    "tensor.sub": "subf",
    "tensor.mul": "mulf",
    "tensor.div": "divf",
    "tensor.maximum": "maxf",
    "tensor.minimum": "minf",
}
_INT_BINARY_MAP = {
    "tensor.add": "addi",
    "tensor.sub": "subi",
    "tensor.mul": "muli",
}


def _as_memref(tensor_type: TensorType) -> MemRefType:
    return MemRefType(tensor_type.shape, tensor_type.element)


def _has_tensor_ops(function: Function) -> bool:
    return any(op.dialect == "tensor" for op in function.walk())


class LowerTensorPass(Pass):
    """Rewrite every tensor-form function into kernel form."""

    name = "lower-tensor"

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.functions():
            if _has_tensor_ops(function):
                _FunctionLowering(module, function).apply()
                changed = True
        return changed


class _FunctionLowering:
    """Lowers one function; replaces it in the module."""

    def __init__(self, module: Module, function: Function):
        self.module = module
        self.function = function
        self.env: Dict[Value, Value] = {}
        self.builder = Builder()
        self._done: set = set()

    def apply(self) -> None:
        old = self.function
        old_type = old.type
        new_inputs: List = []
        for input_type in old_type.inputs:
            if isinstance(input_type, TensorType):
                new_inputs.append(_as_memref(input_type))
            else:
                new_inputs.append(input_type)
        out_params: List[MemRefType] = []
        scalar_results: List = []
        for result_type in old_type.results:
            if isinstance(result_type, TensorType):
                out_params.append(_as_memref(result_type))
            else:
                scalar_results.append(result_type)
        new_type = FunctionType(
            tuple(new_inputs) + tuple(out_params), tuple(scalar_results)
        )

        attrs = {
            key: value
            for key, value in old.op.attributes.items()
            if key not in ("sym_name", "function_type")
        }
        attrs["lowered_from"] = "tensor"
        name = old.name
        self.module.remove_function(name)
        new = self.module.add_function(name, new_type, attributes=attrs)
        self.builder.set_insertion_point(new.entry_block)

        for old_arg, new_arg in zip(
            old.arguments, new.arguments[: len(old.arguments)]
        ):
            self.env[old_arg] = new_arg
        self._out_args = new.arguments[len(old.arguments):]

        # Returned tensor values produced by ops in this function can
        # write straight into their out-parameter, skipping the final
        # copy loop. Function arguments returned verbatim still copy.
        self._return_targets: Dict[int, Value] = {}
        return_op = next(
            (op for op in old.entry_block.operations
             if op.name == "func.return"), None,
        )
        if return_op is not None:
            out_index = 0
            seen: set = set()
            for operand in return_op.operands:
                if not isinstance(operand.type, TensorType):
                    continue
                target = self._out_args[out_index]
                out_index += 1
                harmless = all(
                    user.name in ("func.return", "secure.check")
                    for user in operand.uses
                )
                if (
                    operand.producer is not None
                    and id(operand) not in seen
                    and harmless
                ):
                    self._return_targets[id(operand)] = target
                seen.add(id(operand))

        groups = self._collect_groups(old)
        emitted_groups = set()
        self._done = set()
        for op in list(old.entry_block.operations):
            if id(op) in self._done:
                continue
            group = op.attr("fusion_group")
            if group is not None and group in groups:
                if group not in emitted_groups:
                    self._emit_elementwise_group(groups[group])
                    emitted_groups.add(group)
                continue
            self._emit_op(op)
            self._done.add(id(op))

    # ------------------------------------------------------------------

    @staticmethod
    def _collect_groups(function: Function) -> Dict[int, List[Operation]]:
        groups: Dict[int, List[Operation]] = {}
        for op in function.entry_block.operations:
            group = op.attr("fusion_group")
            if group is not None:
                groups.setdefault(group, []).append(op)
        return groups

    def _ensure_available(self, value: Value) -> None:
        """Lower ``value``'s producer (recursively) if not done yet."""
        if value in self.env:
            return
        producer = value.producer
        if producer is None or id(producer) in self._done:
            return
        for operand in producer.operands:
            self._ensure_available(operand)
        self._emit_op(producer)
        self._done.add(id(producer))

    def _lookup(self, value: Value) -> Value:
        if value not in self.env:
            raise PassError(
                f"lower-tensor: no lowered value for %{value.name}"
            )
        return self.env[value]

    def _alloc_for(self, value: Value) -> Value:
        tensor_type = value.type
        if not isinstance(tensor_type, TensorType):
            raise PassError("expected tensor-typed value")
        target = self._return_targets.get(id(value))
        buffer = target if target is not None else self.builder.alloc(
            _as_memref(tensor_type)
        )
        self.env[value] = buffer
        return buffer

    def _loop_nest(self, shape: Sequence[int]) -> List:
        """Open a perfect nest over ``shape``; returns loop handles."""
        handles = []
        for extent in shape:
            handle = self.builder.for_loop(0, extent)
            handles.append(handle)
            self.builder.set_insertion_point(handle.body)
        return handles

    def _close_nest(self, handles: List, after_block) -> None:
        for handle in reversed(handles):
            self.builder.set_insertion_point(handle.body)
            # terminator may already exist if inner loop emitted it
            if (
                handle.body.terminator is None
                or handle.body.terminator.name != "kernel.yield"
            ):
                self.builder.yield_op()
        self.builder.set_insertion_point(after_block)

    # ------------------------------------------------------------------

    def _emit_op(self, op: Operation) -> None:
        name = op.name
        if name == "func.return":
            self._emit_return(op)
        elif name in _UNARY_MAP or name in _BINARY_MAP:
            self._emit_elementwise_group([op])
        elif name == "tensor.matmul":
            self._emit_matmul(op)
        elif name == "tensor.contract":
            self._emit_contract(op)
        elif name == "tensor.reduce":
            self._emit_reduce(op)
        elif name == "tensor.transpose":
            self._emit_transpose(op)
        elif name == "tensor.constant":
            self._emit_constant(op)
        elif name == "tensor.reshape":
            self._emit_reshape(op)
        elif name == "tensor.splat":
            self._emit_splat(op)
        elif name.startswith("tensor.relu"):
            self._emit_elementwise_group([op])
        elif op.dialect in ("kernel", "secure", "func", "hw"):
            self._clone_through(op)
        else:
            raise PassError(f"lower-tensor: unsupported op {name}")

    def _clone_through(self, op: Operation) -> None:
        if op.regions:
            clone = op.clone(dict(self.env))
            self.builder.block.append(clone)
            for old, new in zip(op.results, clone.results):
                self.env[old] = new
            return
        new_operands = [
            self.env.get(operand, operand) for operand in op.operands
        ]
        # Type-preserving ops (secure.taint etc.) must follow the
        # tensor→memref retyping of their operands.
        result_types = []
        for result in op.results:
            if isinstance(result.type, TensorType):
                result_types.append(_as_memref(result.type))
            else:
                result_types.append(result.type)
        clone = Operation(
            op.name,
            operands=new_operands,
            result_types=result_types,
            attributes=dict(op.attributes),
        )
        self.builder.block.append(clone)
        for old, new in zip(op.results, clone.results):
            self.env[old] = new

    def _emit_return(self, op: Operation) -> None:
        scalar_values: List[Value] = []
        out_index = 0
        for operand in op.operands:
            if isinstance(operand.type, TensorType):
                source = self._lookup(operand)
                target = self._out_args[out_index]
                out_index += 1
                if source is target:
                    continue  # already written in place
                self._emit_copy(source, target, operand.type.shape)
            else:
                scalar_values.append(self._lookup(operand))
        self.builder.ret(scalar_values)

    def _emit_copy(
        self, source: Value, target: Value, shape: Sequence[int]
    ) -> None:
        outer = self.builder.block
        handles = self._loop_nest(shape)
        indices = [handle.induction_var for handle in handles]
        value = self.builder.load(source, indices)
        self.builder.store(value, target, indices)
        self._close_nest(handles, outer)

    # ------------------------------------------------------------------

    def _scalar_op_names(self, element: ScalarType):
        if element.is_float:
            return _BINARY_MAP, _UNARY_MAP
        int_unary = {}
        return _INT_BINARY_MAP, int_unary

    def _emit_elementwise_group(self, ops: List[Operation]) -> None:
        shape = ops[0].results[0].type.shape
        element = ops[0].results[0].type.element
        group_ids = {id(op) for op in ops}

        # Out-of-group operands defined *later* in program order (e.g.
        # a matmul feeding the middle of the chain) must be lowered
        # first. Splats and fill constants are skipped here: they are
        # inlined as scalars inside the fused loop instead of being
        # materialized into full buffers.
        for op in ops:
            for operand in op.operands:
                producer = operand.producer
                if producer is None or id(producer) in group_ids:
                    continue
                if producer.name in ("tensor.splat", "tensor.constant"):
                    for inner in producer.operands:
                        self._ensure_available(inner)
                    continue
                self._ensure_available(operand)

        materialize: Dict[int, Value] = {}
        for op in ops:
            result = op.results[0]
            needs_buffer = any(
                id(user) not in group_ids for user in result.uses
            )
            if needs_buffer or not result.uses:
                materialize[id(op)] = self._alloc_for(result)

        outer = self.builder.block
        handles = self._loop_nest(shape)
        indices = [handle.induction_var for handle in handles]

        scalars: Dict[int, Value] = {}
        binary_map, unary_map = self._scalar_op_names(element)

        def operand_scalar(operand: Value) -> Value:
            producer = operand.producer
            if producer is not None and id(producer) in scalars:
                return scalars[id(producer)]
            if producer is not None and operand not in self.env:
                if producer.name == "tensor.splat":
                    return self.env.get(
                        producer.operands[0], producer.operands[0]
                    )
                if producer.name == "tensor.constant" and isinstance(
                    producer.attr("value"), (int, float)
                ):
                    return self.builder.const(
                        float(producer.attr("value")), element
                    )
            memref = self._lookup(operand)
            return self.builder.load(memref, indices)

        for op in ops:
            if op.name == "tensor.relu":
                value = operand_scalar(op.operands[0])
                zero = self.builder.const(0.0, element)
                scalar = self.builder.maxf(value, zero)
            elif op.name in unary_map:
                value = operand_scalar(op.operands[0])
                scalar = self.builder.unary(unary_map[op.name], value)
            elif op.name in binary_map:
                lhs = operand_scalar(op.operands[0])
                rhs = operand_scalar(op.operands[1])
                scalar = self.builder._binary(
                    f"kernel.{binary_map[op.name]}", lhs, rhs
                )
            else:
                raise PassError(
                    f"unsupported elementwise op {op.name} "
                    f"for element type {element}"
                )
            scalars[id(op)] = scalar
            buffer = materialize.get(id(op))
            if buffer is not None:
                self.builder.store(scalar, buffer, indices)

        self._close_nest(handles, outer)

        # Splat/constant producers whose every consumer sits inside a
        # fusion group were inlined as scalars; suppress their
        # standalone buffer materialization.
        for op in ops:
            for operand in op.operands:
                producer = operand.producer
                if (
                    producer is not None
                    and producer.name in ("tensor.splat",
                                          "tensor.constant")
                    and all(
                        user.attr("fusion_group") is not None
                        for user in producer.results[0].uses
                    )
                ):
                    self._done.add(id(producer))

    # ------------------------------------------------------------------

    def _emit_matmul(self, op: Operation) -> None:
        lhs = self._lookup(op.operands[0])
        rhs = self._lookup(op.operands[1])
        lhs_type: TensorType = op.operands[0].type
        rhs_type: TensorType = op.operands[1].type
        m, k = lhs_type.shape
        n = rhs_type.shape[1]
        element = lhs_type.element
        out = self._alloc_for(op.results[0])

        self._emit_fill(out, (m, n), 0.0, element)

        if op.attr("loop_order") == "ikj":
            self._emit_matmul_ikj(op, lhs, rhs, out, m, n, k)
            return

        tile_sizes = op.attr("tile_sizes")
        tiled = (
            isinstance(tile_sizes, (list, tuple))
            and len(tile_sizes) == 3
            and m % tile_sizes[0] == 0
            and n % tile_sizes[1] == 0
            and k % tile_sizes[2] == 0
            and (tile_sizes[0] < m or tile_sizes[1] < n
                 or tile_sizes[2] < k)
        )
        outer = self.builder.block
        if tiled:
            tm, tn, tk = tile_sizes
            outer_handles = self._loop_nest((m // tm, n // tn, k // tk))
            it, jt, kt = [h.induction_var for h in outer_handles]
            inner_handles = self._loop_nest((tm, tn, tk))
            ii, ji, ki = [h.induction_var for h in inner_handles]
            i = self._affine(it, tm, ii)
            j = self._affine(jt, tn, ji)
            kk = self._affine(kt, tk, ki)
            handles = outer_handles + inner_handles
        else:
            handles = self._loop_nest((m, n, k))
            i, j, kk = [h.induction_var for h in handles]

        a = self.builder.load(lhs, [i, kk])
        b = self.builder.load(rhs, [kk, j])
        c = self.builder.load(out, [i, j])
        prod = self.builder.mulf(a, b)
        acc = self.builder.addf(c, prod)
        self.builder.store(acc, out, [i, j])
        self._close_nest(handles, outer)

    def _emit_matmul_ikj(self, op: Operation, lhs: Value, rhs: Value,
                         out: Value, m: int, n: int, k: int) -> None:
        """i-k-j order: A[i,k] registered, j innermost, no recurrence."""
        outer = self.builder.block
        loop_i = self.builder.for_loop(0, m)
        self.builder.set_insertion_point(loop_i.body)
        loop_k = self.builder.for_loop(0, k)
        self.builder.set_insertion_point(loop_k.body)
        a = self.builder.load(
            lhs, [loop_i.induction_var, loop_k.induction_var]
        )
        loop_j = self.builder.for_loop(0, n)
        self.builder.set_insertion_point(loop_j.body)
        b = self.builder.load(
            rhs, [loop_k.induction_var, loop_j.induction_var]
        )
        c = self.builder.load(
            out, [loop_i.induction_var, loop_j.induction_var]
        )
        acc = self.builder.addf(c, self.builder.mulf(a, b))
        self.builder.store(
            acc, out, [loop_i.induction_var, loop_j.induction_var]
        )
        self._close_nest([loop_i, loop_k, loop_j], outer)

    def _affine(self, tile_iv: Value, tile_size: int, inner_iv: Value
                ) -> Value:
        size = self.builder.index_const(tile_size)
        scaled = self.builder._binary("kernel.muli", tile_iv, size)
        return self.builder._binary("kernel.addi", scaled, inner_iv)

    def _emit_fill(
        self, buffer: Value, shape: Sequence[int], value: float,
        element: ScalarType,
    ) -> None:
        outer = self.builder.block
        handles = self._loop_nest(shape)
        indices = [handle.induction_var for handle in handles]
        const = self.builder.const(
            value if element.is_float else int(value), element
        )
        self.builder.store(const, buffer, indices)
        self._close_nest(handles, outer)

    def _emit_contract(self, op: Operation) -> None:
        # General contractions are normalized to matmul by the frontend;
        # anything reaching here uses the fallback dense interpretation.
        raise PassError(
            "tensor.contract must be normalized to matmul before lowering"
        )

    def _emit_reduce(self, op: Operation) -> None:
        source_type: TensorType = op.operands[0].type
        result_type: TensorType = op.results[0].type
        axes = sorted(op.attr("axes"))
        kind = op.attr("kind")
        element = source_type.element
        source = self._lookup(op.operands[0])
        out = self._alloc_for(op.results[0])

        init = {"sum": 0.0, "mean": 0.0,
                "max": -3.0e38, "min": 3.0e38}[kind]
        self._emit_fill(out, result_type.shape, init, element)

        outer = self.builder.block
        handles = self._loop_nest(source_type.shape)
        indices = [handle.induction_var for handle in handles]
        kept = [
            indices[axis]
            for axis in range(source_type.rank)
            if axis not in axes
        ]
        if not kept:
            kept = [self.builder.index_const(0)]
        value = self.builder.load(source, indices)
        acc = self.builder.load(out, kept)
        if kind in ("sum", "mean"):
            combined = self.builder.addf(acc, value)
        elif kind == "max":
            combined = self.builder.maxf(acc, value)
        else:
            combined = self.builder._binary("kernel.minf", acc, value)
        self.builder.store(combined, out, kept)
        self._close_nest(handles, outer)

        if kind == "mean":
            reduced = 1
            for axis in axes:
                reduced *= source_type.shape[axis]
            outer = self.builder.block
            handles = self._loop_nest(result_type.shape)
            idx = [handle.induction_var for handle in handles]
            value = self.builder.load(out, idx)
            scale = self.builder.const(1.0 / reduced, element)
            self.builder.store(
                self.builder.mulf(value, scale), out, idx
            )
            self._close_nest(handles, outer)

    def _emit_transpose(self, op: Operation) -> None:
        source_type: TensorType = op.operands[0].type
        result_type: TensorType = op.results[0].type
        perm = list(op.attr("permutation"))
        source = self._lookup(op.operands[0])
        out = self._alloc_for(op.results[0])

        outer = self.builder.block
        handles = self._loop_nest(result_type.shape)
        dst_indices = [handle.induction_var for handle in handles]
        src_indices: List[Optional[Value]] = [None] * source_type.rank
        for dst_axis, src_axis in enumerate(perm):
            src_indices[src_axis] = dst_indices[dst_axis]
        value = self.builder.load(source, src_indices)  # type: ignore
        self.builder.store(value, out, dst_indices)
        self._close_nest(handles, outer)

    def _emit_constant(self, op: Operation) -> None:
        result_type: TensorType = op.results[0].type
        fill = op.attr("value")
        if not isinstance(fill, (int, float)):
            raise PassError(
                "tensor.constant lowering supports scalar fill values; "
                f"got {type(fill).__name__}"
            )
        out = self._alloc_for(op.results[0])
        self._emit_fill(
            out, result_type.shape, float(fill), result_type.element
        )

    def _emit_splat(self, op: Operation) -> None:
        result_type: TensorType = op.results[0].type
        self._ensure_available(op.operands[0])
        scalar = self.env.get(op.operands[0], op.operands[0])
        out = self._alloc_for(op.results[0])
        outer = self.builder.block
        handles = self._loop_nest(result_type.shape)
        indices = [handle.induction_var for handle in handles]
        self.builder.store(scalar, out, indices)
        self._close_nest(handles, outer)

    def _emit_reshape(self, op: Operation) -> None:
        source = self._lookup(op.operands[0])
        result_type: TensorType = op.results[0].type
        view = self.builder.create(
            "kernel.view",
            operands=[source],
            result_types=[_as_memref(result_type)],
        )
        self.env[op.results[0]] = view.result
