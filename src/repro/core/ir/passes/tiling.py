"""Loop tiling of tensor contractions.

Chooses (or applies caller-provided) tile sizes for ``tensor.matmul``
and ``tensor.contract`` so the working set fits a target memory level —
the paper's "tile complex tensor expressions to fit the memory
hierarchy" variant axis (§III-B). The decision is recorded in a
``tile_sizes`` attribute consumed by lowering and by the HLS engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.ir.module import Module
from repro.core.ir.ops import Operation
from repro.core.ir.passes.pass_manager import Pass
from repro.core.ir.types import TensorType
from repro.errors import PassError
from repro.utils.validation import check_positive

_TILABLE = ("tensor.matmul", "tensor.contract")


def working_set_bytes(m: int, n: int, k: int, element_bytes: int) -> int:
    """Bytes touched by an (m, n, k) matmul tile: A, B and C tiles."""
    return (m * k + k * n + m * n) * element_bytes


def choose_tile_sizes(
    shape_m: int, shape_n: int, shape_k: int,
    element_bytes: int, budget_bytes: int,
) -> Tuple[int, int, int]:
    """Largest square-ish power-of-two tile fitting the byte budget."""
    check_positive("budget_bytes", budget_bytes)
    tile = 1
    while True:
        candidate = tile * 2
        if (
            candidate > max(shape_m, shape_n, shape_k)
            or working_set_bytes(
                min(candidate, shape_m),
                min(candidate, shape_n),
                min(candidate, shape_k),
                element_bytes,
            ) > budget_bytes
        ):
            break
        tile = candidate
    return (
        min(tile, shape_m),
        min(tile, shape_n),
        min(tile, shape_k),
    )


class MatmulLoopOrderPass(Pass):
    """Choose the loop nest order for matmul lowering.

    ``ijk`` (default) accumulates into ``C[i,j]`` in the innermost
    loop — minimal state, but the read-modify-write recurrence pins
    the pipeline II at the chain latency. ``ikj`` keeps ``A[i,k]`` in
    a register and streams over ``j`` innermost: every iteration
    touches a *different* ``C`` element, so the recurrence disappears
    and the loop pipelines at II=1 — the loop-interchange half of the
    paper's polyhedral-based memory transformations [28].
    """

    name = "matmul-loop-order"

    _ORDERS = ("ijk", "ikj")

    def __init__(self, order: str = "ikj"):
        if order not in self._ORDERS:
            raise PassError(
                f"order must be one of {self._ORDERS}, got {order!r}"
            )
        self.order = order

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions():
            for op in func.walk():
                if op.name != "tensor.matmul":
                    continue
                if op.attr("loop_order") != self.order:
                    op.set_attr("loop_order", self.order)
                    changed = True
        return changed


class TilingPass(Pass):
    """Attach ``tile_sizes`` to tilable tensor ops.

    ``tile_sizes`` forces one size for every op; otherwise sizes are
    derived per-op from ``memory_budget_bytes``.
    """

    name = "tiling"

    def __init__(
        self,
        tile_sizes: Optional[Tuple[int, int, int]] = None,
        memory_budget_bytes: int = 256 * 1024,
    ):
        if tile_sizes is not None:
            for size in tile_sizes:
                check_positive("tile size", size)
        self.tile_sizes = tile_sizes
        self.memory_budget_bytes = check_positive(
            "memory_budget_bytes", memory_budget_bytes
        )

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions():
            for op in func.walk():
                if op.name not in _TILABLE:
                    continue
                sizes = self.tile_sizes or self._derive(op)
                if op.attr("tile_sizes") != list(sizes):
                    op.set_attr("tile_sizes", list(sizes))
                    changed = True
        return changed

    def _derive(self, op: Operation) -> Tuple[int, int, int]:
        lhs_type = op.operands[0].type
        if not isinstance(lhs_type, TensorType):
            raise PassError(f"{op.name}: expected tensor operand")
        if op.name == "tensor.matmul":
            rhs_type = op.operands[1].type
            m, k = lhs_type.shape
            n = rhs_type.shape[1]
        else:
            # Contractions: use the flattened extents as a proxy.
            m = lhs_type.shape[0]
            k = lhs_type.shape[-1]
            n = op.results[0].type.shape[-1] if isinstance(
                op.results[0].type, TensorType
            ) else 1
        return choose_tile_sizes(
            m, n, k, lhs_type.element.byte_width, self.memory_budget_bytes
        )
