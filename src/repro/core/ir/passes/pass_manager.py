"""Pass driver: ordered pipelines with optional post-pass checking."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.ir.module import Module
from repro.core.ir.verifier import verify_diagnostics
from repro.errors import PassError
from repro.obs import current_metrics, current_tracer

#: Tracer category for per-pass compile spans.
PASS_CATEGORY = "compiler.pass"


class Pass:
    """Base class: subclasses implement :meth:`run` returning 'changed'."""

    #: Human-readable pass name; defaults to the class name.
    name = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if changed."""
        raise NotImplementedError


@dataclass
class PassStatistics:
    """Execution record of one pass invocation.

    ``ops_before``/``ops_after`` record the module's operation count
    around the pass when a *detailed* tracer was observing the run;
    both stay ``-1`` otherwise (counting walks the whole module, so
    it is only paid for on explicit request).
    """

    name: str
    changed: bool
    seconds: float
    ops_before: int = -1
    ops_after: int = -1


@dataclass
class PassManager:
    """Runs a pipeline of passes in order.

    With ``verify_each`` set (the default), the module is structurally
    re-verified after every pass so a broken rewrite is caught at its
    source; the raised :class:`~repro.errors.PassError` names the
    offending pass and carries the full diagnostics under its
    ``diagnostics`` attribute (code PM001). With ``lint_each`` set the
    semantic analyses (taint, partitioning, lints) also run after every
    pass and *errors* they find abort the pipeline the same way
    (PM002); their warnings accumulate in :attr:`diagnostics`.
    """

    verify_each: bool = True
    lint_each: bool = False
    passes: List[Pass] = field(default_factory=list)
    statistics: List[PassStatistics] = field(default_factory=list)
    #: Findings accumulated across the run (post-pass checks).
    diagnostics: Diagnostics = field(default_factory=Diagnostics)

    def add(self, pass_: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes; returns True if any changed the module."""
        tracer = current_tracer()
        metrics = current_metrics()
        pass_seconds = metrics.histogram(
            "compiler.pass_seconds", "wall time per compiler pass",
        )
        any_changed = False
        count_ops = tracer.enabled and tracer.detailed
        for pass_ in self.passes:
            ops_before = (
                sum(1 for _ in module.walk()) if count_ops else -1
            )
            span = tracer.span(
                pass_.name, category=PASS_CATEGORY,
                module=module.name,
            )
            start = time.perf_counter()
            with span:
                try:
                    changed = pass_.run(module)
                except PassError:
                    raise
                except Exception as exc:
                    raise PassError(
                        f"pass {pass_.name} failed: {exc}"
                    ) from exc
                elapsed = time.perf_counter() - start
                ops_after = (
                    sum(1 for _ in module.walk())
                    if count_ops else -1
                )
                span.note(
                    changed=bool(changed), ops_before=ops_before,
                    ops_after=ops_after,
                    ops_delta=ops_after - ops_before,
                )
            pass_seconds.observe(elapsed, name=pass_.name)
            metrics.counter(
                "compiler.passes_run", "compiler pass invocations",
            ).inc(name=pass_.name)
            self.statistics.append(PassStatistics(
                pass_.name, bool(changed), elapsed,
                ops_before=ops_before, ops_after=ops_after,
            ))
            any_changed = any_changed or bool(changed)
            if self.verify_each:
                self._check_after(pass_, module, lint=False)
            if self.lint_each:
                self._check_after(pass_, module, lint=True)
        return any_changed

    def _check_after(self, pass_: Pass, module: Module,
                     lint: bool) -> None:
        """Post-pass check; raises PassError naming the pass."""
        if lint:
            from repro.core.analysis import analyze_module

            found = analyze_module(module)
            code, what = "PM002", "analysis errors"
        else:
            found = verify_diagnostics(module)
            code, what = "PM001", "invalid IR"
        self.diagnostics.extend(found)
        if not found.has_errors:
            return
        first = found.first_error_message()
        self.diagnostics.error(
            code,
            f"module invalid after pass {pass_.name}: {what}: {first}",
            anchor=pass_.name,
            analysis="pass-manager",
        )
        error = PassError(
            f"module invalid after pass {pass_.name}: {first}"
        )
        error.diagnostics = self.diagnostics
        raise error

    def summary(self) -> Dict[str, float]:
        """Total seconds spent per pass name."""
        totals: Dict[str, float] = {}
        for stat in self.statistics:
            totals[stat.name] = totals.get(stat.name, 0.0) + stat.seconds
        return totals
