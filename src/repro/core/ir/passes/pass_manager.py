"""Pass driver: ordered pipelines with optional post-pass verification."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.ir.module import Module
from repro.core.ir.verifier import verify
from repro.errors import PassError


class Pass:
    """Base class: subclasses implement :meth:`run` returning 'changed'."""

    #: Human-readable pass name; defaults to the class name.
    name = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if changed."""
        raise NotImplementedError


@dataclass
class PassStatistics:
    """Execution record of one pass invocation."""

    name: str
    changed: bool
    seconds: float


@dataclass
class PassManager:
    """Runs a pipeline of passes in order.

    With ``verify_each`` set (the default), the module is re-verified
    after every pass so a broken rewrite is caught at its source.
    """

    verify_each: bool = True
    passes: List[Pass] = field(default_factory=list)
    statistics: List[PassStatistics] = field(default_factory=list)

    def add(self, pass_: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes; returns True if any changed the module."""
        any_changed = False
        for pass_ in self.passes:
            start = time.perf_counter()
            try:
                changed = pass_.run(module)
            except PassError:
                raise
            except Exception as exc:
                raise PassError(f"pass {pass_.name} failed: {exc}") from exc
            elapsed = time.perf_counter() - start
            self.statistics.append(
                PassStatistics(pass_.name, bool(changed), elapsed)
            )
            any_changed = any_changed or bool(changed)
            if self.verify_each:
                try:
                    verify(module)
                except Exception as exc:
                    raise PassError(
                        f"module invalid after pass {pass_.name}: {exc}"
                    ) from exc
        return any_changed

    def summary(self) -> Dict[str, float]:
        """Total seconds spent per pass name."""
        totals: Dict[str, float] = {}
        for stat in self.statistics:
            totals[stat.name] = totals.get(stat.name, 0.0) + stat.seconds
        return totals
