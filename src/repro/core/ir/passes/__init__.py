"""Compiler passes over the unified IR.

The middle-end of Fig. 1: canonicalization, tensor-level optimization
(fusion, tiling, data layout), lowering to kernel loops, hardware/
software partitioning, and security instrumentation. Passes are
composable through :class:`~repro.core.ir.passes.pass_manager.PassManager`.
"""

from repro.core.ir.passes.pass_manager import Pass, PassManager
from repro.core.ir.passes.canonicalize import (
    CanonicalizePass,
    ConstantFoldPass,
    CSEPass,
    DCEPass,
)
from repro.core.ir.passes.fusion import ElementwiseFusionPass
from repro.core.ir.passes.tiling import MatmulLoopOrderPass, TilingPass
from repro.core.ir.passes.layout import DataLayoutPass
from repro.core.ir.passes.unroll import LoopDirectivesPass
from repro.core.ir.passes.interleave import AccumulationInterleavePass
from repro.core.ir.passes.lower_tensor import LowerTensorPass
from repro.core.ir.passes.partitioning import HardwarePartitioningPass
from repro.core.ir.passes.security import SecurityInstrumentationPass

__all__ = [
    "Pass",
    "PassManager",
    "CanonicalizePass",
    "ConstantFoldPass",
    "CSEPass",
    "DCEPass",
    "ElementwiseFusionPass",
    "TilingPass",
    "MatmulLoopOrderPass",
    "DataLayoutPass",
    "LoopDirectivesPass",
    "AccumulationInterleavePass",
    "LowerTensorPass",
    "HardwarePartitioningPass",
    "SecurityInstrumentationPass",
]
