"""Elementwise tensor fusion.

Groups chains of same-shape elementwise tensor ops so that lowering
emits a single loop nest per group instead of one per op — the classic
producer-consumer fusion the paper lists among the tensor-DSL
optimizations (§III-B). The pass is analysis+annotation: it assigns a
``fusion_group`` attribute; :class:`LowerTensorPass` honors it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ir.module import Module
from repro.core.ir.ops import Operation
from repro.core.ir.passes.pass_manager import Pass

_ELEMENTWISE = {
    f"tensor.{name}"
    for name in (
        "add", "sub", "mul", "div", "maximum", "minimum",
        "neg", "exp", "relu", "sqrt", "tanh", "sigmoid",
    )
}


def is_elementwise(op: Operation) -> bool:
    """True for tensor ops that map one-to-one over elements."""
    return op.name in _ELEMENTWISE


class ElementwiseFusionPass(Pass):
    """Assign fusion groups to connected elementwise subgraphs.

    Two same-shape elementwise ops in the same block fuse when one
    consumes the other — including multi-consumer values (``L * R``
    used twice stays in one loop; the lowering keeps it in a scalar
    register and only materializes values escaping the group).
    Groups are the connected components of that relation.
    """

    name = "elementwise-fusion"

    def run(self, module: Module) -> bool:
        changed = False
        self._next_group = 0
        for func in module.functions():
            changed |= self._run_on_function(func)
        return changed

    def _run_on_function(self, func) -> bool:
        ops = [op for op in func.walk() if is_elementwise(op)]
        if not ops:
            return False
        parent: Dict[int, int] = {id(op): id(op) for op in ops}

        def find(key: int) -> int:
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        by_id = {id(op): op for op in ops}
        for op in ops:
            for operand in op.operands:
                producer = operand.producer
                if (
                    producer is not None
                    and id(producer) in by_id
                    and producer.parent is op.parent
                    and producer.results[0].type == op.results[0].type
                ):
                    union(id(op), id(producer))

        group_numbers: Dict[int, int] = {}
        changed = False
        for op in ops:
            root = find(id(op))
            if root not in group_numbers:
                group_numbers[root] = self._next_group
                self._next_group += 1
            group = group_numbers[root]
            if op.attr("fusion_group") != group:
                op.set_attr("fusion_group", group)
                changed = True
        return changed


def fusion_groups(module: Module) -> Dict[int, list]:
    """Map of fusion group id to the ops in it, in program order."""
    groups: Dict[int, list] = {}
    for func in module.functions():
        for op in func.walk():
            group = op.attr("fusion_group")
            if group is not None:
                groups.setdefault(group, []).append(op)
    return groups
