"""Accumulation interleaving: breaking the recurrence wall.

A loop that accumulates into one scalar/element (``c += a*b``) cannot
pipeline below the latency of its load→add→store chain (RecMII). The
classic HLS rewrite keeps ``I`` independent partial sums and reduces
them after the loop: the recurrence distance grows to ``I``, so the
achievable II drops to ``ceil(chain / I)``, at the cost of ``I-1``
extra accumulator registers and a log-depth reduction tree epilogue.

This pass is analysis+annotation, like the other variant knobs: it
tags accumulation loops with an ``interleave`` attribute that the
scheduler honors (see :func:`repro.core.hls.scheduling
._initiation_interval`).
"""

from __future__ import annotations

import math

from repro.core.hls.cdfg import LoopNode, build_cdfg, loop_carried_chain
from repro.core.ir.module import Module
from repro.core.ir.passes.pass_manager import Pass
from repro.core.ir.passes.unroll import is_innermost
from repro.errors import HLSError
from repro.utils.validation import check_positive


class AccumulationInterleavePass(Pass):
    """Tag accumulation loops with an interleave factor.

    Applies only to innermost ``kernel.for`` loops that carry a
    load→…→store recurrence on one buffer; the factor is capped by
    the trip count.
    """

    name = "accumulation-interleave"

    def __init__(self, factor: int = 4):
        self.factor = int(check_positive("factor", factor))

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.functions():
            if function.is_declaration:
                continue
            if any(op.dialect == "tensor" for op in function.walk()):
                continue  # only kernel-form functions
            try:
                cdfg = build_cdfg(function)
            except HLSError:
                continue
            for loop in cdfg.innermost_loops():
                if not loop_carried_chain(loop):
                    continue
                factor = min(self.factor, max(1, loop.trip_count))
                if loop.op.attr("interleave") != factor:
                    loop.op.set_attr("interleave", factor)
                    changed = True
        return changed


def reduction_epilogue_cycles(interleave: int,
                              add_latency: int = 3) -> int:
    """Cycles of the final partial-sum reduction tree."""
    if interleave <= 1:
        return 0
    return int(math.ceil(math.log2(interleave))) * add_latency
