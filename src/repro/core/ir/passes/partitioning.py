"""Hardware/software partitioning.

Decides, per kernel function, whether to offload to the FPGA or stay on
the CPU. The paper states partitioning "will be driven by annotations"
with estimation feedback (§III-B, Fig. 1): an explicit
``everest.target`` annotation wins; otherwise a simple operational-
intensity heuristic offloads compute-dense kernels (many operations per
byte of argument data) and keeps data-light or control-heavy kernels in
software. Functions chosen for hardware also receive an
``hw.accelerator`` marker op in the module for the backend.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Operation
from repro.core.ir.passes.pass_manager import Pass
from repro.core.ir.types import MemRefType, TensorType

_ARITH_PREFIXES = (
    "kernel.add", "kernel.sub", "kernel.mul", "kernel.div",
    "kernel.max", "kernel.min", "kernel.exp", "kernel.sqrt",
    "kernel.tanh", "kernel.sigmoid", "kernel.neg",
    "tensor.",
)

#: Equivalent scalar-FLOP weight of expensive operations (a software
#: exp/tanh costs a polynomial evaluation, not one instruction).
_OP_WEIGHTS = {
    "kernel.divf": 8.0,
    "kernel.sqrtf": 8.0,
    "kernel.expf": 16.0,
    "kernel.tanhf": 20.0,
    "kernel.sigmoidf": 20.0,
    "tensor.div": 8.0,
    "tensor.sqrt": 8.0,
    "tensor.exp": 16.0,
    "tensor.tanh": 20.0,
    "tensor.sigmoid": 20.0,
}


def estimate_work(function: Function) -> Tuple[float, float]:
    """(operation count, argument bytes) for a function.

    Loop trip counts multiply nested work; tensor ops contribute their
    element counts (matmul its m*n*k).
    """
    total_bytes = 0.0
    for argument in function.arguments:
        arg_type = argument.type
        if isinstance(arg_type, (MemRefType, TensorType)):
            total_bytes += arg_type.size_bytes
        else:
            total_bytes += 8

    def walk_block(block, multiplier: float) -> float:
        work = 0.0
        for op in block.operations:
            work += op_work(op, multiplier)
        return work

    def op_work(op: Operation, multiplier: float) -> float:
        if op.name == "kernel.for":
            lower, upper = op.attr("lower"), op.attr("upper")
            step = op.attr("step")
            trips = max(0, (upper - lower + step - 1) // step)
            inner = 0.0
            for region in op.regions:
                for block in region.blocks:
                    inner += walk_block(block, multiplier * trips)
            return inner
        if op.name == "tensor.matmul":
            lhs: TensorType = op.operands[0].type
            rhs: TensorType = op.operands[1].type
            return multiplier * 2 * lhs.shape[0] * lhs.shape[1] * \
                rhs.shape[1]
        if op.dialect == "tensor" and op.results and isinstance(
            op.results[0].type, TensorType
        ):
            weight = _OP_WEIGHTS.get(op.name, 1.0)
            return multiplier * weight * op.results[0].type.num_elements
        if any(op.name.startswith(prefix) for prefix in _ARITH_PREFIXES):
            return multiplier * _OP_WEIGHTS.get(op.name, 1.0)
        if op.regions:
            inner = 0.0
            for region in op.regions:
                for block in region.blocks:
                    inner += walk_block(block, multiplier)
            return inner
        return 0.0

    work = 0.0
    for block in function.body.blocks:
        work += walk_block(block, 1.0)
    return work, max(total_bytes, 1.0)


class HardwarePartitioningPass(Pass):
    """Assign each function a cpu/fpga target and emit hw.accelerator."""

    name = "hw-partitioning"

    def __init__(self, intensity_threshold: float = 4.0,
                 min_work: float = 10_000.0):
        self.intensity_threshold = intensity_threshold
        self.min_work = min_work

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.functions():
            decided = self._decide(function)
            if function.op.attr("target") != decided:
                function.op.set_attr("target", decided)
                changed = True
            if decided == "fpga" and not self._has_marker(module,
                                                          function.name):
                marker = Operation(
                    "hw.accelerator",
                    attributes={"kernel": function.name},
                )
                module.body.append(marker)
                changed = True
        return changed

    def _decide(self, function: Function) -> str:
        annotation = function.op.attr("everest.target")
        if annotation in ("cpu", "fpga", "gpu"):
            return annotation
        work, data_bytes = estimate_work(function)
        intensity = work / data_bytes
        if work >= self.min_work and intensity >= self.intensity_threshold:
            return "fpga"
        return "cpu"

    @staticmethod
    def _has_marker(module: Module, kernel_name: str) -> bool:
        return any(
            op.name == "hw.accelerator" and op.attr("kernel") == kernel_name
            for op in module.body.operations
        )
