"""Security instrumentation pass.

Implements the compile-time half of EVEREST's data-centric protection
(§III-A): for every function whose annotations mark arguments as
*sensitive*, the pass

* wraps sensitive arguments in ``secure.taint`` ops so dynamic
  information flow tracking (TaintHLS [18]) can follow them;
* inserts a ``secure.check`` before every ``func.return`` so values
  derived from tainted data cannot leave the kernel undeclassified;
* tags the function with ``dift = True`` and the cipher chosen for its
  at-rest protection, which the HLS engine turns into taint-register
  hardware and crypto accelerator instances.

The sensitive-argument annotation arrives from the DSL layer as an
``everest.sensitive_args`` attribute (list of argument indices).
"""

from __future__ import annotations

from typing import List

from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Operation
from repro.core.ir.passes.pass_manager import Pass
from repro.errors import PassError

_DEFAULT_CIPHER = "aes128-gcm"


class SecurityInstrumentationPass(Pass):
    """Insert taint tracking and return checks for sensitive data.

    ``attach_crypto`` additionally tags the function with the cipher
    for at-rest protection, which makes HLS instantiate a crypto core
    on the accelerator's memory path. DIFT alone does not need it —
    in-transit encryption is the runtime's job.
    """

    name = "security-instrumentation"

    def __init__(self, cipher: str = _DEFAULT_CIPHER,
                 attach_crypto: bool = False):
        self.cipher = cipher
        self.attach_crypto = attach_crypto

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.functions():
            sensitive: List[int] = function.op.attr(
                "everest.sensitive_args", []
            )
            if not sensitive:
                continue
            if function.op.attr("dift"):
                continue  # already instrumented
            self._instrument(function, sensitive)
            function.op.set_attr("dift", True)
            if self.attach_crypto:
                function.op.set_attr("cipher", self.cipher)
            changed = True
        return changed

    def _instrument(self, function: Function, sensitive: List[int]) -> None:
        if function.is_declaration:
            raise PassError(
                f"cannot instrument declaration {function.name!r}"
            )
        block = function.entry_block
        arguments = function.arguments
        for index in sensitive:
            if not 0 <= index < len(arguments):
                raise PassError(
                    f"{function.name}: sensitive arg index {index} out of "
                    f"range"
                )
            argument = arguments[index]
            taint = Operation(
                "secure.taint",
                operands=[argument],
                result_types=[argument.type],
                attributes={"label": f"arg{index}"},
            )
            # Insert at block start, then reroute all *other* users of
            # the argument through the tainted value.
            first = block.operations[0] if block.operations else None
            if first is None:
                block.append(taint)
            else:
                block.insert_before(first, taint)
            for user in list(argument.uses):
                if user is taint:
                    continue
                user.replace_operand(argument, taint.result)

        for op in list(function.walk()):
            if op.name != "func.return":
                continue
            if not op.operands:
                continue
            check = Operation(
                "secure.check",
                operands=list(op.operands),
                attributes={"policy": "no-tainted-egress"},
            )
            op.parent.insert_before(op, check)
