"""HLS loop directives: unrolling and pipelining knobs.

Hardware variants differ in how much spatial parallelism HLS extracts;
this pass attaches ``unroll`` factors and ``pipeline`` (target
initiation interval) attributes to ``kernel.for`` loops, which the HLS
scheduler (:mod:`repro.core.hls.scheduling`) honors. Innermost loops
receive the directives; outer loops are left sequential.
"""

from __future__ import annotations

from repro.core.ir.module import Module
from repro.core.ir.ops import Operation
from repro.core.ir.passes.pass_manager import Pass
from repro.utils.validation import check_positive


def is_innermost(op: Operation) -> bool:
    """True when a kernel.for contains no nested kernel.for."""
    if op.name != "kernel.for":
        return False
    for region in op.regions:
        for block in region.blocks:
            for inner in block.operations:
                for nested in inner.walk():
                    if nested is not inner and nested.name == "kernel.for":
                        return False
                if inner.name == "kernel.for":
                    return False
    return True


class LoopDirectivesPass(Pass):
    """Attach unroll/pipeline directives to innermost loops."""

    name = "loop-directives"

    def __init__(self, unroll_factor: int = 1, pipeline: bool = True,
                 target_ii: int = 1):
        self.unroll_factor = int(check_positive("unroll_factor",
                                                unroll_factor))
        self.pipeline = pipeline
        self.target_ii = int(check_positive("target_ii", target_ii))

    def run(self, module: Module) -> bool:
        changed = False
        for op in module.walk():
            if not is_innermost(op):
                continue
            trip = self._trip_count(op)
            factor = min(self.unroll_factor, trip) if trip else 1
            if op.attr("unroll") != factor:
                op.set_attr("unroll", factor)
                changed = True
            if self.pipeline and op.attr("pipeline_ii") != self.target_ii:
                op.set_attr("pipeline_ii", self.target_ii)
                changed = True
            if not self.pipeline and op.attr("pipeline_ii") is not None:
                del op.attributes["pipeline_ii"]
                changed = True
        return changed

    @staticmethod
    def _trip_count(op: Operation) -> int:
        lower, upper = op.attr("lower"), op.attr("upper")
        step = op.attr("step")
        if upper <= lower:
            return 0
        return (upper - lower + step - 1) // step
