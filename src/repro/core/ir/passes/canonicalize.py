"""Canonicalization: constant folding, CSE and dead-code elimination.

These run between every major phase so later passes and the HLS engine
see minimal IR. Only operations whose dialect definition carries the
*pure* trait participate in CSE/DCE; folding is implemented for the
kernel dialect's scalar arithmetic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.core.ir.dialects import op_is_pure
from repro.core.ir.module import Module
from repro.core.ir.ops import Block, Operation
from repro.core.ir.passes.pass_manager import Pass

_FOLDERS: Dict[str, Callable[..., float]] = {
    "kernel.addf": lambda a, b: a + b,
    "kernel.subf": lambda a, b: a - b,
    "kernel.mulf": lambda a, b: a * b,
    "kernel.divf": lambda a, b: a / b if b != 0 else math.inf,
    "kernel.addi": lambda a, b: int(a) + int(b),
    "kernel.subi": lambda a, b: int(a) - int(b),
    "kernel.muli": lambda a, b: int(a) * int(b),
    "kernel.maxf": lambda a, b: max(a, b),
    "kernel.minf": lambda a, b: min(a, b),
    "kernel.negf": lambda a: -a,
    "kernel.expf": lambda a: math.exp(min(a, 700.0)),
    "kernel.sqrtf": lambda a: math.sqrt(a) if a >= 0 else math.nan,
    "kernel.absf": lambda a: abs(a),
}


def _const_value(op_operand) -> Optional[float]:
    producer = op_operand.producer
    if producer is not None and producer.name == "kernel.const":
        return producer.attr("value")
    return None


class ConstantFoldPass(Pass):
    """Fold kernel arithmetic whose operands are all constants."""

    name = "constant-fold"

    def run(self, module: Module) -> bool:
        changed = False
        for op in list(module.walk()):
            folder = _FOLDERS.get(op.name)
            if folder is None or not op.results:
                continue
            values = [_const_value(operand) for operand in op.operands]
            if any(value is None for value in values):
                continue
            try:
                folded = folder(*values)
            except (ValueError, OverflowError):
                continue
            const = Operation(
                "kernel.const",
                result_types=[op.results[0].type],
                attributes={"value": folded},
            )
            op.parent.insert_before(op, const)
            op.results[0].replace_all_uses_with(const.result)
            op.erase()
            changed = True
        return changed


class CSEPass(Pass):
    """Common-subexpression elimination over pure ops, per block."""

    name = "cse"

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions():
            for block in _all_blocks(func.op):
                changed |= self._run_on_block(block)
        return changed

    @staticmethod
    def _key(op: Operation) -> Tuple:
        attrs = tuple(sorted(
            (key, repr(value)) for key, value in op.attributes.items()
        ))
        return (op.name, tuple(id(o) for o in op.operands), attrs)

    def _run_on_block(self, block: Block) -> bool:
        changed = False
        seen: Dict[Tuple, Operation] = {}
        for op in list(block.operations):
            if not op_is_pure(op) or op.regions or not op.results:
                continue
            key = self._key(op)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            for old, new in zip(op.results, existing.results):
                old.replace_all_uses_with(new)
            op.erase()
            changed = True
        return changed


class DCEPass(Pass):
    """Remove pure operations whose results are all unused."""

    name = "dce"

    def run(self, module: Module) -> bool:
        changed = True
        any_changed = False
        while changed:
            changed = False
            for op in list(module.walk()):
                if not op_is_pure(op) or op.regions:
                    continue
                if op.parent is None:
                    continue
                if all(not result.uses for result in op.results):
                    op.erase()
                    changed = True
                    any_changed = True
        return any_changed


class CanonicalizePass(Pass):
    """Fold + CSE + DCE to a fixed point (bounded iterations)."""

    name = "canonicalize"

    def __init__(self, max_iterations: int = 8):
        self.max_iterations = max_iterations

    def run(self, module: Module) -> bool:
        any_changed = False
        for _ in range(self.max_iterations):
            changed = ConstantFoldPass().run(module)
            changed |= CSEPass().run(module)
            changed |= DCEPass().run(module)
            any_changed |= changed
            if not changed:
                break
        return any_changed


def _all_blocks(op: Operation):
    for region in op.regions:
        for block in region.blocks:
            yield block
            for inner in block.operations:
                yield from _all_blocks(inner)
