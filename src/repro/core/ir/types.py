"""Type system for the unified IR.

A deliberately small lattice: scalars, dense tensors, memory references
(buffers with an address space), streams, and function types. Types are
immutable and hash-consed by virtue of being frozen dataclasses, so they
can key dictionaries in passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import IRError


@dataclass(frozen=True)
class Type:
    """Base class of all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar: one of f32, f64, i1, i32, i64, index."""

    name: str

    _VALID = ("f32", "f64", "i1", "i8", "i32", "i64", "index")

    def __post_init__(self):
        if self.name not in self._VALID:
            raise IRError(f"unknown scalar type {self.name!r}")

    @property
    def is_float(self) -> bool:
        """True for floating-point scalars."""
        return self.name in ("f32", "f64")

    @property
    def is_integer(self) -> bool:
        """True for integer scalars (including i1 and index)."""
        return not self.is_float

    @property
    def bit_width(self) -> int:
        """Storage width in bits."""
        widths = {
            "f32": 32, "f64": 64, "i1": 1, "i8": 8,
            "i32": 32, "i64": 64, "index": 64,
        }
        return widths[self.name]

    @property
    def byte_width(self) -> int:
        """Storage width in bytes (i1 stored as one byte)."""
        return max(1, self.bit_width // 8)

    def __str__(self) -> str:
        return self.name


F32 = ScalarType("f32")
F64 = ScalarType("f64")
I1 = ScalarType("i1")
I8 = ScalarType("i8")
I32 = ScalarType("i32")
I64 = ScalarType("i64")
INDEX = ScalarType("index")


@dataclass(frozen=True)
class TensorType(Type):
    """A dense tensor value with static shape."""

    shape: Tuple[int, ...]
    element: ScalarType

    def __post_init__(self):
        for dim in self.shape:
            if dim <= 0:
                raise IRError(
                    f"tensor dimensions must be positive, got {self.shape}"
                )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def size_bytes(self) -> int:
        """Dense storage footprint in bytes."""
        return self.num_elements * self.element.byte_width

    def __str__(self) -> str:
        dims = "x".join(str(dim) for dim in self.shape)
        return f"tensor<{dims}x{self.element}>"


@dataclass(frozen=True)
class MemRefType(Type):
    """A reference to a buffer in a named memory space.

    ``layout`` distinguishes array-of-structures from
    structure-of-arrays for record data (paper §III-B variant example).
    """

    shape: Tuple[int, ...]
    element: ScalarType
    space: str = "default"
    layout: str = "row_major"

    _LAYOUTS = ("row_major", "col_major", "aos", "soa")

    def __post_init__(self):
        for dim in self.shape:
            if dim <= 0:
                raise IRError(
                    f"memref dimensions must be positive, got {self.shape}"
                )
        if self.layout not in self._LAYOUTS:
            raise IRError(f"unknown layout {self.layout!r}")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def size_bytes(self) -> int:
        """Dense storage footprint in bytes."""
        return self.num_elements * self.element.byte_width

    def with_layout(self, layout: str) -> "MemRefType":
        """Copy of this type with a different data layout."""
        return MemRefType(self.shape, self.element, self.space, layout)

    def with_space(self, space: str) -> "MemRefType":
        """Copy of this type placed in a different memory space."""
        return MemRefType(self.shape, self.element, space, self.layout)

    def __str__(self) -> str:
        dims = "x".join(str(dim) for dim in self.shape)
        suffix = ""
        if self.space != "default":
            suffix += f", {self.space}"
        if self.layout != "row_major":
            suffix += f", {self.layout}"
        return f"memref<{dims}x{self.element}{suffix}>"


@dataclass(frozen=True)
class StreamType(Type):
    """A FIFO stream of scalar or tensor elements (dataflow edges)."""

    element: Type
    depth: int = 0  # 0 = unbounded

    def __post_init__(self):
        if self.depth < 0:
            raise IRError(f"stream depth must be >= 0, got {self.depth}")

    def __str__(self) -> str:
        if self.depth:
            return f"stream<{self.element}, {self.depth}>"
        return f"stream<{self.element}>"


@dataclass(frozen=True)
class TokenType(Type):
    """A pure control dependence (no data)."""

    def __str__(self) -> str:
        return "token"


TOKEN = TokenType()


@dataclass(frozen=True)
class FunctionType(Type):
    """Signature of a function or task kernel."""

    inputs: Tuple[Type, ...] = field(default_factory=tuple)
    results: Tuple[Type, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


def parse_scalar(name: str) -> ScalarType:
    """Look up a scalar type by name."""
    return ScalarType(name)


def common_element_type(a: Type, b: Type) -> ScalarType:
    """Element type shared by two tensor/scalar types, or raise."""

    def element_of(t: Type) -> ScalarType:
        if isinstance(t, ScalarType):
            return t
        if isinstance(t, (TensorType, MemRefType)):
            return t.element
        raise IRError(f"type {t} has no element type")

    ea, eb = element_of(a), element_of(b)
    if ea != eb:
        raise IRError(f"mismatched element types {ea} vs {eb}")
    return ea
