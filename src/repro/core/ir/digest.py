"""Content-addressed digests for IR modules and functions.

The printer assigns stable per-scope value names, so its output is a
canonical rendering of a module's structure: two modules print
identically iff they hold the same operations, attributes and types in
the same order. Hashing that text gives a *content* key — unlike
``id()`` it survives garbage collection, is never recycled, and is
identical across processes, which is what the DSE caches need to
memoize prepared variants and cost estimates safely.
"""

from __future__ import annotations

import hashlib

from repro.core.ir.module import Module
from repro.core.ir.printer import print_module, print_op

#: Bump when the printed form or digest recipe changes incompatibly;
#: part of every persistent cache key so stale entries never match.
DIGEST_VERSION = "1"


def module_digest(module: Module) -> str:
    """Stable hex digest of a module's printed structure."""
    text = print_module(module)
    payload = f"ir-digest-v{DIGEST_VERSION}\x1f{text}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def function_digest(module: Module, kernel: str) -> str:
    """Digest of one function's printed subtree (module-independent).

    Useful when only one kernel of a many-kernel module matters: edits
    to sibling functions do not change this digest.
    """
    function = module.find_function(kernel)
    if function is None:
        raise ValueError(f"no function named {kernel!r}")
    text = print_op(function.op)
    payload = f"ir-digest-v{DIGEST_VERSION}\x1f{text}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
