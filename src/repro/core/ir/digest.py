"""Content-addressed digests for IR modules and functions.

The printer assigns stable per-scope value names, so its output is a
canonical rendering of a module's structure: two modules print
identically iff they hold the same operations, attributes and types in
the same order. Hashing that text gives a *content* key — unlike
``id()`` it survives garbage collection, is never recycled, and is
identical across processes, which is what the DSE caches need to
memoize prepared variants and cost estimates safely.

Digests are memoized on the module's monotonic version counter (see
:meth:`repro.core.ir.module.Module.version`): an unmutated module is
printed and hashed exactly once per process no matter how many cache
lookups, lint passes, or DSE points ask for its digest, while any
structural mutation bumps the counter and transparently invalidates
the memo. :func:`digest_stats` exposes print/hit counters so tests and
benchmarks can assert that repeated lookups do not re-print.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.core.ir.module import Module
from repro.core.ir.printer import print_module, print_op

#: Bump when the printed form or digest recipe changes incompatibly;
#: part of every persistent cache key so stale entries never match.
DIGEST_VERSION = "1"


@dataclass
class DigestStats:
    """Counters for digest memoization (process-wide).

    ``prints`` counts full IR reprints (the expensive part); ``hits``
    counts lookups served from the version-keyed memo.
    """

    hits: int = 0
    prints: int = 0

    @property
    def lookups(self) -> int:
        """Total digest requests."""
        return self.hits + self.prints


_stats = DigestStats()
_memo_enabled = True


def digest_stats() -> DigestStats:
    """The process-wide digest counters (mutated in place)."""
    return _stats


def reset_digest_stats() -> DigestStats:
    """Zero the counters and return the stats object."""
    _stats.hits = 0
    _stats.prints = 0
    return _stats


@contextmanager
def digest_memoization(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the version-keyed memo.

    Benchmarks use ``digest_memoization(False)`` to measure the
    pre-memoization baseline, where every lookup reprints the module.
    """
    global _memo_enabled
    previous = _memo_enabled
    _memo_enabled = enabled
    try:
        yield
    finally:
        _memo_enabled = previous


def _hash_text(text: str) -> str:
    payload = f"ir-digest-v{DIGEST_VERSION}\x1f{text}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def module_digest(module: Module) -> str:
    """Stable hex digest of a module's printed structure."""
    root = module.op
    version = root.version
    if _memo_enabled:
        memo: Tuple[int, str] | None = getattr(root, "_digest_memo", None)
        if memo is not None and memo[0] == version:
            _stats.hits += 1
            return memo[1]
    _stats.prints += 1
    digest = _hash_text(print_module(module))
    if _memo_enabled:
        root._digest_memo = (version, digest)
    return digest


def function_digest(module: Module, kernel: str) -> str:
    """Digest of one function's printed subtree (module-independent).

    Useful when only one kernel of a many-kernel module matters: edits
    to sibling functions do not change this digest. Memoized per kernel
    on the module version; a sibling edit merely forces a (cheap,
    same-valued) recompute of this function's digest.
    """
    root = module.op
    version = root.version
    if _memo_enabled:
        memo: Dict[str, Tuple[int, str]] = getattr(
            root, "_function_digest_memo", None
        ) or {}
        entry = memo.get(kernel)
        if entry is not None and entry[0] == version:
            _stats.hits += 1
            return entry[1]
    function = module.find_function(kernel)
    if function is None:
        raise ValueError(f"no function named {kernel!r}")
    _stats.prints += 1
    digest = _hash_text(print_op(function.op))
    if _memo_enabled:
        memo[kernel] = (version, digest)
        root._function_digest_memo = memo
    return digest
