"""Textual rendering of IR modules in a generic MLIR-like syntax.

Example output::

    builtin.module @pipeline {
      func.func @saxpy (%arg0: memref<1024xf32>, ...) -> () {
        kernel.for {lower = 0, upper = 1024, step = 1} {
        ^bb(%i: index):
          %0 = kernel.load(%arg0, %i) : f32
          ...
          kernel.yield
        }
        func.return
      }
    }

The printer assigns stable, human-readable names per function scope.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.ir.module import Module
from repro.core.ir.ops import Block, Operation, Region, Value
from repro.core.ir.types import FunctionType, Type


def _format_attr(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_attr(v) for v in value) + "]"
    if isinstance(value, FunctionType):
        return str(value)
    if isinstance(value, Type):
        return str(value)
    if isinstance(value, dict):
        inner = ", ".join(
            f"{key} = {_format_attr(val)}" for key, val in value.items()
        )
        return "{" + inner + "}"
    return repr(value)


class Printer:
    """Stateful printer with per-scope value numbering."""

    def __init__(self):
        self._names: Dict[int, str] = {}
        self._counter = 0
        self._lines: List[str] = []

    def print_module(self, module: Module) -> str:
        """Render a whole module."""
        self._lines = []
        self._emit(f"builtin.module @{module.name} {{", 0)
        for op in module.body.operations:
            self._print_op(op, 1)
        self._emit("}", 0)
        return "\n".join(self._lines)

    def _emit(self, text: str, indent: int) -> None:
        self._lines.append("  " * indent + text)

    def _name_of(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            self._names[key] = f"%{self._counter}"
            self._counter += 1
        return self._names[key]

    def _print_op(self, op: Operation, indent: int) -> None:
        if op.name == "func.func":
            self._print_func(op, indent)
            return
        parts = []
        if op.results:
            results = ", ".join(self._name_of(r) for r in op.results)
            parts.append(f"{results} = ")
        parts.append(op.name)
        if op.operands:
            operands = ", ".join(self._name_of(o) for o in op.operands)
            parts.append(f"({operands})")
        attrs = {
            key: value for key, value in op.attributes.items()
        }
        if attrs:
            inner = ", ".join(
                f"{key} = {_format_attr(value)}"
                for key, value in sorted(attrs.items())
            )
            parts.append(f" {{{inner}}}")
        if op.results:
            types = ", ".join(str(r.type) for r in op.results)
            parts.append(f" : {types}")
        line = "".join(parts)
        if op.regions:
            self._emit(line + " {", indent)
            for region in op.regions:
                self._print_region(region, indent + 1)
            self._emit("}", indent)
        else:
            self._emit(line, indent)

    def _print_func(self, op: Operation, indent: int) -> None:
        name = op.attr("sym_name")
        function_type: FunctionType = op.attr("function_type")
        region = op.regions[0]
        if region.blocks:
            args = ", ".join(
                f"{self._name_of(arg)}: {arg.type}"
                for arg in region.blocks[0].arguments
            )
        else:
            args = ", ".join(str(t) for t in function_type.inputs)
        results = ", ".join(str(t) for t in function_type.results)
        extra_attrs = {
            key: value
            for key, value in op.attributes.items()
            if key not in ("sym_name", "function_type")
        }
        attr_text = ""
        if extra_attrs:
            inner = ", ".join(
                f"{key} = {_format_attr(value)}"
                for key, value in sorted(extra_attrs.items())
            )
            attr_text = f" attributes {{{inner}}}"
        header = f"func.func @{name} ({args}) -> ({results}){attr_text}"
        if region.blocks and region.blocks[0].operations:
            self._emit(header + " {", indent)
            for block_op in region.blocks[0].operations:
                self._print_op(block_op, indent + 1)
            self._emit("}", indent)
        else:
            self._emit(header, indent)

    def _print_region(self, region: Region, indent: int) -> None:
        for index, block in enumerate(region.blocks):
            if block.arguments or index > 0:
                args = ", ".join(
                    f"{self._name_of(arg)}: {arg.type}"
                    for arg in block.arguments
                )
                self._emit(f"^bb{index}({args}):", indent)
            for op in block.operations:
                self._print_op(op, indent + 1 if block.arguments else indent)


def print_module(module: Module) -> str:
    """Render a module to MLIR-like text."""
    return Printer().print_module(module)


def print_op(op: Operation) -> str:
    """Render a single operation subtree."""
    printer = Printer()
    printer._print_op(op, 0)
    return "\n".join(printer._lines)
