"""Parser for the textual IR form produced by the printer.

Round-trips the generic MLIR-like syntax of
:mod:`repro.core.ir.printer`: modules, functions, generic operations
with operands/attributes/result types, and nested regions with block
arguments. Used for IR snapshot files and as a structural test oracle
(print → parse → print must be a fixed point).

Grammar (informal)::

    module    := 'builtin.module' '@' NAME '{' func* '}'
    func      := 'func.func' '@' NAME '(' args ')' '->' '(' types ')'
                 [ 'attributes' attr-dict ] [ '{' op* '}' ]
    op        := [results '='] OPNAME ['(' operands ')']
                 [attr-dict] [':' types] ['{' region* '}']
    region    := [ '^bb' N '(' args ')' ':' ] op*
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ir.module import Module
from repro.core.ir.ops import Block, Operation, Value
from repro.core.ir.types import (
    FunctionType,
    MemRefType,
    ScalarType,
    StreamType,
    TensorType,
    TokenType,
    Type,
)
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>->)
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<ssa>%[A-Za-z0-9_]+)
  | (?P<caret>\^[A-Za-z0-9_]+)
  | (?P<symbol>@[A-Za-z0-9_.\-]*)
  | (?P<punct>[{}()\[\]<>=,:])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if text.startswith("//", position):
            end = text.find("\n", position)
            position = len(text) if end < 0 else end
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {char!r} at offset {position}"
            )
        kind = match.lastgroup or "punct"
        tokens.append((kind, match.group()))
        position = match.end()
    tokens.append(("eof", ""))
    return tokens


class IRParser:
    """Parses printer output back into an IR module."""

    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.position = 0
        self.values: Dict[str, Value] = {}

    # ------------------------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def _advance(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        if token[0] != "eof":
            self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None
                ) -> Tuple[str, str]:
        token = self._peek()
        if token[0] != kind or (text is not None and token[1] != text):
            raise ParseError(
                f"expected {text or kind!r}, found {token[1]!r}"
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token[0] == kind and (text is None or token[1] == text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------

    def parse_module(self) -> Module:
        """Parse a whole module."""
        self._expect("ident", "builtin.module")
        name_token = self._expect("symbol")
        module = Module(name_token[1][1:])
        self._expect("punct", "{")
        while not self._accept("punct", "}"):
            module.body.append(self._parse_top_level())
        return module

    def _parse_top_level(self) -> Operation:
        token = self._peek()
        if token[1] == "func.func":
            return self._parse_func()
        return self._parse_op()

    def _parse_func(self) -> Operation:
        self._expect("ident", "func.func")
        name = self._expect("symbol")[1][1:]
        self._expect("punct", "(")
        arg_entries: List[Tuple[Optional[str], Type]] = []
        while not self._accept("punct", ")"):
            if self._peek()[0] == "ssa":
                ssa = self._advance()[1]
                self._expect("punct", ":")
                arg_entries.append((ssa, self._parse_type()))
            else:
                arg_entries.append((None, self._parse_type()))
            self._accept("punct", ",")
        self._expect("arrow")
        self._expect("punct", "(")
        results: List[Type] = []
        while not self._accept("punct", ")"):
            results.append(self._parse_type())
            self._accept("punct", ",")

        attrs: Dict[str, Any] = {}
        if self._accept("ident", "attributes"):
            attrs = self._parse_attr_dict()
        attrs["sym_name"] = name
        attrs["function_type"] = FunctionType(
            tuple(t for _n, t in arg_entries), tuple(results)
        )

        op = Operation("func.func", attributes=attrs, num_regions=1)
        if self._accept("punct", "{"):
            block = op.regions[0].add_block(
                [t for _n, t in arg_entries]
            )
            for (ssa, _t), value in zip(arg_entries, block.arguments):
                if ssa is not None:
                    # keep the printed name: diagnostics mention it, so
                    # reparsing the same text must yield the same names
                    value.name = ssa[1:]
                    self.values[ssa] = value
            while not self._accept("punct", "}"):
                block.append(self._parse_op())
        return op

    # ------------------------------------------------------------------

    def _parse_op(self) -> Operation:
        result_names: List[str] = []
        if self._peek()[0] == "ssa":
            result_names.append(self._advance()[1])
            while self._accept("punct", ","):
                result_names.append(self._expect("ssa")[1])
            self._expect("punct", "=")
        op_name = self._expect("ident")[1]

        operands: List[Value] = []
        if self._accept("punct", "("):
            while not self._accept("punct", ")"):
                ssa = self._expect("ssa")[1]
                if ssa not in self.values:
                    raise ParseError(f"use of undefined value {ssa}")
                operands.append(self.values[ssa])
                self._accept("punct", ",")

        attrs: Dict[str, Any] = {}
        if self._peek() == ("punct", "{") and not self._region_follows():
            attrs = self._parse_attr_dict()

        result_types: List[Type] = []
        if self._accept("punct", ":"):
            result_types.append(self._parse_type())
            while self._accept("punct", ","):
                result_types.append(self._parse_type())

        if result_names and len(result_types) != len(result_names):
            raise ParseError(
                f"{op_name}: {len(result_names)} results but "
                f"{len(result_types)} result types"
            )

        op = Operation(
            op_name,
            operands=operands,
            result_types=result_types,
            attributes=attrs,
        )
        for name, value in zip(result_names, op.results):
            value.name = name[1:]
            self.values[name] = value

        if self._accept("punct", "{"):
            self._parse_region_into(op)
        return op

    def _region_follows(self) -> bool:
        """Disambiguate attr-dict '{' from region '{'.

        A region starts with '^bb', an op name (ident containing '.')
        or a results list; an attribute dict starts with 'ident ='.
        """
        kind, text = self.tokens[self.position + 1]
        if kind == "caret" or kind == "ssa":
            return True
        if kind == "punct" and text == "}":
            # empty braces: treat as empty attr-dict
            return False
        if kind == "ident":
            following = self.tokens[self.position + 2]
            return not (following == ("punct", "="))
        return False

    def _parse_region_into(self, op: Operation) -> None:
        from repro.core.ir.ops import Region

        region = Region(op)
        op.regions.append(region)
        if self._peek()[0] == "caret":
            self._advance()
            self._expect("punct", "(")
            arg_entries: List[Tuple[str, Type]] = []
            while not self._accept("punct", ")"):
                ssa = self._expect("ssa")[1]
                self._expect("punct", ":")
                arg_entries.append((ssa, self._parse_type()))
                self._accept("punct", ",")
            self._expect("punct", ":")
            block = region.add_block([t for _n, t in arg_entries])
            for (ssa, _t), value in zip(arg_entries, block.arguments):
                value.name = ssa[1:]
                self.values[ssa] = value
        else:
            block = region.add_block()
        while not self._accept("punct", "}"):
            block.append(self._parse_op())

    # ------------------------------------------------------------------

    def _parse_attr_dict(self) -> Dict[str, Any]:
        self._expect("punct", "{")
        attrs: Dict[str, Any] = {}
        while not self._accept("punct", "}"):
            key = self._expect("ident")[1]
            self._expect("punct", "=")
            attrs[key] = self._parse_attr_value()
            self._accept("punct", ",")
        return attrs

    def _parse_attr_value(self) -> Any:
        kind, text = self._peek()
        if kind == "string":
            self._advance()
            return text[1:-1]
        if kind == "number":
            self._advance()
            if "." in text or "e" in text or "E" in text:
                return float(text)
            return int(text)
        if kind == "ident" and text in ("true", "false"):
            self._advance()
            return text == "true"
        if kind == "punct" and text == "[":
            self._advance()
            items: List[Any] = []
            while not self._accept("punct", "]"):
                items.append(self._parse_attr_value())
                self._accept("punct", ",")
            return items
        if kind == "punct" and text == "(":
            self._advance()
            items = []
            while not self._accept("punct", ")"):
                items.append(self._parse_attr_value())
                self._accept("punct", ",")
            return tuple(items)
        if kind == "ident" and text in ("tensor", "memref", "stream"):
            return self._parse_type()
        raise ParseError(f"cannot parse attribute value near {text!r}")

    # ------------------------------------------------------------------

    _SCALARS = ("f32", "f64", "i1", "i8", "i32", "i64", "index")

    def _parse_type(self) -> Type:
        kind, text = self._peek()
        if kind == "ident" and text in self._SCALARS:
            self._advance()
            return ScalarType(text)
        if kind == "ident" and text == "token":
            self._advance()
            return TokenType()
        if kind == "ident" and text in ("tensor", "memref"):
            self._advance()
            self._expect("punct", "<")
            # '2x3xf32' tokenizes as number '2' + ident 'x3xf32';
            # reassemble consecutive number/ident tokens.
            pieces = []
            while self._peek()[0] in ("number", "ident"):
                pieces.append(self._advance()[1])
            dims_and_elem = "".join(pieces)
            parts = dims_and_elem.split("x")
            element = ScalarType(parts[-1])
            dims = tuple(int(d) for d in parts[:-1])
            space, layout = "default", "row_major"
            while self._accept("punct", ","):
                modifier = self._expect("ident")[1]
                if modifier in ("row_major", "col_major", "aos",
                                "soa"):
                    layout = modifier
                else:
                    space = modifier
            self._expect("punct", ">")
            if text == "tensor":
                return TensorType(dims, element)
            return MemRefType(dims, element, space, layout)
        if kind == "ident" and text == "stream":
            self._advance()
            self._expect("punct", "<")
            element = self._parse_type()
            depth = 0
            if self._accept("punct", ","):
                depth = int(self._expect("number")[1])
            self._expect("punct", ">")
            return StreamType(element, depth)
        raise ParseError(f"cannot parse type near {text!r}")


def parse_module(text: str) -> Module:
    """Parse printed IR text back into a module."""
    return IRParser(text).parse_module()
