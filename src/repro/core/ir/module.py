"""Top-level IR containers: modules and functions.

A :class:`Module` owns a single ``builtin.module`` operation whose one
block holds ``func.func`` operations. :class:`Function` is a convenience
wrapper over a ``func.func`` op giving named access to its signature,
entry block, and EVEREST-specific attributes (target, annotations).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.ir.ops import Block, Operation, Region, Value
from repro.core.ir.types import FunctionType, Type
from repro.errors import IRError


class Function:
    """Wrapper around a ``func.func`` operation."""

    def __init__(self, op: Operation):
        if op.name != "func.func":
            raise IRError(f"expected func.func, got {op.name}")
        if "sym_name" not in op.attributes:
            raise IRError("func.func requires a sym_name attribute")
        if not isinstance(op.attr("function_type"), FunctionType):
            raise IRError("func.func requires a function_type attribute")
        self.op = op

    @property
    def name(self) -> str:
        """Symbol name."""
        return self.op.attr("sym_name")

    @property
    def type(self) -> FunctionType:
        """Function signature."""
        return self.op.attr("function_type")

    @property
    def body(self) -> Region:
        """The body region."""
        return self.op.regions[0]

    @property
    def entry_block(self) -> Block:
        """Entry block of the body."""
        return self.body.entry

    @property
    def arguments(self) -> List[Value]:
        """Entry block arguments (the function parameters)."""
        return self.entry_block.arguments

    @property
    def is_declaration(self) -> bool:
        """True when the function has no body blocks."""
        return self.body.empty or not self.body.blocks[0].operations

    @property
    def target(self) -> str:
        """Execution target assigned by partitioning: cpu/fpga/gpu/any."""
        return self.op.attr("target", "any")

    @target.setter
    def target(self, value: str) -> None:
        if value not in ("any", "cpu", "fpga", "gpu"):
            raise IRError(f"unknown target {value!r}")
        self.op.set_attr("target", value)

    def walk(self) -> Iterator[Operation]:
        """All operations in the body, pre-order."""
        return self.body.walk()

    def __repr__(self) -> str:
        return f"<func {self.name} : {self.type}>"


class Module:
    """A compilation unit: an ordered set of functions plus metadata."""

    def __init__(self, name: str = "module"):
        self.op = Operation(
            "builtin.module", attributes={"sym_name": name}, num_regions=1
        )
        self.op.regions[0].add_block()

    @property
    def name(self) -> str:
        """Module symbol name."""
        return self.op.attr("sym_name")

    @property
    def body(self) -> Block:
        """The single block holding top-level operations."""
        return self.op.regions[0].blocks[0]

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every structural edit.

        :func:`repro.core.ir.digest.module_digest` memoizes on this, so
        digesting an unmutated module is a counter compare, not a full
        reprint of the IR.
        """
        return self.op.version

    def add_function(
        self,
        name: str,
        function_type: FunctionType,
        attributes: Optional[Dict[str, Any]] = None,
        declaration: bool = False,
    ) -> Function:
        """Create a ``func.func`` in this module and return its wrapper."""
        if self.find_function(name) is not None:
            raise IRError(f"duplicate function symbol {name!r}")
        attrs = dict(attributes or {})
        attrs["sym_name"] = name
        attrs["function_type"] = function_type
        op = Operation("func.func", attributes=attrs, num_regions=1)
        if not declaration:
            op.regions[0].add_block(list(function_type.inputs))
        self.body.append(op)
        return Function(op)

    def functions(self) -> List[Function]:
        """All functions in declaration order."""
        return [
            Function(op)
            for op in self.body.operations
            if op.name == "func.func"
        ]

    def find_function(self, name: str) -> Optional[Function]:
        """Look up a function by symbol name."""
        for op in self.body.operations:
            if op.name == "func.func" and op.attr("sym_name") == name:
                return Function(op)
        return None

    def remove_function(self, name: str) -> None:
        """Delete a function by symbol name."""
        function = self.find_function(name)
        if function is None:
            raise IRError(f"no function named {name!r}")
        self.body.operations.remove(function.op)
        function.op.parent = None

    def walk(self) -> Iterator[Operation]:
        """Every operation in the module, pre-order."""
        return self.op.walk()

    def clone(self) -> "Module":
        """Deep copy of the whole module."""
        new = Module(self.name)
        value_map: Dict[Value, Value] = {}
        for op in self.body.operations:
            new.body.append(op.clone(value_map))
        return new

    def __repr__(self) -> str:
        names = ", ".join(f.name for f in self.functions())
        return f"<module {self.name} [{names}]>"
