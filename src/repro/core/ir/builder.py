"""IR construction helper with an insertion point.

Wraps the generic :class:`Operation` constructor with dialect-aware
convenience methods so frontends and passes build well-formed IR
concisely. Every ``create`` checks that the op is registered.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.ir.dialects import lookup_op
from repro.core.ir.ops import Block, Operation, Value
from repro.core.ir.types import (
    F32,
    I1,
    INDEX,
    MemRefType,
    ScalarType,
    TensorType,
    Type,
)
from repro.errors import IRError


class Builder:
    """Creates operations at an insertion point (end of a block)."""

    def __init__(self, block: Optional[Block] = None):
        self.block = block

    def set_insertion_point(self, block: Block) -> None:
        """Move the insertion point to the end of ``block``."""
        self.block = block

    @contextmanager
    def at_block(self, block: Block) -> Iterator["Builder"]:
        """Temporarily build into another block."""
        saved = self.block
        self.block = block
        try:
            yield self
        finally:
            self.block = saved

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Any]] = None,
        num_regions: int = 0,
    ) -> Operation:
        """Create a registered operation and insert it."""
        lookup_op(name)  # raises for unknown ops
        op = Operation(
            name,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            num_regions=num_regions,
        )
        if self.block is None:
            raise IRError("builder has no insertion point")
        self.block.append(op)
        return op

    # ------------------------------------------------------------------
    # kernel dialect helpers
    # ------------------------------------------------------------------

    def const(self, value: float, type: ScalarType = F32) -> Value:
        """Materialize a scalar constant."""
        op = self.create(
            "kernel.const", result_types=[type], attributes={"value": value}
        )
        return op.result

    def index_const(self, value: int) -> Value:
        """Materialize an index constant."""
        return self.const(int(value), INDEX)

    def _binary(self, name: str, lhs: Value, rhs: Value,
                result_type: Optional[Type] = None) -> Value:
        op = self.create(
            name, operands=[lhs, rhs],
            result_types=[result_type or lhs.type],
        )
        return op.result

    def addf(self, lhs: Value, rhs: Value) -> Value:
        """Floating add."""
        return self._binary("kernel.addf", lhs, rhs)

    def subf(self, lhs: Value, rhs: Value) -> Value:
        """Floating subtract."""
        return self._binary("kernel.subf", lhs, rhs)

    def mulf(self, lhs: Value, rhs: Value) -> Value:
        """Floating multiply."""
        return self._binary("kernel.mulf", lhs, rhs)

    def divf(self, lhs: Value, rhs: Value) -> Value:
        """Floating divide."""
        return self._binary("kernel.divf", lhs, rhs)

    def maxf(self, lhs: Value, rhs: Value) -> Value:
        """Floating maximum."""
        return self._binary("kernel.maxf", lhs, rhs)

    def cmplt(self, lhs: Value, rhs: Value) -> Value:
        """Less-than comparison producing i1."""
        return self._binary("kernel.cmplt", lhs, rhs, I1)

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Value:
        """Ternary select."""
        op = self.create(
            "kernel.select",
            operands=[cond, if_true, if_false],
            result_types=[if_true.type],
        )
        return op.result

    def unary(self, name: str, operand: Value) -> Value:
        """A unary kernel op such as kernel.expf."""
        op = self.create(
            f"kernel.{name}", operands=[operand],
            result_types=[operand.type],
        )
        return op.result

    def alloc(self, memref_type: MemRefType, name: str = "") -> Value:
        """Allocate a local buffer."""
        attrs: Dict[str, Any] = {}
        if name:
            attrs["sym_name"] = name
        op = self.create(
            "kernel.alloc", result_types=[memref_type], attributes=attrs
        )
        return op.result

    def load(self, memref: Value, indices: Sequence[Value]) -> Value:
        """Load one element."""
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise IRError(f"load target must be a memref, got {memref_type}")
        op = self.create(
            "kernel.load",
            operands=[memref, *indices],
            result_types=[memref_type.element],
        )
        return op.result

    def store(self, value: Value, memref: Value,
              indices: Sequence[Value]) -> Operation:
        """Store one element."""
        return self.create(
            "kernel.store", operands=[value, memref, *indices]
        )

    def for_loop(
        self, lower: int, upper: int, step: int = 1,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "LoopHandle":
        """Create a kernel.for; returns a handle exposing the body."""
        op = self.create(
            "kernel.for",
            attributes={
                "lower": int(lower),
                "upper": int(upper),
                "step": int(step),
                **(attributes or {}),
            },
            num_regions=1,
        )
        body = op.regions[0].add_block([INDEX])
        return LoopHandle(op, body)

    def yield_op(self, values: Sequence[Value] = ()) -> Operation:
        """Terminate a kernel region."""
        return self.create("kernel.yield", operands=values)

    # ------------------------------------------------------------------
    # tensor dialect helpers
    # ------------------------------------------------------------------

    def tensor_op(self, name: str, operands: Sequence[Value],
                  result_type: TensorType,
                  attributes: Optional[Dict[str, Any]] = None) -> Value:
        """Create a tensor-dialect op with one result."""
        op = self.create(
            f"tensor.{name}", operands=operands,
            result_types=[result_type], attributes=attributes,
        )
        return op.result

    def matmul(self, lhs: Value, rhs: Value) -> Value:
        """Matrix multiply of two rank-2 tensors."""
        lhs_type, rhs_type = lhs.type, rhs.type
        if not (isinstance(lhs_type, TensorType)
                and isinstance(rhs_type, TensorType)):
            raise IRError("matmul operands must be tensors")
        result = TensorType(
            (lhs_type.shape[0], rhs_type.shape[1]), lhs_type.element
        )
        return self.tensor_op("matmul", [lhs, rhs], result)

    # ------------------------------------------------------------------
    # func dialect helpers
    # ------------------------------------------------------------------

    def ret(self, values: Sequence[Value] = ()) -> Operation:
        """func.return."""
        return self.create("func.return", operands=values)

    def call(self, callee: str, operands: Sequence[Value],
             result_types: Sequence[Type]) -> Operation:
        """func.call to a symbol."""
        return self.create(
            "func.call",
            operands=operands,
            result_types=result_types,
            attributes={"callee": callee},
        )


class LoopHandle:
    """Handle to a created kernel.for: the op, body block and IV."""

    def __init__(self, op: Operation, body: Block):
        self.op = op
        self.body = body

    @property
    def induction_var(self) -> Value:
        """The loop induction variable (the body's block argument)."""
        return self.body.arguments[0]

    @property
    def trip_count(self) -> int:
        """Number of iterations."""
        lower = self.op.attr("lower")
        upper = self.op.attr("upper")
        step = self.op.attr("step")
        if upper <= lower:
            return 0
        return (upper - lower + step - 1) // step
