"""Knob space definition for variant exploration."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.core.variants import VariantKnobs
from repro.errors import DSEError


@dataclass
class DesignSpace:
    """Candidate values per knob; the cross product is the space.

    Software variants sweep thread counts; hardware variants sweep
    unroll factors, clocks and memory strategies. Layout applies to
    both (it changes the generated access pattern).
    """

    targets: Sequence[str] = ("cpu", "fpga")
    threads: Sequence[int] = (1, 2, 4, 8)
    unrolls: Sequence[int] = (1, 2, 4, 8)
    tiles: Sequence[int] = (0,)
    memory_strategies: Sequence[str] = ("auto",)
    layouts: Sequence[str] = ("row_major",)
    clocks_hz: Sequence[float] = (250e6,)
    dift_options: Sequence[bool] = (False,)
    matmul_orders: Sequence[str] = ("ijk",)
    interleaves: Sequence[int] = (1,)

    def __post_init__(self):
        for target in self.targets:
            if target not in ("cpu", "fpga", "gpu"):
                raise DSEError(f"unknown target {target!r}")
        if not self.targets:
            raise DSEError("design space needs at least one target")

    def points(self) -> Iterator[VariantKnobs]:
        """Iterate all knob combinations (deduplicated).

        CPU points ignore hardware knobs and vice versa, so the raw
        cross product collapses; duplicates are skipped.
        """
        seen = set()
        for (target, thread_count, unroll, tile, strategy, layout,
             clock, dift, order, interleave) in itertools.product(
                self.targets, self.threads, self.unrolls, self.tiles,
                self.memory_strategies, self.layouts, self.clocks_hz,
                self.dift_options, self.matmul_orders,
                self.interleaves):
            if target == "cpu":
                knobs = VariantKnobs(
                    target="cpu", threads=thread_count, tile=tile,
                    layout=layout, dift=dift, matmul_order=order,
                )
            elif target == "fpga":
                knobs = VariantKnobs(
                    target="fpga", unroll=unroll, tile=tile,
                    memory_strategy=strategy, layout=layout,
                    clock_hz=clock, dift=dift, matmul_order=order,
                    interleave=interleave,
                )
            else:
                knobs = VariantKnobs(target="gpu", tile=tile,
                                     layout=layout, dift=dift)
            if knobs not in seen:
                seen.add(knobs)
                yield knobs

    def size(self) -> int:
        """Number of distinct points."""
        return sum(1 for _ in self.points())

    @staticmethod
    def small() -> "DesignSpace":
        """A compact space for tests and quick runs."""
        return DesignSpace(
            targets=("cpu", "fpga"),
            threads=(1, 4),
            unrolls=(1, 4),
        )

    @staticmethod
    def thorough() -> "DesignSpace":
        """The full space used by the fig1 benchmark."""
        return DesignSpace(
            targets=("cpu", "fpga"),
            threads=(1, 2, 4, 8, 16),
            unrolls=(1, 2, 4, 8, 16),
            tiles=(0, 8, 16),
            memory_strategies=("auto", "cyclic", "block", "none"),
            layouts=("row_major",),
            clocks_hz=(150e6, 250e6, 350e6),
            dift_options=(False, True),
            matmul_orders=("ijk", "ikj"),
            interleaves=(1, 8),
        )


def neighborhood(knobs: VariantKnobs, space: DesignSpace
                 ) -> List[VariantKnobs]:
    """Points differing from ``knobs`` in exactly one knob.

    Used by the evolutionary explorer for mutation.
    """
    neighbors: List[VariantKnobs] = []
    for candidate in space.points():
        differences = 0
        for attribute in (
            "target", "threads", "tile", "unroll", "memory_strategy",
            "layout", "clock_hz", "dift", "matmul_order",
            "interleave",
        ):
            if getattr(candidate, attribute) != getattr(knobs, attribute):
                differences += 1
        if differences == 1:
            neighbors.append(candidate)
    return neighbors


def static_conflict(knobs: VariantKnobs, facts) -> Optional[str]:
    """Why a point is provably illegal for the analyzed kernel.

    ``facts`` is the kernel's
    :class:`~repro.core.analysis.absint.FunctionFacts` (or None, which
    never prunes). Points whose unroll over-subscribes the ports of an
    explicitly partitioned buffer cannot schedule conflict-free at
    their nominal II, so the explorer rejects them before pricing; the
    returned reason string is exactly the one the cost model reports,
    keeping pruned and unpruned explorations byte-identical.
    """
    from repro.core.analysis.absint import partition_conflict

    return partition_conflict(facts, knobs)
