"""Design-space exploration strategies.

Three searchers over :class:`~repro.core.dse.space.DesignSpace`:

* ``exhaustive`` — evaluate every point (the default; spaces here are
  small enough);
* ``random`` — sample a budgeted subset;
* ``evolutionary`` — (mu+lambda) mutation search using single-knob
  neighborhoods, for the ablation benchmark comparing strategies.

All return an :class:`ExplorationResult` with every evaluated variant
and the Pareto front, and honor non-functional requirements by marking
variants that violate them infeasible.

Evaluation runs in fixed-size **batches**; with ``workers > 1`` the
points of a batch are priced concurrently on a thread pool. The result
is bit-for-bit identical to a serial run: costs are computed by a pure
function of the point (memoized through the content-addressed caches),
batch boundaries do not depend on ``workers``, and
:class:`~repro.core.variants.Variant` records are materialized in
submission order on the main thread. Fronts are maintained with the
incremental :class:`~repro.core.dse.pareto.ParetoFront`, so the
front-growth curve costs O(n·front) instead of O(n³).

**Bound-guided pruning** (``Explorer(..., bound_guided=True)``) layers
the static performance analyzer on top of the exhaustive strategy:
points are priced in ascending order of their analytic latency lower
bound (:func:`repro.core.analysis.perf.bound_for`), and a point is
skipped entirely when its *bound* already violates a requirement or is
dominated by an already-priced front member — the bound never exceeds
the priced cost, so a dominated bound proves the point can never join
the front. The resulting front is identical (member set *and* order,
hence :meth:`ExplorationResult.front_json` byte-identity) to an
unpruned run; skips are counted in ``dse.bound_pruned_points``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.absint import function_facts
from repro.core.dse.cache import CostCache, cost_cache, prepared_cache
from repro.core.dse.cost_model import (
    ArchitectureModel,
    evaluate_variant,
)
from repro.core.dse.pareto import ParetoFront
from repro.core.dse.space import DesignSpace, neighborhood, static_conflict
from repro.core.dsl.annotations import Requirement, RequirementKind
from repro.core.ir.digest import module_digest
from repro.core.ir.module import Module
from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.errors import DSEError
from repro.obs import Observation, current_metrics, current_tracer, observe
from repro.utils.rng import deterministic_rng

#: Tracer category for exploration spans and front-growth events.
DSE_CATEGORY = "dse.explore"

#: Points per evaluation batch. Deliberately independent of the worker
#: count so batch spans (and therefore deterministic traces) are
#: identical whether a run is serial or parallel.
BATCH_SIZE = 16

#: Batch size for bound-guided exploration. Smaller than
#: :data:`BATCH_SIZE` because skip decisions only happen between
#: batches: the sooner the first (best-bounded) points are priced, the
#: more later points the incumbent front can prove skippable. Still a
#: fixed constant so batch composition is worker-independent.
BOUND_BATCH_SIZE = 4


@dataclass
class ExplorationResult:
    """Everything the explorer produced for one kernel."""

    kernel: str
    evaluated: List[Variant] = field(default_factory=list)
    front: List[Variant] = field(default_factory=list)
    evaluations: int = 0

    @property
    def feasible(self) -> List[Variant]:
        """All feasible evaluated variants."""
        return [v for v in self.evaluated if v.cost.feasible]

    def best_latency(self) -> Variant:
        """Fastest feasible variant."""
        candidates = self.feasible
        if not candidates:
            raise DSEError(f"kernel {self.kernel!r}: no feasible variant")
        return min(candidates, key=lambda v: v.cost.latency_s)

    def best_energy(self) -> Variant:
        """Most energy-frugal feasible variant."""
        candidates = self.feasible
        if not candidates:
            raise DSEError(f"kernel {self.kernel!r}: no feasible variant")
        return min(candidates, key=lambda v: v.cost.energy_j)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the whole result.

        Variants are identified by their position in evaluation order
        (not by the process-global ``variant_id``), so two runs that
        evaluate the same points in the same order — e.g. a serial and
        a parallel exploration — serialize byte-identically.
        """
        position = {id(v): i for i, v in enumerate(self.evaluated)}
        payload = {
            "kernel": self.kernel,
            "evaluations": self.evaluations,
            "evaluated": [
                {
                    "knobs": variant.knobs.describe(),
                    "target": variant.knobs.target,
                    "latency_s": variant.cost.latency_s,
                    "energy_j": variant.cost.energy_j,
                    "data_bytes": variant.cost.data_bytes,
                    "feasible": variant.cost.feasible,
                    "infeasible_reason": variant.cost.infeasible_reason,
                    "resources": {
                        "luts": variant.cost.resources.luts,
                        "ffs": variant.cost.resources.ffs,
                        "bram_kb": variant.cost.resources.bram_kb,
                        "dsps": variant.cost.resources.dsps,
                    },
                }
                for variant in self.evaluated
            ],
            "front": [position[id(v)] for v in self.front],
        }
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=None if indent else (",", ":"))

    def front_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the Pareto front alone.

        Unlike :meth:`to_json` this does not mention the evaluated
        set, so a bound-guided (pruned) and an unpruned exploration of
        the same space — which price different point sets but must
        agree on the front — serialize byte-identically.
        """
        payload = {
            "kernel": self.kernel,
            "front": [
                {
                    "knobs": variant.knobs.describe(),
                    "target": variant.knobs.target,
                    "latency_s": variant.cost.latency_s,
                    "energy_j": variant.cost.energy_j,
                    "data_bytes": variant.cost.data_bytes,
                    "feasible": variant.cost.feasible,
                }
                for variant in self.front
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=indent,
                          separators=None if indent else (",", ":"))


class Explorer:
    """Runs one exploration strategy for one kernel.

    ``workers`` sets the width of the per-batch pool; 1 (the default)
    evaluates serially. ``workers_mode`` picks the pool flavor:
    ``"thread"`` (cheap, but GIL-bound for the pure-Python pricing) or
    ``"process"`` (true parallelism; work units are picklable knob
    points keyed by the module digest, and the parent keeps the cost
    cache so accounting matches serial). Any combination produces
    byte-identical results, traces, and cache statistics.
    """

    def __init__(
        self,
        module: Module,
        kernel: str,
        space: Optional[DesignSpace] = None,
        model: Optional[ArchitectureModel] = None,
        requirements: Optional[Sequence[Requirement]] = None,
        workers: int = 1,
        workers_mode: str = "thread",
        prune: bool = True,
        bound_guided: bool = False,
        digest: Optional[str] = None,
    ):
        if workers < 1:
            raise DSEError(f"workers must be >= 1, got {workers}")
        if workers_mode not in ("thread", "process"):
            raise DSEError(
                "workers_mode must be 'thread' or 'process', "
                f"got {workers_mode!r}"
            )
        self.module = module
        self.kernel = kernel
        self.space = space or DesignSpace.small()
        self.model = model or ArchitectureModel()
        self.requirements = list(requirements or [])
        self.workers = workers
        self.workers_mode = workers_mode
        self.prune = prune
        self._process_pool = None
        #: Content digest of the source module; accepted from the
        #: caller (the compiler hashes once per compile) or computed
        #: here — either way per-point cache lookups skip re-hashing.
        self._digest = digest if digest is not None else \
            module_digest(module)
        #: Interval facts for the kernel, shared with the cost model's
        #: own static gate through the digest-keyed memo. Pruning only
        #: fires on nodes that have an FPGA at all: on a CPU-only
        #: model the cost model reports "no FPGA on this node" first,
        #: and the pruner must not preempt that reason.
        self._facts = (
            function_facts(module, kernel, self._digest)
            if prune
            and self.model.fpga_role_capacity is not None
            and self.model.fpga_link is not None
            else None
        )
        self.bound_guided = bound_guided
        self._pruned = 0
        self._bound_pruned = 0
        self._prune_lock = threading.Lock()

    # ------------------------------------------------------------------

    def _cost_for(self, knobs: VariantKnobs) -> CostEstimate:
        """Price one point (cache-aware, requirement-checked).

        Pure with respect to exploration state, so it is safe to run
        from batch worker threads; cost-cache hits return fresh
        estimates, making the in-place requirement rewrite private.

        Statically illegal points (a partition whose ports an unrolled
        access pattern provably over-subscribes) short-circuit before
        the cost model runs; the estimate they return is exactly what
        the cost model's own gate would have produced, so pruned and
        unpruned explorations serialize byte-identically.
        """
        pruned = self._static_estimate(knobs)
        if pruned is not None:
            return pruned
        cost = evaluate_variant(self.module, self.kernel, knobs,
                                self.model, digest=self._digest)
        return self._apply_requirements(cost)

    def _static_estimate(
        self, knobs: VariantKnobs
    ) -> Optional[CostEstimate]:
        """The prune verdict for one point, or None to price it."""
        conflict = static_conflict(knobs, self._facts)
        if conflict is None:
            return None
        with self._prune_lock:
            self._pruned += 1
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            feasible=False, infeasible_reason=conflict,
        )

    def _apply_requirements(self, cost: CostEstimate) -> CostEstimate:
        """Mark a priced estimate infeasible on requirement violation."""
        if cost.feasible:
            for requirement in self.requirements:
                measured = self._measure_for(requirement, cost)
                if measured is not None and not requirement.satisfied_by(
                    measured
                ):
                    cost.feasible = False
                    cost.infeasible_reason = (
                        f"violates {requirement.kind.value} "
                        f"requirement ({measured:.3g} vs "
                        f"{requirement.value:.3g})"
                    )
                    break
        return cost

    @staticmethod
    def _measure_for(requirement: Requirement, cost) -> Optional[float]:
        if requirement.kind in (RequirementKind.LATENCY,
                                RequirementKind.DEADLINE):
            return cost.latency_s
        if requirement.kind is RequirementKind.ENERGY:
            return cost.energy_j
        if requirement.kind is RequirementKind.THROUGHPUT:
            return 1.0 / max(cost.latency_s, 1e-30)
        return None

    def _admit(self, knobs: VariantKnobs, cost: CostEstimate,
               result: ExplorationResult, front: ParetoFront) -> Variant:
        """Record one priced point, in order, on the main thread."""
        variant = Variant(kernel=self.kernel, knobs=knobs, cost=cost)
        result.evaluated.append(variant)
        result.evaluations += 1
        front.add(variant)
        return variant

    def _evaluate_points(
        self,
        points: Sequence[VariantKnobs],
        result: ExplorationResult,
        front: ParetoFront,
    ) -> List[Variant]:
        """Evaluate ``points`` in fixed-size, possibly parallel batches.

        Returns the admitted variants in submission order — identical
        for every worker count.
        """
        tracer = current_tracer()
        admitted: List[Variant] = []
        parallel = self.workers > 1 and len(points) > 1
        executor = (
            ThreadPoolExecutor(max_workers=self.workers)
            if parallel and self.workers_mode == "thread" else None
        )
        try:
            for start in range(0, len(points), BATCH_SIZE):
                batch = list(points[start:start + BATCH_SIZE])
                with tracer.span(f"batch:{self.kernel}",
                                 category=DSE_CATEGORY) as span:
                    # Evaluation internals are hermetic: pricing runs
                    # under a muted observation so the trace shape
                    # depends on neither cache warmth (hits skip the
                    # pass pipeline entirely) nor worker threads
                    # (which must never touch the ambient tracer).
                    with observe(Observation()):
                        if parallel and self.workers_mode == "process":
                            costs = self._price_batch_process(batch)
                        elif executor is not None:
                            costs = list(
                                executor.map(self._cost_for, batch)
                            )
                        else:
                            costs = [
                                self._cost_for(knobs) for knobs in batch
                            ]
                    for knobs, cost in zip(batch, costs):
                        admitted.append(
                            self._admit(knobs, cost, result, front)
                        )
                    span.note(points=len(batch))
        finally:
            if executor is not None:
                executor.shutdown()
        return admitted

    def _ensure_process_pool(self):
        """Lazily create the worker pool, shipping the module once."""
        if self._process_pool is None:
            from repro.core.dse.pool import create_pool
            from repro.core.ir.printer import print_module

            self._process_pool = create_pool(
                self.workers, print_module(self.module), self._digest,
                self.kernel, self.model,
            )
        return self._process_pool

    def close(self) -> None:
        """Release the process pool, if one was created."""
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None

    def _price_batch_process(
        self, batch: Sequence[VariantKnobs]
    ) -> List[CostEstimate]:
        """Price one batch on the process pool.

        The parent performs the static-prune check and the single
        cost-cache get/put per point — exactly the accounting a serial
        run does — and only cache-missing points are dispatched to the
        workers, which price with the cache-free
        :func:`~repro.core.dse.cost_model.price_variant` and return
        their prepared-cache stat deltas for merging. Results come back
        in batch order, so admission order matches serial.
        """
        from repro.core.dse.pool import price_point

        cache = cost_cache()
        fingerprint = self.model.fingerprint()
        costs: List[Optional[CostEstimate]] = [None] * len(batch)
        remote: List[int] = []
        keys: Dict[int, str] = {}
        for index, knobs in enumerate(batch):
            cost = self._static_estimate(knobs)
            if cost is None:
                keys[index] = CostCache.key(
                    self._digest, self.kernel, knobs, fingerprint
                )
                cost = cache.get(keys[index])
            if cost is None:
                remote.append(index)
            else:
                costs[index] = self._apply_requirements(cost)
        if remote:
            pool = self._ensure_process_pool()
            priced = list(pool.map(
                price_point, [batch[index] for index in remote]
            ))
            merged = prepared_cache().stats
            for index, (cost, child_delta) in zip(remote, priced):
                merged.add(child_delta)
                cache.put(keys[index], cost, context={
                    "kernel": self.kernel,
                    "knobs": batch[index].describe(),
                    "target": batch[index].target,
                })
                costs[index] = self._apply_requirements(cost)
        return costs

    # ------------------------------------------------------------------

    def exhaustive(self) -> ExplorationResult:
        """Evaluate every point of the space."""
        result = ExplorationResult(kernel=self.kernel)
        front = ParetoFront()
        self._evaluate_points(list(self.space.points()), result, front)
        result.front = front.variants()
        return result

    def _bound_skippable(
        self, estimate: Tuple[float, float], front: ParetoFront
    ) -> bool:
        """Can this point provably never join the front?

        ``estimate`` is an analytic *lower* bound on the priced cost.
        If the bound already violates a requirement, the actual cost
        violates it too (latency/energy bounds are floors, the
        throughput bound a ceiling). If an already-priced front member
        dominates the bound, it also dominates the actual cost — with
        the same strict coordinate — so the point could neither join
        the front nor evict anyone from it.
        """
        lat_lb, en_lb = estimate
        synthetic = CostEstimate(
            latency_s=lat_lb, energy_j=en_lb, feasible=True,
        )
        for requirement in self.requirements:
            measured = self._measure_for(requirement, synthetic)
            if measured is not None and not requirement.satisfied_by(
                measured
            ):
                return True
        return any(
            member.cost.dominates(synthetic)
            for member in front.variants()
        )

    def _bound_exhaustive(self) -> ExplorationResult:
        """Exhaustive-front search that skips bound-dominated points.

        Points are priced best-bound-first so the scratch front gains
        strong members early and later (worse-bounded) points skip
        without pricing. Skip decisions happen on the main thread
        between batches, so batch composition — and with it the final
        result — is identical at every worker count. The final result
        re-admits the priced points in original space order, making a
        pruned run's ``front_json`` byte-identical to an unpruned one.
        """
        from repro.core.analysis.perf import bound_for, kernel_bounds

        bounds = kernel_bounds(self.module, self.kernel, self._digest)
        if bounds is None:
            return self.exhaustive()
        points = list(self.space.points())
        estimates = [
            bound_for(bounds, knobs, self.model) for knobs in points
        ]
        order = sorted(
            range(len(points)),
            key=lambda i: (estimates[i][0], estimates[i][1], i),
        )
        scratch_result = ExplorationResult(kernel=self.kernel)
        scratch_front = ParetoFront()
        priced: Dict[int, CostEstimate] = {}
        pending = deque(order)
        while pending:
            batch: List[int] = []
            while pending and len(batch) < BOUND_BATCH_SIZE:
                index = pending.popleft()
                if self._bound_skippable(estimates[index],
                                         scratch_front):
                    self._bound_pruned += 1
                    continue
                batch.append(index)
            if not batch:
                continue
            variants = self._evaluate_points(
                [points[i] for i in batch],
                scratch_result, scratch_front,
            )
            for index, variant in zip(batch, variants):
                priced[index] = variant.cost
        result = ExplorationResult(kernel=self.kernel)
        front = ParetoFront()
        for index in range(len(points)):
            cost = priced.get(index)
            if cost is not None:
                self._admit(points[index], cost, result, front)
        result.front = front.variants()
        return result

    def random(self, budget: int = 16, seed: str = "dse"
               ) -> ExplorationResult:
        """Sample ``budget`` distinct points uniformly."""
        points = list(self.space.points())
        rng = deterministic_rng("dse-random", seed, self.kernel)
        count = min(budget, len(points))
        chosen = rng.choice(len(points), size=count, replace=False)
        result = ExplorationResult(kernel=self.kernel)
        front = ParetoFront()
        self._evaluate_points(
            [points[int(index)] for index in chosen], result, front
        )
        result.front = front.variants()
        return result

    def evolutionary(
        self,
        budget: int = 24,
        population: int = 4,
        seed: str = "dse",
    ) -> ExplorationResult:
        """(mu+lambda) single-knob-mutation search."""
        points = list(self.space.points())
        rng = deterministic_rng("dse-evo", seed, self.kernel)
        result = ExplorationResult(kernel=self.kernel)
        front = ParetoFront()
        # Unexplored points in space order, maintained incrementally:
        # dict preserves insertion order, so materializing the stall
        # fallback is O(|unseen|) instead of rescanning the whole
        # space against a ``seen`` set every stall iteration.
        unseen: Dict[VariantKnobs, None] = dict.fromkeys(points)

        def evaluate(knobs: VariantKnobs) -> Variant:
            unseen.pop(knobs, None)
            # Same hermetic pricing as the batched paths: the trace
            # must not depend on whether this point is a cache hit.
            with observe(Observation()):
                cost = self._cost_for(knobs)
            return self._admit(knobs, cost, result, front)

        initial_indices = rng.choice(
            len(points), size=min(population, len(points)), replace=False
        )
        initial = [points[int(i)] for i in initial_indices]
        for knobs in initial:
            unseen.pop(knobs, None)
        parents = self._evaluate_points(initial, result, front)

        while result.evaluations < budget:
            parents.sort(key=lambda v: (
                not v.cost.feasible, v.cost.latency_s * v.cost.energy_j
            ))
            parents = parents[:population]
            parent = parents[int(rng.integers(len(parents)))]
            neighbors = [
                knobs for knobs in neighborhood(parent.knobs, self.space)
                if knobs in unseen
            ]
            if not neighbors:
                remaining = list(unseen)
                if not remaining:
                    break
                choice = remaining[int(rng.integers(len(remaining)))]
            else:
                choice = neighbors[int(rng.integers(len(neighbors)))]
            parents.append(evaluate(choice))

        result.front = front.variants()
        return result

    def run(self, strategy: str = "exhaustive", **kwargs
            ) -> ExplorationResult:
        """Dispatch by strategy name; traces and meters the run."""
        tracer = current_tracer()
        if self.bound_guided and strategy != "exhaustive":
            raise DSEError(
                "bound-guided exploration requires the exhaustive "
                f"strategy, not {strategy!r}"
            )
        prepared_before = prepared_cache().stats.snapshot()
        cost_before = cost_cache().stats.snapshot()
        try:
            with tracer.span(f"explore:{self.kernel}",
                             category=DSE_CATEGORY,
                             strategy=strategy) as span:
                if strategy == "exhaustive":
                    result = (
                        self._bound_exhaustive() if self.bound_guided
                        else self.exhaustive()
                    )
                elif strategy == "random":
                    result = self.random(**kwargs)
                elif strategy == "evolutionary":
                    result = self.evolutionary(**kwargs)
                else:
                    raise DSEError(
                        f"unknown exploration strategy {strategy!r}"
                    )
                span.note(
                    evaluations=result.evaluations,
                    front=len(result.front),
                    feasible=len(result.feasible),
                    pruned=self._pruned,
                    bound_pruned=self._bound_pruned,
                )
        finally:
            self.close()
        if tracer.enabled and tracer.detailed:
            # Pareto-front growth curve: front size after each prefix
            # of the evaluation order, one counter sample per point —
            # replayed through the incremental front in O(n·front).
            growth = ParetoFront()
            front_size = 0
            for variant in result.evaluated:
                growth.add(variant)
                if len(growth) != front_size:
                    front_size = len(growth)
                    tracer.counter(
                        f"front:{self.kernel}", float(front_size),
                        category=DSE_CATEGORY,
                    )
        metrics = current_metrics()
        metrics.counter(
            "dse.evaluations", "design points evaluated",
        ).inc(result.evaluations, kernel=self.kernel,
              strategy=strategy)
        metrics.counter(
            "dse.front_points", "Pareto-optimal points found",
        ).inc(len(result.front), kernel=self.kernel)
        if self._pruned:
            metrics.counter(
                "dse.pruned_points",
                "points rejected statically before pricing",
            ).inc(self._pruned, kernel=self.kernel)
        if self._bound_pruned:
            metrics.counter(
                "dse.bound_pruned_points",
                "points skipped by analytic lower bound",
            ).inc(self._bound_pruned, kernel=self.kernel)
        # Cache traffic this run caused, published from the main
        # thread (workers never touch the ambient observation).
        for cache_name, stats, before in (
            ("prepared", prepared_cache().stats, prepared_before),
            ("cost", cost_cache().stats, cost_before),
        ):
            delta = stats.delta(before)
            metrics.counter(
                "dse.cache_hits", "DSE cache hits",
            ).inc(delta.hits, cache=cache_name, kernel=self.kernel)
            metrics.counter(
                "dse.cache_misses", "DSE cache misses",
            ).inc(delta.misses, cache=cache_name, kernel=self.kernel)
        return result
