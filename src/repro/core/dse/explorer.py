"""Design-space exploration strategies.

Three searchers over :class:`~repro.core.dse.space.DesignSpace`:

* ``exhaustive`` — evaluate every point (the default; spaces here are
  small enough);
* ``random`` — sample a budgeted subset;
* ``evolutionary`` — (mu+lambda) mutation search using single-knob
  neighborhoods, for the ablation benchmark comparing strategies.

All return an :class:`ExplorationResult` with every evaluated variant
and the Pareto front, and honor non-functional requirements by marking
variants that violate them infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.dsl.annotations import Requirement, RequirementKind
from repro.core.dse.cost_model import (
    ArchitectureModel,
    evaluate_variant,
)
from repro.core.dse.pareto import pareto_front
from repro.core.dse.space import DesignSpace, neighborhood
from repro.core.ir.module import Module
from repro.core.variants import Variant, VariantKnobs
from repro.errors import DSEError
from repro.obs import current_metrics, current_tracer
from repro.utils.rng import deterministic_rng

#: Tracer category for exploration spans and front-growth events.
DSE_CATEGORY = "dse.explore"


@dataclass
class ExplorationResult:
    """Everything the explorer produced for one kernel."""

    kernel: str
    evaluated: List[Variant] = field(default_factory=list)
    front: List[Variant] = field(default_factory=list)
    evaluations: int = 0

    @property
    def feasible(self) -> List[Variant]:
        """All feasible evaluated variants."""
        return [v for v in self.evaluated if v.cost.feasible]

    def best_latency(self) -> Variant:
        """Fastest feasible variant."""
        candidates = self.feasible
        if not candidates:
            raise DSEError(f"kernel {self.kernel!r}: no feasible variant")
        return min(candidates, key=lambda v: v.cost.latency_s)

    def best_energy(self) -> Variant:
        """Most energy-frugal feasible variant."""
        candidates = self.feasible
        if not candidates:
            raise DSEError(f"kernel {self.kernel!r}: no feasible variant")
        return min(candidates, key=lambda v: v.cost.energy_j)


class Explorer:
    """Runs one exploration strategy for one kernel."""

    def __init__(
        self,
        module: Module,
        kernel: str,
        space: Optional[DesignSpace] = None,
        model: Optional[ArchitectureModel] = None,
        requirements: Optional[Sequence[Requirement]] = None,
    ):
        self.module = module
        self.kernel = kernel
        self.space = space or DesignSpace.small()
        self.model = model or ArchitectureModel()
        self.requirements = list(requirements or [])

    # ------------------------------------------------------------------

    def _evaluate(self, knobs: VariantKnobs) -> Variant:
        cost = evaluate_variant(self.module, self.kernel, knobs,
                                self.model)
        if cost.feasible:
            for requirement in self.requirements:
                measured = self._measure_for(requirement, cost)
                if measured is not None and not requirement.satisfied_by(
                    measured
                ):
                    cost.feasible = False
                    cost.infeasible_reason = (
                        f"violates {requirement.kind.value} "
                        f"requirement ({measured:.3g} vs "
                        f"{requirement.value:.3g})"
                    )
                    break
        return Variant(kernel=self.kernel, knobs=knobs, cost=cost)

    @staticmethod
    def _measure_for(requirement: Requirement, cost) -> Optional[float]:
        if requirement.kind in (RequirementKind.LATENCY,
                                RequirementKind.DEADLINE):
            return cost.latency_s
        if requirement.kind is RequirementKind.ENERGY:
            return cost.energy_j
        if requirement.kind is RequirementKind.THROUGHPUT:
            return 1.0 / max(cost.latency_s, 1e-30)
        return None

    # ------------------------------------------------------------------

    def exhaustive(self) -> ExplorationResult:
        """Evaluate every point of the space."""
        result = ExplorationResult(kernel=self.kernel)
        for knobs in self.space.points():
            result.evaluated.append(self._evaluate(knobs))
            result.evaluations += 1
        result.front = pareto_front(result.evaluated)
        return result

    def random(self, budget: int = 16, seed: str = "dse"
               ) -> ExplorationResult:
        """Sample ``budget`` distinct points uniformly."""
        points = list(self.space.points())
        rng = deterministic_rng("dse-random", seed, self.kernel)
        count = min(budget, len(points))
        chosen = rng.choice(len(points), size=count, replace=False)
        result = ExplorationResult(kernel=self.kernel)
        for index in chosen:
            result.evaluated.append(self._evaluate(points[int(index)]))
            result.evaluations += 1
        result.front = pareto_front(result.evaluated)
        return result

    def evolutionary(
        self,
        budget: int = 24,
        population: int = 4,
        seed: str = "dse",
    ) -> ExplorationResult:
        """(mu+lambda) single-knob-mutation search."""
        points = list(self.space.points())
        rng = deterministic_rng("dse-evo", seed, self.kernel)
        result = ExplorationResult(kernel=self.kernel)
        seen = set()

        def evaluate(knobs: VariantKnobs) -> Variant:
            variant = self._evaluate(knobs)
            result.evaluated.append(variant)
            result.evaluations += 1
            seen.add(knobs)
            return variant

        initial_indices = rng.choice(
            len(points), size=min(population, len(points)), replace=False
        )
        parents = [evaluate(points[int(i)]) for i in initial_indices]

        while result.evaluations < budget:
            parents.sort(key=lambda v: (
                not v.cost.feasible, v.cost.latency_s * v.cost.energy_j
            ))
            parents = parents[:population]
            parent = parents[int(rng.integers(len(parents)))]
            neighbors = [
                knobs for knobs in neighborhood(parent.knobs, self.space)
                if knobs not in seen
            ]
            if not neighbors:
                remaining = [p for p in points if p not in seen]
                if not remaining:
                    break
                choice = remaining[int(rng.integers(len(remaining)))]
            else:
                choice = neighbors[int(rng.integers(len(neighbors)))]
            parents.append(evaluate(choice))

        result.front = pareto_front(result.evaluated)
        return result

    def run(self, strategy: str = "exhaustive", **kwargs
            ) -> ExplorationResult:
        """Dispatch by strategy name; traces and meters the run."""
        tracer = current_tracer()
        with tracer.span(f"explore:{self.kernel}",
                         category=DSE_CATEGORY,
                         strategy=strategy) as span:
            if strategy == "exhaustive":
                result = self.exhaustive()
            elif strategy == "random":
                result = self.random(**kwargs)
            elif strategy == "evolutionary":
                result = self.evolutionary(**kwargs)
            else:
                raise DSEError(
                    f"unknown exploration strategy {strategy!r}"
                )
            span.note(
                evaluations=result.evaluations,
                front=len(result.front),
                feasible=len(result.feasible),
            )
        if tracer.enabled and tracer.detailed:
            # Pareto-front growth curve: front size after each prefix
            # of the evaluation order, one counter sample per point.
            front_size = 0
            for index in range(len(result.evaluated)):
                size = len(
                    pareto_front(result.evaluated[:index + 1])
                )
                if size != front_size:
                    front_size = size
                    tracer.counter(
                        f"front:{self.kernel}", float(size),
                        category=DSE_CATEGORY,
                    )
        metrics = current_metrics()
        metrics.counter(
            "dse.evaluations", "design points evaluated",
        ).inc(result.evaluations, kernel=self.kernel,
              strategy=strategy)
        metrics.counter(
            "dse.front_points", "Pareto-optimal points found",
        ).inc(len(result.front), kernel=self.kernel)
        return result
