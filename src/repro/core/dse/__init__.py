"""Design-space exploration (paper §III-B middle-end).

Enumerates knob combinations, predicts their cost with high-level
architecture models (cf. [23-26]) and returns the Pareto-optimal
variant set exposed to the runtime. Evaluation is memoized through
content-addressed caches (:mod:`repro.core.dse.cache`) and can run in
deterministic parallel batches (``Explorer(workers=N)``).
"""

from repro.core.dse.space import DesignSpace
from repro.core.dse.cache import (
    CacheStats,
    CostCache,
    PreparedModuleCache,
    clear_caches,
    configure,
    cost_cache,
    default_cache_dir,
    prepared_cache,
)
from repro.core.dse.cost_model import ArchitectureModel, evaluate_variant
from repro.core.dse.pareto import ParetoFront, pareto_front
from repro.core.dse.explorer import Explorer, ExplorationResult

__all__ = [
    "DesignSpace",
    "ArchitectureModel",
    "evaluate_variant",
    "pareto_front",
    "ParetoFront",
    "Explorer",
    "ExplorationResult",
    "CacheStats",
    "CostCache",
    "PreparedModuleCache",
    "configure",
    "cost_cache",
    "prepared_cache",
    "clear_caches",
    "default_cache_dir",
]
