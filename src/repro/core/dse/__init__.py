"""Design-space exploration (paper §III-B middle-end).

Enumerates knob combinations, predicts their cost with high-level
architecture models (cf. [23-26]) and returns the Pareto-optimal
variant set exposed to the runtime.
"""

from repro.core.dse.space import DesignSpace
from repro.core.dse.cost_model import ArchitectureModel, evaluate_variant
from repro.core.dse.pareto import pareto_front
from repro.core.dse.explorer import Explorer, ExplorationResult

__all__ = [
    "DesignSpace",
    "ArchitectureModel",
    "evaluate_variant",
    "pareto_front",
    "Explorer",
    "ExplorationResult",
]
