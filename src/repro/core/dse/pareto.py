"""Pareto-front utilities over variant cost estimates."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.variants import Variant


def pareto_front(variants: Sequence[Variant]) -> List[Variant]:
    """Feasible, non-dominated variants on (latency, energy).

    Stable: preserves input order among the survivors.
    """
    feasible = [v for v in variants if v.cost.feasible]
    front: List[Variant] = []
    for candidate in feasible:
        dominated = any(
            other.cost.dominates(candidate.cost)
            for other in feasible
            if other is not candidate
        )
        if not dominated:
            front.append(candidate)
    return _dedupe_by_cost(front)


def _dedupe_by_cost(variants: List[Variant]) -> List[Variant]:
    seen: set = set()
    unique: List[Variant] = []
    for variant in variants:
        key = (round(variant.cost.latency_s, 12),
               round(variant.cost.energy_j, 12))
        if key not in seen:
            seen.add(key)
            unique.append(variant)
    return unique


def hypervolume_2d(
    variants: Sequence[Variant],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume against a (latency, energy) reference.

    Standard 2-D sweep: sort by latency and accumulate rectangles.
    Larger is better; used to compare exploration strategies.
    """
    front = pareto_front(list(variants))
    points = sorted(
        (v.cost.latency_s, v.cost.energy_j)
        for v in front
        if v.cost.latency_s <= reference[0]
        and v.cost.energy_j <= reference[1]
    )
    volume = 0.0
    previous_energy = reference[1]
    for latency, energy in points:
        if energy < previous_energy:
            volume += (reference[0] - latency) * (previous_energy - energy)
            previous_energy = energy
    return volume


def knee_point(variants: Sequence[Variant]) -> Variant:
    """The balanced variant: minimal normalized distance to utopia."""
    front = pareto_front(list(variants))
    if not front:
        raise ValueError("no feasible variants")
    min_latency = min(v.cost.latency_s for v in front)
    max_latency = max(v.cost.latency_s for v in front)
    min_energy = min(v.cost.energy_j for v in front)
    max_energy = max(v.cost.energy_j for v in front)

    def distance(variant: Variant) -> float:
        latency_span = max(max_latency - min_latency, 1e-30)
        energy_span = max(max_energy - min_energy, 1e-30)
        dl = (variant.cost.latency_s - min_latency) / latency_span
        de = (variant.cost.energy_j - min_energy) / energy_span
        return dl * dl + de * de

    return min(front, key=distance)


def best_by(variants: Sequence[Variant],
            key: Callable[[Variant], float]) -> Variant:
    """Feasible variant minimizing an arbitrary objective."""
    feasible = [v for v in variants if v.cost.feasible]
    if not feasible:
        raise ValueError("no feasible variants")
    return min(feasible, key=key)
