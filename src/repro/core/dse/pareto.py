"""Pareto-front utilities over variant cost estimates.

:class:`ParetoFront` maintains the feasible non-dominated set
*incrementally*: each :meth:`ParetoFront.add` costs O(front) instead of
recomputing an O(n²) batch front, which turns the explorer's
front-growth curve from O(n³) into O(n·front). :func:`pareto_front`
is the batch entry point, now a thin wrapper over the incremental
structure — both produce identical fronts (same variants, same order).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.variants import Variant
from repro.errors import DSEError

#: Cost coordinates are deduplicated at this rounding, matching the
#: historical batch behavior.
_DEDUPE_DIGITS = 12


def _cost_key(variant: Variant) -> Tuple[float, float]:
    return (round(variant.cost.latency_s, _DEDUPE_DIGITS),
            round(variant.cost.energy_j, _DEDUPE_DIGITS))


class ParetoFront:
    """Incrementally maintained feasible non-dominated set.

    Invariants match the batch :func:`pareto_front`: members are kept
    in insertion order, infeasible variants are never admitted, and a
    variant whose (rounded) cost coordinates duplicate a member's is
    dropped. Dominance is transitive, so rejecting a newcomer against
    the current front is equivalent to testing it against everything
    ever seen.
    """

    def __init__(self, variants: Sequence[Variant] = ()):
        self._members: List[Variant] = []
        self._keys: Set[Tuple[float, float]] = set()
        for variant in variants:
            self.add(variant)

    def add(self, variant: Variant) -> bool:
        """Offer one variant; returns True when the front changed."""
        if not variant.cost.feasible:
            return False
        key = _cost_key(variant)
        if key in self._keys:
            return False
        cost = variant.cost
        survivors: List[Variant] = []
        for member in self._members:
            if member.cost.dominates(cost):
                return False
            if cost.dominates(member.cost):
                self._keys.discard(_cost_key(member))
                continue
            survivors.append(member)
        survivors.append(variant)
        self._members = survivors
        self._keys.add(key)
        return True

    def variants(self) -> List[Variant]:
        """The current front, in insertion order (a copy)."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._members)

    def __contains__(self, variant: Variant) -> bool:
        return any(member is variant for member in self._members)


def pareto_front(variants: Sequence[Variant]) -> List[Variant]:
    """Feasible, non-dominated variants on (latency, energy).

    Stable: preserves input order among the survivors.
    """
    return ParetoFront(variants).variants()


def hypervolume_2d(
    variants: Sequence[Variant],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume against a (latency, energy) reference.

    Standard 2-D sweep: sort by latency and accumulate rectangles.
    Larger is better; used to compare exploration strategies.
    """
    front = pareto_front(list(variants))
    points = sorted(
        (v.cost.latency_s, v.cost.energy_j)
        for v in front
        if v.cost.latency_s <= reference[0]
        and v.cost.energy_j <= reference[1]
    )
    volume = 0.0
    previous_energy = reference[1]
    for latency, energy in points:
        if energy < previous_energy:
            volume += (reference[0] - latency) * (previous_energy - energy)
            previous_energy = energy
    return volume


def _no_feasible_error(message: str, anchor: str = "") -> DSEError:
    """A DSEError carrying the DSE001 'no feasible variants' finding."""
    diagnostics = Diagnostics()
    diagnostics.error("DSE001", message, anchor=anchor, analysis="dse")
    error = DSEError(message)
    error.diagnostics = diagnostics
    return error


def knee_point(variants: Sequence[Variant]) -> Variant:
    """The balanced variant: minimal normalized distance to utopia."""
    front = pareto_front(list(variants))
    if not front:
        raise _no_feasible_error("no feasible variants")
    min_latency = min(v.cost.latency_s for v in front)
    max_latency = max(v.cost.latency_s for v in front)
    min_energy = min(v.cost.energy_j for v in front)
    max_energy = max(v.cost.energy_j for v in front)

    def distance(variant: Variant) -> float:
        latency_span = max(max_latency - min_latency, 1e-30)
        energy_span = max(max_energy - min_energy, 1e-30)
        dl = (variant.cost.latency_s - min_latency) / latency_span
        de = (variant.cost.energy_j - min_energy) / energy_span
        return dl * dl + de * de

    return min(front, key=distance)


def best_by(variants: Sequence[Variant],
            key: Callable[[Variant], float]) -> Variant:
    """Feasible variant minimizing an arbitrary objective."""
    feasible = [v for v in variants if v.cost.feasible]
    if not feasible:
        raise _no_feasible_error("no feasible variants")
    return min(feasible, key=key)
