"""High-level architecture cost models for variant evaluation.

The middle-end "relies on high-level architecture models and
simulators to explore the design space" (paper §III-B, [23-26]).
:class:`ArchitectureModel` captures one target node (CPU + optional
FPGA + attachment link); :func:`evaluate_variant` predicts latency,
energy and resource footprint of a knob assignment by actually running
the knob-specific compilation (tiling, lowering, directives) and HLS on
a clone of the kernel — the estimation feedback loop of Fig. 1.

Evaluation is memoized through the content-addressed caches in
:mod:`repro.core.dse.cache`: prepared (knob-transformed) modules live
in a bounded LRU and finished cost estimates in a two-level cost cache,
both keyed by the *structural digest* of the source module — never by
``id()``, which the garbage collector recycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.analysis.absint import function_facts, partition_conflict
from repro.core.dse.cache import CostCache, cost_cache, prepared_cache
from repro.core.hls.bambu import HLSOptions, synthesize
from repro.core.hls.scheduling import ResourceBudget
from repro.core.ir.digest import module_digest
from repro.core.ir.module import Module
from repro.core.ir.passes import (
    CanonicalizePass,
    DataLayoutPass,
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
    TilingPass,
)
from repro.core.ir.passes.partitioning import estimate_work
from repro.core.ir.types import MemRefType, TensorType
from repro.core.variants import CostEstimate, VariantKnobs
from repro.errors import DSEError, HLSError, SchedulingError
from repro.platform.interconnect import Link, OpenCAPILink
from repro.platform.resources import CPUDescription, FPGAResources


@dataclass
class ArchitectureModel:
    """One candidate execution target for cost prediction."""

    name: str = "power9+capi-fpga"
    cpu: CPUDescription = None  # type: ignore[assignment]
    fpga_role_capacity: Optional[FPGAResources] = None
    fpga_link: Optional[Link] = None
    host_memory_bandwidth: float = 120e9
    base_clock_hz: float = 400e6
    parallel_fraction: float = 0.95
    cpu_efficiency: float = 0.15
    software_dift_slowdown: float = 2.1

    def __post_init__(self):
        if self.cpu is None:
            self.cpu = CPUDescription(
                name="POWER9", cores=16, frequency_hz=3.1e9,
                flops_per_cycle=8.0, tdp_watts=190.0, idle_watts=60.0,
            )
        if self.fpga_role_capacity is None:
            self.fpga_role_capacity = FPGAResources(
                luts=520_000, ffs=1_040_000, bram_kb=35_000, dsps=3_300
            )
        if self.fpga_link is None:
            self.fpga_link = OpenCAPILink()

    def achievable_clock(self, resources: FPGAResources) -> float:
        """Timing de-rating: denser designs close at lower clocks."""
        density = resources.luts / max(self.fpga_role_capacity.luts, 1)
        return self.base_clock_hz / (1.0 + 1.5 * density)

    def fingerprint(self) -> str:
        """Stable identity of the model for cost-cache keys.

        Deliberately excludes the link's mutable transfer statistics;
        any parameter that changes a predicted cost is included.
        """
        link = self.fpga_link
        link_part = (
            "none" if link is None else
            f"{link.name}|{link.latency_s!r}|{link.bandwidth!r}|"
            f"{link.per_message_overhead!r}|"
            f"{link.energy_pj_per_byte!r}|{link.coherent}"
        )
        cpu = self.cpu
        cpu_part = (
            f"{cpu.name}|{cpu.cores}|{cpu.frequency_hz!r}|"
            f"{cpu.flops_per_cycle!r}|{cpu.tdp_watts!r}|"
            f"{cpu.idle_watts!r}"
        )
        fpga_part = (
            "none" if self.fpga_role_capacity is None else
            f"{self.fpga_role_capacity.luts}|"
            f"{self.fpga_role_capacity.ffs}|"
            f"{self.fpga_role_capacity.bram_kb}|"
            f"{self.fpga_role_capacity.dsps}"
        )
        return "\x1f".join((
            self.name, cpu_part, fpga_part, link_part,
            repr(self.host_memory_bandwidth),
            repr(self.base_clock_hz),
            repr(self.parallel_fraction),
            repr(self.cpu_efficiency),
            repr(self.software_dift_slowdown),
        ))


def prepare_variant_module(
    module: Module,
    kernel: str,
    knobs: VariantKnobs,
    digest: Optional[str] = None,
) -> Module:
    """Clone the tensor-form module and apply the knob's passes.

    Prepared modules are cached in a bounded LRU keyed by the module's
    *content* digest (pass ``digest`` to reuse a precomputed one), so
    the cache survives garbage collection of the source module without
    ever aliasing a recycled ``id``.
    """
    if digest is None:
        digest = module_digest(module)
    cache = prepared_cache()
    cache_key = (digest, kernel, knobs)
    cached = cache.get(cache_key)
    if cached is not None:
        return cached
    clone = module.clone()
    manager = PassManager(verify_each=False)
    manager.add(ElementwiseFusionPass())
    if knobs.matmul_order != "ijk":
        from repro.core.ir.passes import MatmulLoopOrderPass

        manager.add(MatmulLoopOrderPass(knobs.matmul_order))
    if knobs.tile:
        manager.add(TilingPass(
            tile_sizes=(knobs.tile, knobs.tile, knobs.tile)))
    if knobs.layout in ("aos", "soa"):
        manager.add(DataLayoutPass(knobs.layout))
    if knobs.dift:
        manager.add(SecurityInstrumentationPass())
    manager.add(LowerTensorPass())
    if knobs.target == "fpga":
        manager.add(LoopDirectivesPass(unroll_factor=knobs.unroll))
        if knobs.interleave > 1:
            from repro.core.ir.passes import (
                AccumulationInterleavePass,
            )

            manager.add(AccumulationInterleavePass(knobs.interleave))
    manager.add(CanonicalizePass())
    manager.run(clone)
    cache.put(cache_key, clone)
    return clone


def evaluate_variant(
    module: Module,
    kernel: str,
    knobs: VariantKnobs,
    model: Optional[ArchitectureModel] = None,
    digest: Optional[str] = None,
) -> CostEstimate:
    """Predict the cost of one knob assignment on one architecture.

    ``module`` must hold the kernel in tensor form (pre-lowering).
    Results are memoized in the process-wide cost cache under
    ``(module_digest, kernel, knobs, model.fingerprint())``; pass
    ``digest`` to skip recomputing the module hash (the explorer hashes
    once per run). Cache hits return a fresh :class:`CostEstimate`.
    """
    model = model or ArchitectureModel()
    function = module.find_function(kernel)
    if function is None:
        raise DSEError(f"no kernel named {kernel!r}")
    if knobs.target not in ("cpu", "fpga"):
        raise DSEError(
            f"cost model does not support target {knobs.target!r}"
        )

    cache = cost_cache()
    if digest is None:
        digest = module_digest(module)
    key = CostCache.key(digest, kernel, knobs, model.fingerprint())
    cached = cache.get(key)
    if cached is not None:
        return cached

    cost = price_variant(module, kernel, knobs, model, digest)
    cache.put(key, cost, context={
        "kernel": kernel, "knobs": knobs.describe(),
        "target": knobs.target,
    })
    return cost


def price_variant(
    module: Module,
    kernel: str,
    knobs: VariantKnobs,
    model: Optional[ArchitectureModel] = None,
    digest: Optional[str] = None,
) -> CostEstimate:
    """Price one knob assignment, bypassing the cost cache.

    This is the pure computation behind :func:`evaluate_variant` —
    validation plus target dispatch, no cost-cache get/put. Process-pool
    workers call it directly: the parent owns the cost cache and
    performs the single get/put around each dispatch, so serial, thread
    and process runs count identical cache traffic. (The prepared-module
    LRU is still consulted, per process.)
    """
    model = model or ArchitectureModel()
    function = module.find_function(kernel)
    if function is None:
        raise DSEError(f"no kernel named {kernel!r}")
    if knobs.target not in ("cpu", "fpga"):
        raise DSEError(
            f"cost model does not support target {knobs.target!r}"
        )
    if knobs.target == "cpu":
        return _evaluate_cpu(module, kernel, knobs, model)
    return _evaluate_fpga(module, kernel, knobs, model, digest)


def _data_bytes(function) -> int:
    total = 0
    for declared in function.type.inputs + function.type.results:
        if isinstance(declared, (TensorType, MemRefType)):
            total += declared.size_bytes
    return total


def cpu_cost_terms(
    work: float, data_bytes: float, knobs: VariantKnobs,
    model: ArchitectureModel,
) -> "tuple[float, float]":
    """``(latency_s, energy_j)`` of ``work`` flops on the host CPU.

    This is the *entire* CPU pricing arithmetic, shared with the
    static performance analyzer (:mod:`repro.core.analysis.perf`): the
    analyzer's CPU lower bound must never exceed the priced cost, and
    reusing the identical float operations makes the bound exact.
    """
    efficiency = model.cpu_efficiency
    if knobs.tile:
        efficiency *= 1.6  # blocked working set stays in cache
    if knobs.layout == "soa":
        efficiency *= 1.15  # unit-stride vectorizable streams
    efficiency = min(efficiency, 0.6)

    threads = max(1, min(knobs.threads, model.cpu.cores))
    serial = 1.0 - model.parallel_fraction
    speedup = 1.0 / (serial + model.parallel_fraction / threads)

    # One thread sustains one core's throughput; additional threads
    # scale it by the Amdahl speedup up to the chip's core count.
    per_core_flops = (
        model.cpu.frequency_hz * model.cpu.flops_per_cycle
    )
    compute_s = work / (per_core_flops * efficiency * speedup)
    memory_s = data_bytes / model.host_memory_bandwidth
    latency = max(compute_s, memory_s) + 2e-6  # dispatch overhead
    if knobs.dift:
        latency *= model.software_dift_slowdown

    active_fraction = threads / model.cpu.cores
    power = model.cpu.idle_watts + (
        model.cpu.tdp_watts - model.cpu.idle_watts) * active_fraction
    return latency, power * latency


def _evaluate_cpu(
    module: Module, kernel: str, knobs: VariantKnobs,
    model: ArchitectureModel,
) -> CostEstimate:
    function = module.find_function(kernel)
    work, _ = estimate_work(function)
    data_bytes = _data_bytes(function)
    latency, energy = cpu_cost_terms(work, data_bytes, knobs, model)
    return CostEstimate(
        latency_s=latency,
        energy_j=energy,
        data_bytes=data_bytes,
        feasible=True,
    )


def _evaluate_fpga(
    module: Module, kernel: str, knobs: VariantKnobs,
    model: ArchitectureModel, digest: Optional[str] = None,
) -> CostEstimate:
    if model.fpga_role_capacity is None or model.fpga_link is None:
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            feasible=False, infeasible_reason="no FPGA on this node",
        )
    # Static partition-legality gate: knob points whose unroll provably
    # over-subscribes an explicitly partitioned buffer's ports are
    # rejected before any pass or scheduling work. The explorer prunes
    # on the same predicate, so both paths report the same reason.
    conflict = partition_conflict(
        function_facts(module, kernel, digest), knobs
    )
    if conflict is not None:
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            feasible=False, infeasible_reason=conflict,
        )
    prepared = prepare_variant_module(module, kernel, knobs, digest)
    options = HLSOptions(
        clock_hz=knobs.clock_hz,
        memory_strategy=knobs.memory_strategy,
        budget=ResourceBudget(
            fadd=4 * knobs.unroll, fmul=4 * knobs.unroll,
        ),
        enable_dift=knobs.dift or None,
    )
    try:
        design = synthesize(prepared, kernel, options)
    except (HLSError, SchedulingError) as exc:
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            feasible=False, infeasible_reason=str(exc),
        )

    if not design.resources.fits_in(model.fpga_role_capacity):
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            resources=design.resources, feasible=False,
            infeasible_reason="design exceeds role capacity",
        )
    achievable = model.achievable_clock(design.resources)
    if knobs.clock_hz > achievable:
        return CostEstimate(
            latency_s=float("inf"), energy_j=float("inf"),
            resources=design.resources, feasible=False,
            infeasible_reason=(
                f"timing: requested {knobs.clock_hz / 1e6:.0f} MHz, "
                f"achievable {achievable / 1e6:.0f} MHz"
            ),
        )

    data_bytes = design.data_bytes()
    transfer_j = model.fpga_link.transfer_energy(data_bytes)
    if model.fpga_link.coherent:
        # Coherent attachment streams operands on demand: transfer
        # overlaps the pipeline, so the invocation is bound by the
        # slower of compute and link bandwidth, plus one link latency.
        stream_s = data_bytes / model.fpga_link.bandwidth
        latency = max(design.latency_seconds, stream_s) + \
            model.fpga_link.latency_s
    else:
        # Non-coherent: explicit staging copies before/after compute.
        transfer_s = model.fpga_link.transfer_time(data_bytes)
        latency = design.latency_seconds + transfer_s
    energy = design.energy_per_invocation + transfer_j
    return CostEstimate(
        latency_s=latency,
        energy_j=energy,
        resources=design.resources,
        data_bytes=data_bytes,
        feasible=True,
    )
