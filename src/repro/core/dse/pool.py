"""Process-pool pricing workers for the explorer.

The PR 5 thread pool is GIL-bound: variant pricing is pure Python
(pass pipeline + HLS), so threads only overlap during the rare I/O.
``workers_mode="process"`` prices batch points in child processes
instead. The design keeps results and *accounting* byte-identical to a
serial run:

* Work units are picklable and keyed by the source module's content
  digest. Each worker parses the printed module text exactly once (in
  the pool initializer) and then prices knob points with
  :func:`repro.core.dse.cost_model.price_variant` — the cache-free
  pricing core.
* The parent owns the cost cache: it performs the single get before
  dispatch and the single put after, so hit/miss counts match a serial
  run at every worker count.
* Each priced point returns the worker's prepared-module cache stats
  delta, which the parent folds into its own stats
  (:meth:`repro.core.dse.cache.CacheStats.add`), so published hit
  ratios account for child work.

Pricing in the child runs under a muted observation, mirroring the
explorer's hermetic-batch rule: worker processes must never contribute
trace spans or metrics of their own.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Tuple

from repro.core.dse.cache import CacheStats
from repro.core.variants import CostEstimate, VariantKnobs

#: Per-process worker state, set once by :func:`_init_worker`.
_STATE: Dict[str, Any] = {}


def create_pool(
    workers: int,
    module_text: str,
    digest: str,
    kernel: str,
    model: Any,
) -> ProcessPoolExecutor:
    """A process pool whose workers hold a parsed copy of the module.

    Prefers the ``fork`` start method where available (cheap, and the
    child inherits the parent's warm prepared-module cache, mirroring
    the state a serial run would see); falls back to the platform
    default (``spawn``) otherwise, where the initializer re-parses the
    shipped module text.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(module_text, digest, kernel, model),
    )


def _init_worker(
    module_text: str, digest: str, kernel: str, model: Any
) -> None:
    """Parse the module once per worker process."""
    from repro.core.ir.parser import parse_module

    _STATE["module"] = parse_module(module_text)
    _STATE["digest"] = digest
    _STATE["kernel"] = kernel
    _STATE["model"] = model


def price_point(
    knobs: VariantKnobs,
) -> Tuple[CostEstimate, CacheStats]:
    """Price one knob point in a worker process.

    Returns the estimate plus the prepared-cache stats delta this
    pricing caused in the worker, for the parent to merge.
    """
    from repro.core.dse.cache import prepared_cache
    from repro.core.dse.cost_model import price_variant
    from repro.obs import Observation, observe

    before = prepared_cache().stats.snapshot()
    with observe(Observation()):
        cost = price_variant(
            _STATE["module"],
            _STATE["kernel"],
            knobs,
            _STATE["model"],
            digest=_STATE["digest"],
        )
    delta = prepared_cache().stats.delta(before)
    return cost, delta
