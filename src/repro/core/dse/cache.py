"""Content-addressed caches behind the DSE evaluation engine.

Two layers, both keyed by *content* digests
(:func:`repro.core.ir.digest.module_digest`) rather than object
identity, so a recycled ``id()`` can never alias two different kernel
sources:

* :class:`PreparedModuleCache` — a bounded in-memory LRU of
  knob-transformed ("prepared") modules, saving the pass pipeline on
  repeat evaluations inside one process;
* :class:`CostCache` — a two-level cost store (in-memory dict plus an
  optional persistent on-disk directory) memoizing
  ``(module_digest, kernel, knobs, model)`` → cost estimate, so a
  second ``repro`` invocation of the same kernel skips HLS re-synthesis
  entirely.

Both caches are thread-safe (the parallel explorer evaluates batches
from worker threads) and keep their own hit/miss statistics instead of
reporting to the ambient observation from workers: the explorer
publishes deltas from the main thread, keeping traces and metrics
deterministic regardless of ``workers``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.ir.digest import DIGEST_VERSION
from repro.core.ir.module import Module
from repro.core.variants import CostEstimate
from repro.errors import DSEError
from repro.platform.resources import FPGAResources

#: Bump when the entry layout or key recipe changes incompatibly.
CACHE_FORMAT_VERSION = "1"

#: Default bound of the prepared-module LRU (entries, not bytes).
DEFAULT_PREPARED_CAPACITY = 512


@dataclass
class CacheStats:
    """Monotonic counters one cache keeps about itself."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def snapshot(self) -> "CacheStats":
        """An independent copy (for delta accounting)."""
        return CacheStats(self.hits, self.misses, self.stores,
                          self.evictions)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after ``since`` was snapshotted."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            stores=self.stores - since.stores,
            evictions=self.evictions - since.evictions,
        )

    def add(self, delta: "CacheStats") -> None:
        """Fold another stats delta into this one.

        The process-pool explorer uses this to merge the prepared-cache
        counters its worker processes accumulated back into the parent's
        stats, so hit ratios published after a run account for work
        done in children exactly as a serial run would.
        """
        self.hits += delta.hits
        self.misses += delta.misses
        self.stores += delta.stores
        self.evictions += delta.evictions

    @property
    def lookups(self) -> int:
        """Total gets served."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits per lookup (0.0 when never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PreparedModuleCache:
    """Bounded LRU of prepared variant modules.

    Keys are ``(module_digest, kernel, knobs)`` tuples; the digest is
    the content hash of the *source* (tensor-form) module, so mutating
    or garbage-collecting a module can never resurrect a stale entry.
    """

    def __init__(self, capacity: int = DEFAULT_PREPARED_CAPACITY):
        if capacity < 1:
            raise DSEError(
                f"prepared-module cache capacity must be >= 1, "
                f"got {capacity}"
            )
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Module]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[Module]:
        """The cached module for ``key``, refreshing its recency."""
        with self._lock:
            module = self._entries.get(key)
            if module is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return module

    def put(self, key: Tuple, module: Module) -> None:
        """Insert (or refresh) one entry, evicting the oldest at cap."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = module
                return
            self._entries[key] = module
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _cost_to_dict(cost: CostEstimate) -> Dict[str, Any]:
    return {
        "latency_s": cost.latency_s,
        "energy_j": cost.energy_j,
        "resources": {
            "luts": cost.resources.luts,
            "ffs": cost.resources.ffs,
            "bram_kb": cost.resources.bram_kb,
            "dsps": cost.resources.dsps,
        },
        "data_bytes": cost.data_bytes,
        "feasible": cost.feasible,
        "infeasible_reason": cost.infeasible_reason,
        "accuracy": cost.accuracy,
    }


def _cost_from_dict(payload: Dict[str, Any]) -> CostEstimate:
    resources = payload.get("resources") or {}
    return CostEstimate(
        latency_s=float(payload["latency_s"]),
        energy_j=float(payload["energy_j"]),
        resources=FPGAResources(
            luts=int(resources.get("luts", 0)),
            ffs=int(resources.get("ffs", 0)),
            bram_kb=int(resources.get("bram_kb", 0)),
            dsps=int(resources.get("dsps", 0)),
        ),
        data_bytes=int(payload.get("data_bytes", 0)),
        feasible=bool(payload["feasible"]),
        infeasible_reason=str(payload.get("infeasible_reason", "")),
        accuracy=float(payload.get("accuracy", 1.0)),
    )


class CostCache:
    """Two-level (memory + optional disk) store of cost estimates.

    ``directory=None`` keeps the cache purely in-memory. With a
    directory, entries are JSON files sharded by key prefix and written
    atomically (temp file + rename), so concurrent processes sharing
    one cache directory never observe torn entries.

    ``get`` always returns a *fresh* :class:`CostEstimate`: callers
    (the explorer's requirement check) mutate feasibility in place, and
    a shared instance would poison later lookups.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: bool = True):
        self.directory = Path(directory) if directory else None
        self.enabled = enabled
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: Dict[str, Dict[str, Any]] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- keying --------------------------------------------------------

    @staticmethod
    def key(module_digest: str, kernel: str, knobs: Any,
            model_fingerprint: str) -> str:
        """Stable cache key for one evaluation point."""
        material = "\x1f".join((
            f"dse-cost-v{CACHE_FORMAT_VERSION}",
            f"ir-v{DIGEST_VERSION}",
            module_digest,
            kernel,
            repr(knobs),
            model_fingerprint,
        ))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- lookup / store ------------------------------------------------

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CostEstimate]:
        """The cached estimate for ``key`` (a fresh copy), or None."""
        if not self.enabled:
            return None
        with self._lock:
            payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read_disk(key)
            if payload is not None:
                with self._lock:
                    self._memory[key] = payload
        with self._lock:
            if payload is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
        return _cost_from_dict(payload)

    def put(self, key: str, cost: CostEstimate,
            context: Optional[Dict[str, Any]] = None) -> None:
        """Store one estimate; ``context`` is extra debug metadata."""
        if not self.enabled:
            return
        payload = _cost_to_dict(cost)
        with self._lock:
            self._memory[key] = payload
            self.stats.stores += 1
        if self.directory is not None:
            entry = {"version": CACHE_FORMAT_VERSION, "key": key,
                     "cost": payload}
            if context:
                entry["context"] = context
            self._write_disk(key, entry)

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path_for(key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("version") != CACHE_FORMAT_VERSION:
                return None
            return entry["cost"]
        except (OSError, ValueError, KeyError):
            return None

    def _write_disk(self, key: str, entry: Dict[str, Any]) -> None:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(handle, "w") as stream:
                json.dump(entry, stream, sort_keys=True)
            os.replace(temp, path)
        except OSError:
            # Disk persistence is best-effort: a read-only or full
            # cache directory degrades to memory-only behavior.
            pass

    # -- maintenance ---------------------------------------------------

    def _disk_files(self) -> Iterator[Path]:
        if self.directory is None or not self.directory.is_dir():
            return iter(())
        return self.directory.glob("*/*.json")

    def entry_count(self) -> int:
        """Distinct cached points (union of memory and disk)."""
        keys = set(self._memory)
        keys.update(path.stem for path in self._disk_files())
        return len(keys)

    def disk_bytes(self) -> int:
        """Total size of the on-disk entries."""
        return sum(path.stat().st_size for path in self._disk_files())

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        removed = self.entry_count()
        with self._lock:
            self._memory.clear()
        for path in list(self._disk_files()):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------
# Process-wide default instances (what the cost model actually uses).

_prepared = PreparedModuleCache()
_cost = CostCache()
_config_lock = threading.Lock()


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-dse`` or ``~/.cache/repro-dse``."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-dse"


def prepared_cache() -> PreparedModuleCache:
    """The process-wide prepared-module LRU."""
    return _prepared


def cost_cache() -> CostCache:
    """The process-wide cost cache."""
    return _cost


def configure(
    cache_dir: Optional[os.PathLike] = None,
    enabled: bool = True,
    prepared_capacity: Optional[int] = None,
) -> CostCache:
    """Reconfigure the process-wide caches.

    ``cache_dir=None`` keeps the cost cache memory-only (the library
    default); the CLI passes :func:`default_cache_dir` so repeated
    invocations share one persistent store. Returns the new cost cache.
    """
    global _prepared, _cost
    with _config_lock:
        _cost = CostCache(directory=cache_dir, enabled=enabled)
        if prepared_capacity is not None:
            _prepared = PreparedModuleCache(capacity=prepared_capacity)
        return _cost


def clear_caches() -> int:
    """Empty both process-wide caches; returns entries removed."""
    return prepared_cache().clear() + cost_cache().clear()
