"""Static performance analysis: analytic work/traffic/II lower bounds.

The DSE layer discovers performance facts by *pricing* knob points
through the cost model — pass pipeline, scheduling, memory planning
per point. Most of what pricing learns is already determined by the
loop structure the abstract interpreter (:mod:`.absint`) extracts:
trip counts, access patterns, loop-carried recurrences. This module
derives it once, analytically, as a :class:`StaticBounds` record per
kernel:

* **work** — total operation counts by resource class, per loop nest
  and whole-function (plus the tensor-level FLOP estimate the CPU
  model prices);
* **traffic** — bytes moved per buffer, with *reuse credit* for loads
  provably invariant in their inner loops (they can be hoisted into
  registers and issued once per surrounding iteration);
* **II floor** — an achievable initiation-interval lower bound per
  innermost loop from memory-port pressure and the loop-carried
  accumulation chain;
* **roofline verdict** — compute-bound vs memory-bound at default
  knobs, naming the binding resource.

Three consumers:

1. :func:`check_module_perf` — PERF001-PERF005 diagnostics for
   ``repro lint`` (kernel-form functions only; tensor-form kernels
   have not chosen knobs yet, so their performance is a DSE concern);
2. ``repro perf`` — the CLI report (per-loop-nest bound table);
3. :func:`bound_for` — a per-knob-point ``(latency, energy)`` lower
   bound the explorer uses to order candidates and skip points whose
   bound is already dominated by the incumbent front
   (``Explorer(bound_guided=True)``).

**Soundness contract**: for every knob point, the cost model's priced
latency and energy never fall below :func:`bound_for`'s result. For
CPU targets the bound *is* the cost model's own arithmetic (shared via
:func:`repro.core.dse.cost_model.cpu_cost_terms`). For FPGA targets
the cycle bound replays the scheduler's formulas from below: knob
combinations that restructure loops (tiling, interchange, layout,
interleaving, DIFT) fall back to a crude ``ceil(iterations/unroll)``
floor that survives any iteration-preserving transform. The property
suite ``tests/analysis/test_perf_properties.py`` polices the contract
on every example and seeded random kernel.

Bounds are memoized per content digest (in-process LRU) and persisted
in the digest-keyed :class:`~repro.core.analysis.cache.AnalysisCache`
with payload kind ``"perf"`` (see ``repro cache stats``).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.analysis.absint import (
    AnalysisFacts,
    FunctionFacts,
    compute_function_facts,
)
from repro.core.analysis.diagnostics import Diagnostics
from repro.core.hls.cdfg import CDFG, LoopNode, build_cdfg, loop_carried_chain
from repro.core.hls.memory import (
    COMPLETE_PARTITION_LIMIT,
    PORTS_PER_BANK,
)
from repro.core.hls.scheduling import OP_LATENCY, RESOURCE_CLASS
from repro.core.ir.module import Module
from repro.core.ir.types import MemRefType

#: Default accelerator clock the roofline verdict is taken at (matches
#: :class:`~repro.core.hls.bambu.HLSOptions`).
DEFAULT_CLOCK_HZ = 250e6

#: The memory plan's maximum banking factor (matches plan_memories).
_MAX_FACTOR = 64


# ---------------------------------------------------------------------
# The bounds record.


@dataclass
class NestBounds:
    """Analytic facts about one innermost loop nest."""

    anchor: str
    depth: int
    trip: int  # innermost trip count
    outer_iters: int  # product of enclosing loop trips
    #: operation counts per innermost iteration, by resource class
    #: ("alu" for unconstrained ops).
    ops: Dict[str, int] = field(default_factory=dict)
    #: memory accesses per innermost iteration, per buffer name.
    accesses: Dict[str, int] = field(default_factory=dict)
    #: loop-carried accumulation chain latency in cycles (0 = none).
    chain_latency: int = 0

    @property
    def total_iters(self) -> int:
        return self.trip * self.outer_iters

    def min_ii(self, unroll: int, ports_of: Dict[str, int]) -> int:
        """II floor at ``unroll`` given per-buffer port grants.

        A port grant of 0 means effectively unlimited (registers).
        """
        effective = min(max(1, unroll), self.trip) if self.trip else 1
        ii = max(1, self.chain_latency)
        for buffer, count in self.accesses.items():
            ports = ports_of.get(buffer, PORTS_PER_BANK)
            if ports <= 0:
                continue
            ii = max(ii, math.ceil(count * effective / ports))
        return ii

    def to_payload(self) -> Dict[str, Any]:
        return {"anchor": self.anchor, "depth": self.depth,
                "trip": self.trip, "outer_iters": self.outer_iters,
                "ops": dict(sorted(self.ops.items())),
                "accesses": dict(sorted(self.accesses.items())),
                "chain_latency": self.chain_latency}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "NestBounds":
        return NestBounds(
            anchor=str(payload["anchor"]), depth=int(payload["depth"]),
            trip=int(payload["trip"]),
            outer_iters=int(payload["outer_iters"]),
            ops={str(k): int(v) for k, v in payload["ops"].items()},
            accesses={str(k): int(v)
                      for k, v in payload["accesses"].items()},
            chain_latency=int(payload["chain_latency"]),
        )


@dataclass
class BufferTraffic:
    """Bytes one buffer moves per kernel invocation."""

    buffer: str
    #: without reuse credit: every access re-reads memory.
    bytes_naive: int = 0
    #: with reuse credit for provably loop-invariant loads.
    bytes_moved: int = 0
    accesses: int = 0  # static access sites

    def to_payload(self) -> Dict[str, Any]:
        return {"buffer": self.buffer, "bytes_naive": self.bytes_naive,
                "bytes_moved": self.bytes_moved,
                "accesses": self.accesses}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "BufferTraffic":
        return BufferTraffic(
            buffer=str(payload["buffer"]),
            bytes_naive=int(payload["bytes_naive"]),
            bytes_moved=int(payload["bytes_moved"]),
            accesses=int(payload["accesses"]),
        )


@dataclass
class BufferInfo:
    """What the memory planner will see for one buffer."""

    buffer: str
    elements: int
    element_bits: int
    #: accesses across every loop body (plan_memories' needed-ports
    #: input).
    total_accesses: int = 0
    #: small kernel.alloc scratch -> complete partitioning (registers).
    small_alloc: bool = False
    #: explicit hw.partition directive, if any.
    scheme: str = ""
    factor: int = 0

    def ports(self, strategy: str, max_unroll: int) -> int:
        """Port grant the memory plan will produce (0 = unlimited).

        Mirrors :func:`repro.core.hls.memory.plan_memories` exactly for
        structure-preserving knob points, so the derived II floor is a
        true lower bound on the scheduled II.
        """
        if self.scheme:
            if self.scheme == "complete":
                return 0
            return max(1, self.factor) * PORTS_PER_BANK
        if strategy == "none":
            return PORTS_PER_BANK
        if self.small_alloc:
            return 0
        needed = max(1, self.total_accesses * max(1, max_unroll))
        factor = 1
        while factor * PORTS_PER_BANK < needed and factor < _MAX_FACTOR:
            factor *= 2
        return factor * PORTS_PER_BANK

    def to_payload(self) -> Dict[str, Any]:
        return {"buffer": self.buffer, "elements": self.elements,
                "element_bits": self.element_bits,
                "total_accesses": self.total_accesses,
                "small_alloc": self.small_alloc,
                "scheme": self.scheme, "factor": self.factor}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "BufferInfo":
        return BufferInfo(
            buffer=str(payload["buffer"]),
            elements=int(payload["elements"]),
            element_bits=int(payload["element_bits"]),
            total_accesses=int(payload["total_accesses"]),
            small_alloc=bool(payload["small_alloc"]),
            scheme=str(payload["scheme"]),
            factor=int(payload["factor"]),
        )


@dataclass
class StaticBounds:
    """Analytic lower bounds for one kernel (the reusable record)."""

    kernel: str
    #: tensor-level FLOP estimate (what the CPU cost model prices).
    work: float = 0.0
    #: tensor-signature bytes (the CPU model's memory term).
    data_bytes: int = 0
    #: lowered memref-argument bytes (the FPGA link's stream floor).
    arg_bytes: int = 0
    #: total dynamic operation counts by resource class.
    op_counts: Dict[str, int] = field(default_factory=dict)
    nests: List[NestBounds] = field(default_factory=list)
    traffic: List[BufferTraffic] = field(default_factory=list)
    buffers: List[BufferInfo] = field(default_factory=list)
    #: "compute-bound" | "memory-bound" at default knobs.
    verdict: str = "compute-bound"
    #: the binding resource at default knobs (e.g. "recurrence chain",
    #: "link bandwidth", "memport:%A").
    binding: str = ""

    def buffer_info(self) -> Dict[str, BufferInfo]:
        return {info.buffer: info for info in self.buffers}

    @property
    def total_iterations(self) -> int:
        return sum(nest.total_iters for nest in self.nests)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": "perf",
            "kernel": self.kernel,
            "work": self.work,
            "data_bytes": self.data_bytes,
            "arg_bytes": self.arg_bytes,
            "op_counts": dict(sorted(self.op_counts.items())),
            "nests": [nest.to_payload() for nest in self.nests],
            "traffic": [t.to_payload() for t in self.traffic],
            "buffers": [b.to_payload() for b in self.buffers],
            "verdict": self.verdict,
            "binding": self.binding,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "StaticBounds":
        return StaticBounds(
            kernel=str(payload["kernel"]),
            work=float(payload["work"]),
            data_bytes=int(payload["data_bytes"]),
            arg_bytes=int(payload["arg_bytes"]),
            op_counts={str(k): int(v)
                       for k, v in payload["op_counts"].items()},
            nests=[NestBounds.from_payload(n)
                   for n in payload["nests"]],
            traffic=[BufferTraffic.from_payload(t)
                     for t in payload["traffic"]],
            buffers=[BufferInfo.from_payload(b)
                     for b in payload["buffers"]],
            verdict=str(payload["verdict"]),
            binding=str(payload["binding"]),
        )


# ---------------------------------------------------------------------
# Deriving bounds from kernel-form IR.


def _baseline_kernel_form(module: Module, kernel: str):
    """The kernel lowered with the knob-independent baseline pipeline.

    Every variant pipeline starts with elementwise fusion and ends in
    lowering + canonicalization; the baseline applies exactly those,
    so structure-preserving knob points (no tiling / interchange /
    layout / interleave / DIFT) schedule the *same* loop bodies the
    baseline analyzed.
    """
    function = module.find_function(kernel)
    if function is None:
        return None
    if not any(op.dialect == "tensor" for op in function.walk()):
        return function  # already kernel-form
    from repro.core.ir.passes import (
        CanonicalizePass,
        ElementwiseFusionPass,
        LowerTensorPass,
        PassManager,
    )

    clone = module.clone()
    manager = PassManager(verify_each=False)
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(CanonicalizePass())
    manager.run(clone)
    return clone.find_function(kernel)


def _nest_walk(
    loop: LoopNode, outer: int, nests: List[Tuple[LoopNode, int]]
) -> None:
    product = outer if loop.op is None else outer * max(
        1, loop.trip_count)
    if loop.op is not None and loop.is_innermost:
        nests.append((loop, outer))
        return
    for child in loop.children:
        _nest_walk(child, product, nests)


def _collect_nests(kernel: str, cdfg: CDFG) -> List[NestBounds]:
    raw: List[Tuple[LoopNode, int]] = []
    _nest_walk(cdfg.root, 1, raw)
    nests: List[NestBounds] = []
    for position, (loop, outer) in enumerate(raw):
        ops: Dict[str, int] = {}
        accesses: Dict[str, int] = {}
        for node in loop.body:
            cls = RESOURCE_CLASS.get(node.op.name, "alu")
            ops[cls] = ops.get(cls, 0) + 1
            buffer = node.buffer()
            if buffer is not None:
                accesses[buffer.name] = accesses.get(buffer.name, 0) + 1
        chain = loop_carried_chain(loop)
        nests.append(NestBounds(
            anchor=f"{kernel}/nest{position}",
            depth=loop.depth,
            trip=max(0, loop.trip_count),
            outer_iters=max(1, outer),
            ops=ops,
            accesses=accesses,
            chain_latency=sum(
                OP_LATENCY.get(node.op.name, 1) for node in chain),
        ))
    return nests


def _collect_buffers(cdfg: CDFG) -> List[BufferInfo]:
    infos: "OrderedDict[int, BufferInfo]" = OrderedDict()
    for loop in cdfg.root.walk():
        for node in loop.body:
            buffer = node.buffer()
            if buffer is None or not isinstance(buffer.type, MemRefType):
                continue
            key = id(buffer)
            info = infos.get(key)
            if info is None:
                memref = buffer.type
                producer = buffer.producer
                info = BufferInfo(
                    buffer=buffer.name,
                    elements=memref.num_elements,
                    element_bits=memref.element.bit_width,
                    small_alloc=(
                        memref.num_elements <= COMPLETE_PARTITION_LIMIT
                        and producer is not None
                        and producer.name == "kernel.alloc"
                    ),
                )
                infos[key] = info
            info.total_accesses += 1
    for op in cdfg.function.walk():
        if op.name != "hw.partition" or not op.operands:
            continue
        info = infos.get(id(op.operands[0]))
        if info is not None:
            info.scheme = str(op.attr("scheme"))
            info.factor = int(op.attr("factor", 1))
    return list(infos.values())


def _collect_traffic(facts: FunctionFacts) -> List[BufferTraffic]:
    per_buffer: "OrderedDict[str, BufferTraffic]" = OrderedDict()
    for access in facts.accesses:
        record = per_buffer.get(access.buffer)
        if record is None:
            record = BufferTraffic(buffer=access.buffer)
            per_buffer[access.buffer] = record
        issues = 1
        for trip in access.enclosing_trips:
            issues *= max(1, trip)
        element_bytes = max(1, access.element_bits // 8)
        record.accesses += 1
        record.bytes_naive += issues * element_bytes
        credit = access.reuse_factor if access.kind == "load" else 1
        record.bytes_moved += (issues // max(1, credit)) * element_bytes
    return list(per_buffer.values())


def _arg_bytes(function) -> int:
    return sum(
        declared.size_bytes for declared in function.type.inputs
        if isinstance(declared, MemRefType)
    )


def _roofline(bounds: StaticBounds) -> Tuple[str, str]:
    """(verdict, binding resource) at default knobs (unroll 1)."""
    from repro.platform.interconnect import OpenCAPILink

    link = OpenCAPILink()
    ports = {info.buffer: info.ports("auto", 1)
             for info in bounds.buffers}
    cycles = 0
    binding = "loop pipeline"
    worst: Tuple[int, str] = (0, binding)
    for nest in bounds.nests:
        if nest.trip <= 0:
            continue
        ii = nest.min_ii(1, ports)
        nest_cycles = nest.outer_iters * (1 + (nest.trip - 1) * ii)
        cycles += nest_cycles
        if nest_cycles >= worst[0]:
            port_term, pressed = 0, ""
            for buffer, count in nest.accesses.items():
                port_count = ports.get(buffer, 0)
                if port_count <= 0:
                    continue
                term = math.ceil(count / port_count)
                if term > port_term:
                    port_term, pressed = term, buffer
            if ii <= 1:
                reason = "loop pipeline"
            elif nest.chain_latency >= port_term:
                reason = "recurrence chain"
            else:
                reason = f"memport:%{pressed}"
            worst = (nest_cycles, reason)
    compute_s = cycles / DEFAULT_CLOCK_HZ
    stream_s = bounds.arg_bytes / link.bandwidth
    if stream_s > compute_s:
        return "memory-bound", "link bandwidth"
    return "compute-bound", worst[1]


def compute_kernel_bounds(
    module: Module, kernel: str
) -> Optional[StaticBounds]:
    """Derive :class:`StaticBounds` for one kernel (uncached)."""
    from repro.core.dse.cost_model import _data_bytes
    from repro.core.ir.passes.partitioning import estimate_work

    source = module.find_function(kernel)
    if source is None or source.is_declaration:
        return None
    lowered = _baseline_kernel_form(module, kernel)
    if lowered is None:
        return None
    work, _ = estimate_work(source)
    cdfg = build_cdfg(lowered)
    facts = compute_function_facts(lowered)
    bounds = StaticBounds(
        kernel=kernel,
        work=float(work),
        data_bytes=_data_bytes(source),
        arg_bytes=_arg_bytes(lowered),
        nests=_collect_nests(kernel, cdfg),
        traffic=_collect_traffic(facts),
        buffers=_collect_buffers(cdfg),
    )
    totals: Dict[str, int] = {}
    for nest in bounds.nests:
        for cls, count in nest.ops.items():
            totals[cls] = totals.get(cls, 0) + count * nest.total_iters
    bounds.op_counts = totals
    bounds.verdict, bounds.binding = _roofline(bounds)
    return bounds


# ---------------------------------------------------------------------
# Memoization: in-process LRU + the persistent analysis cache.

_BOUNDS_MEMO: "OrderedDict[Tuple[str, str], StaticBounds]" = OrderedDict()
_BOUNDS_LOCK = threading.Lock()
_BOUNDS_MEMO_CAPACITY = 256


def kernel_bounds(
    module: Module, kernel: str, digest: Optional[str] = None
) -> Optional[StaticBounds]:
    """Digest-memoized :func:`compute_kernel_bounds`.

    Results live in an in-process LRU *and* the process-wide
    :class:`~repro.core.analysis.cache.AnalysisCache` (payload kind
    ``"perf"``), so a warm ``repro perf`` / bound-guided exploration
    never re-derives bounds for an unchanged kernel. Traffic is
    published as ``perf.cache_hits`` / ``perf.cache_misses`` /
    ``perf.bounds_computed``.
    """
    from repro.core.analysis.cache import AnalysisCache, analysis_cache
    from repro.obs import current_metrics

    if digest is None:
        from repro.core.ir.digest import module_digest

        digest = module_digest(module)
    memo_key = (digest, kernel)
    with _BOUNDS_LOCK:
        cached = _BOUNDS_MEMO.get(memo_key)
        if cached is not None:
            _BOUNDS_MEMO.move_to_end(memo_key)
            return cached
    metrics = current_metrics()
    cache = analysis_cache()
    cache_key = AnalysisCache.perf_key(digest, kernel)
    payload = cache.get(cache_key)
    if payload is not None:
        metrics.counter(
            "perf.cache_hits", "perf-analysis cache hits",
        ).inc(1, kernel=kernel)
        bounds = StaticBounds.from_payload(payload)
        _memo_put(memo_key, bounds)
        return bounds
    metrics.counter(
        "perf.cache_misses", "perf-analysis cache misses",
    ).inc(1, kernel=kernel)
    bounds = compute_kernel_bounds(module, kernel)
    if bounds is None:
        return None
    metrics.counter(
        "perf.bounds_computed", "static bounds derived from scratch",
    ).inc(1, kernel=kernel)
    cache.put(cache_key, bounds.to_payload())
    _memo_put(memo_key, bounds)
    return bounds


def _memo_put(key: Tuple[str, str], bounds: StaticBounds) -> None:
    with _BOUNDS_LOCK:
        _BOUNDS_MEMO[key] = bounds
        while len(_BOUNDS_MEMO) > _BOUNDS_MEMO_CAPACITY:
            _BOUNDS_MEMO.popitem(last=False)


# ---------------------------------------------------------------------
# Per-knob-point lower bounds (the explorer's pruning oracle).


def _structure_preserving(knobs) -> bool:
    """Knob points whose pass pipeline keeps the baseline loop bodies.

    Tiling, loop interchange, data-layout conversion, accumulation
    interleaving and DIFT instrumentation all restructure loops or
    bodies; for those the refined per-nest II model does not transfer
    and the crude iteration floor is used instead.
    """
    return (
        not knobs.tile
        and knobs.layout == "row_major"
        and knobs.matmul_order == "ijk"
        and knobs.interleave <= 1
        and not knobs.dift
    )


def fpga_cycles_lower_bound(bounds: StaticBounds, knobs) -> int:
    """A cycle count no schedule of this kernel can beat at ``knobs``."""
    unroll = max(1, int(knobs.unroll))
    if not _structure_preserving(knobs):
        # Any iteration-preserving restructuring still has to issue
        # every innermost iteration at best ``unroll`` at a time, one
        # initiation per cycle.
        total = sum(
            math.ceil(nest.total_iters / unroll)
            for nest in bounds.nests if nest.trip > 0
        )
        return max(1, total)
    max_unroll = max(
        [min(unroll, nest.trip) for nest in bounds.nests
         if nest.trip > 0] or [1]
    )
    ports = {info.buffer: info.ports(knobs.memory_strategy, max_unroll)
             for info in bounds.buffers}
    total = 0
    for nest in bounds.nests:
        if nest.trip <= 0:
            continue
        effective = min(unroll, nest.trip)
        instances = math.ceil(nest.trip / effective)
        ii = nest.min_ii(effective, ports)
        total += nest.outer_iters * (1 + (instances - 1) * ii)
    return max(1, total)


def bound_for(
    bounds: StaticBounds, knobs, model
) -> Tuple[float, float]:
    """``(latency_s, energy_j)`` floor for one knob point.

    Guaranteed not to exceed what
    :func:`repro.core.dse.cost_model.evaluate_variant` returns for the
    same point (infeasible points price at +inf, above any bound).
    """
    if knobs.target == "cpu":
        from repro.core.dse.cost_model import cpu_cost_terms

        return cpu_cost_terms(
            bounds.work, bounds.data_bytes, knobs, model)
    if knobs.target != "fpga":
        return 0.0, 0.0
    link = getattr(model, "fpga_link", None)
    if link is None or getattr(model, "fpga_role_capacity", None) is None:
        return float("inf"), float("inf")
    cycles = fpga_cycles_lower_bound(bounds, knobs)
    compute_s = cycles / max(1.0, float(knobs.clock_hz))
    stream_s = bounds.arg_bytes / link.bandwidth
    if link.coherent:
        latency = max(compute_s, stream_s) + link.latency_s
    else:
        latency = compute_s + link.transfer_time(bounds.arg_bytes)
    energy = link.transfer_energy(bounds.arg_bytes)
    return latency, energy


# ---------------------------------------------------------------------
# PERF diagnostics (repro lint --only perf).


def check_module_perf(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
    facts: Optional[AnalysisFacts] = None,
) -> Diagnostics:
    """PERF001-PERF005 over the kernel-form functions of a module.

    Tensor-form kernels are skipped: their loop structure (and with it
    every performance property) is decided by DSE knobs, so static
    performance findings would be speculative. Kernel-form functions —
    hand-written ``.ir``, migrated front ends, lowered artifacts —
    carry their directives explicitly and get exact findings:

    * **PERF001** (error): an ``unroll`` directive provably
      over-subscribes an explicitly partitioned buffer's ports;
    * **PERF002** (warning): a load provably invariant in its inner
      loop(s) — hoist it into a register to cut traffic;
    * **PERF003** (warning): a non-affine access in an innermost loop
      defeats burst/banking inference;
    * **PERF004** (note): the kernel is memory-bound at default knobs
      (the attachment link binds before any compute resource);
    * **PERF005** (error): a ``pipeline_ii`` target provably
      unattainable (port pressure or recurrence chain exceeds it).
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for function in module.functions():
        if function.is_declaration:
            continue
        if any(op.dialect == "tensor" for op in function.walk()):
            continue
        if not any(op.name == "kernel.for" for op in function.walk()):
            continue
        function_facts = (
            facts.function(function.name) if facts is not None else None
        )
        if function_facts is None:
            function_facts = compute_function_facts(function)
        _check_function_perf(function, function_facts, diagnostics)
    return diagnostics


def _check_function_perf(
    function, facts: FunctionFacts, diagnostics: Diagnostics
) -> None:
    from repro.errors import HLSError

    try:
        cdfg = build_cdfg(function)
    except HLSError:
        return
    directives: Dict[int, Tuple[str, int]] = {}
    for op in function.walk():
        if op.name == "hw.partition" and op.operands:
            directives[id(op.operands[0])] = (
                str(op.attr("scheme")), int(op.attr("factor", 1)),
            )

    for loop in cdfg.innermost_loops():
        anchor = f"{function.name}/kernel.for"
        trip = loop.trip_count
        if trip <= 0:
            continue
        unroll = loop.unroll
        effective = min(unroll, trip)
        per_buffer: Dict[int, Tuple[str, int]] = {}
        for node in loop.body:
            buffer = node.buffer()
            if buffer is None:
                continue
            name, count = per_buffer.get(id(buffer), (buffer.name, 0))
            per_buffer[id(buffer)] = (name, count + 1)

        ii_floor = 1
        pressed = ""
        for key, (name, count) in per_buffer.items():
            directive = directives.get(key)
            if directive is None or directive[0] == "complete":
                continue
            scheme, factor = directive
            ports = max(1, factor) * PORTS_PER_BANK
            demanded = count * effective
            if effective > 1 and demanded > ports:
                diagnostics.error(
                    "PERF001",
                    f"unroll {unroll} demands {demanded} concurrent "
                    f"ports on %{name} ({count} accesses x {effective} "
                    f"copies) but {scheme} factor {factor} provides "
                    f"only {ports}",
                    anchor=anchor, analysis="perf",
                )
            term = math.ceil(demanded / ports)
            if term > ii_floor:
                ii_floor, pressed = term, name

        if loop.pipelined:
            target = max(1, int(loop.op.attr("pipeline_ii", 1)))
            interleave = max(1, int(loop.op.attr("interleave", 1)))
            chain = loop_carried_chain(loop)
            rec = math.ceil(
                sum(OP_LATENCY.get(node.op.name, 1) for node in chain)
                / interleave
            ) if chain else 1
            floor = max(ii_floor, rec)
            if floor > target:
                cause = (
                    f"the loop-carried accumulation chain "
                    f"({rec} cycles)"
                    if rec >= ii_floor else
                    f"port pressure on %{pressed}"
                )
                diagnostics.error(
                    "PERF005",
                    f"pipeline_ii = {target} is provably unattainable: "
                    f"{cause} forces II >= {floor}",
                    anchor=anchor, analysis="perf",
                )

    for access in facts.accesses:
        if not access.enclosing_trips:
            continue
        if access.kind == "load" and access.reuse_factor > 1:
            diagnostics.warning(
                "PERF002",
                f"load on %{access.buffer} is invariant in its "
                f"innermost loop(s): hoisting it to a register saves "
                f"{access.reuse_factor - 1} of every "
                f"{access.reuse_factor} issues",
                anchor=access.anchor, analysis="perf",
            )
        if access.depends_on and access.depends_on[-1] and any(
            not dim.affine for dim in access.dims
        ):
            diagnostics.warning(
                "PERF003",
                f"{access.kind} on %{access.buffer} uses a non-affine "
                f"index expression: burst inference and conflict-free "
                f"banking are defeated",
                anchor=access.anchor, analysis="perf",
            )

    bounds = compute_kernel_bounds_from_function(function, cdfg, facts)
    if bounds is not None and bounds.verdict == "memory-bound":
        stream_gbps = _default_link_bandwidth() / 1e9
        diagnostics.note(
            "PERF004",
            f"kernel is memory-bound at default knobs: streaming "
            f"{bounds.arg_bytes} argument bytes over the "
            f"{stream_gbps:.1f} GB/s attachment link dominates the "
            f"compute floor; unroll/partition knobs cannot help",
            anchor=f"{function.name}", analysis="perf",
        )


def _default_link_bandwidth() -> float:
    from repro.platform.interconnect import OpenCAPILink

    return OpenCAPILink().bandwidth


def compute_kernel_bounds_from_function(
    function, cdfg: Optional[CDFG] = None,
    facts: Optional[FunctionFacts] = None,
) -> Optional[StaticBounds]:
    """Bounds straight from a kernel-form function (no lowering)."""
    from repro.core.dse.cost_model import _data_bytes
    from repro.core.ir.passes.partitioning import estimate_work
    from repro.errors import HLSError

    if cdfg is None:
        try:
            cdfg = build_cdfg(function)
        except HLSError:
            return None
    if facts is None:
        facts = compute_function_facts(function)
    work, _ = estimate_work(function)
    bounds = StaticBounds(
        kernel=function.name,
        work=float(work),
        data_bytes=_data_bytes(function),
        arg_bytes=_arg_bytes(function),
        nests=_collect_nests(function.name, cdfg),
        traffic=_collect_traffic(facts),
        buffers=_collect_buffers(cdfg),
    )
    totals: Dict[str, int] = {}
    for nest in bounds.nests:
        for cls, count in nest.ops.items():
            totals[cls] = totals.get(cls, 0) + count * nest.total_iters
    bounds.op_counts = totals
    bounds.verdict, bounds.binding = _roofline(bounds)
    return bounds
