"""Generic forward/backward dataflow fixpoint engine over the IR.

Analyses assign every SSA :class:`~repro.core.ir.ops.Value` an element
of a join-semilattice and run transfer functions over the operations
of a function until the assignment stabilizes. The engine understands
the structured control flow of the unified IR: single-block function
bodies with ``kernel.for`` / ``workflow.pipeline`` regions nested to
any depth. Loops are iterated to a fixpoint so analyses that model
memory cells (keyed by the buffer value) see loop-carried facts.

Two concrete walkers are provided:

* :class:`ForwardAnalysis` — facts flow from definitions to uses
  (taint propagation, constant ranges);
* :class:`BackwardAnalysis` — facts flow from uses to definitions
  (liveness, dead-value detection).

Subclasses override :meth:`boundary` to seed facts and
:meth:`transfer` to propagate them across one operation; the engine
owns ordering, region recursion and termination.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Optional, TypeVar

from repro.core.ir.module import Function
from repro.core.ir.ops import Operation, Value

T = TypeVar("T")

#: Safety valve: structured loops converge in two passes; anything
#: beyond this means a transfer function is not monotone.
MAX_ITERATIONS = 16


class Lattice(Generic[T]):
    """A join-semilattice: bottom element plus a join operator."""

    def bottom(self) -> T:
        """The least element (no information)."""
        raise NotImplementedError

    def join(self, left: T, right: T) -> T:
        """Least upper bound of two elements."""
        raise NotImplementedError

    def le(self, left: T, right: T) -> bool:
        """True when ``left`` is subsumed by ``right``."""
        return self.join(left, right) == right


class SetLattice(Lattice[frozenset]):
    """Powerset lattice: join is set union (used for taint labels)."""

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right


class FlagLattice(Lattice[bool]):
    """Two-point lattice: join is logical or (used for liveness)."""

    def bottom(self) -> bool:
        return False

    def join(self, left: bool, right: bool) -> bool:
        return left or right


def linearize(function: Function) -> List[Operation]:
    """Every operation of the body in source (pre-)order."""
    return list(function.walk())


class DataflowState(Generic[T]):
    """Value -> lattice element assignment with change tracking."""

    def __init__(self, lattice: Lattice[T]):
        self.lattice = lattice
        self._facts: Dict[int, T] = {}
        self._values: Dict[int, Value] = {}
        self.changed = False

    def get(self, value: Value) -> T:
        """Current fact for a value (bottom when never set)."""
        return self._facts.get(id(value), self.lattice.bottom())

    def update(self, value: Value, fact: T) -> None:
        """Join ``fact`` into the value's current fact."""
        old = self.get(value)
        new = self.lattice.join(old, fact)
        if new != old:
            self._facts[id(value)] = new
            self._values[id(value)] = value
            self.changed = True

    def set(self, value: Value, fact: T) -> None:
        """Overwrite the value's fact (for strong updates)."""
        if self.get(value) != fact:
            self._facts[id(value)] = fact
            self._values[id(value)] = value
            self.changed = True

    def facts(self) -> Dict[Value, T]:
        """Snapshot of all non-bottom facts."""
        return {
            self._values[key]: fact
            for key, fact in self._facts.items()
            if fact != self.lattice.bottom()
        }


class DataflowAnalysis(Generic[T]):
    """Base fixpoint driver; subclass Forward/BackwardAnalysis."""

    #: Subclasses set the lattice the state is built over.
    lattice: Lattice[T] = SetLattice()  # type: ignore[assignment]

    def __init__(self):
        self.state: DataflowState[T] = DataflowState(self.lattice)

    # -- hooks ---------------------------------------------------------

    def boundary(self, function: Function) -> None:
        """Seed facts before the first sweep (e.g. argument taint)."""

    def transfer(self, op: Operation) -> None:
        """Propagate facts across one operation."""
        raise NotImplementedError

    # -- driver --------------------------------------------------------

    def _ordered(self, function: Function) -> Iterable[Operation]:
        raise NotImplementedError

    def run(self, function: Function) -> DataflowState[T]:
        """Iterate to fixpoint; returns the final state."""
        self.state = DataflowState(self.lattice)
        self.boundary(function)
        operations = list(self._ordered(function))
        for _ in range(MAX_ITERATIONS):
            self.state.changed = False
            for op in operations:
                self.transfer(op)
            if not self.state.changed:
                break
        return self.state


class ForwardAnalysis(DataflowAnalysis[T]):
    """Facts flow def -> use: ops visited in source order."""

    def _ordered(self, function: Function) -> Iterable[Operation]:
        return linearize(function)


class BackwardAnalysis(DataflowAnalysis[T]):
    """Facts flow use -> def: ops visited in reverse source order."""

    def _ordered(self, function: Function) -> Iterable[Operation]:
        return reversed(linearize(function))


class TaintPropagation(ForwardAnalysis[frozenset]):
    """Reference forward client: label propagation with clearing ops.

    ``seed`` maps values to initial label sets; results of operations
    in ``clearing`` drop all labels (declassification / encryption),
    every other op unions the labels of its operands into its results.
    Memory is modeled per buffer: a store taints the whole buffer value
    so later loads (also through loops) observe the labels.
    """

    def __init__(
        self,
        seed: Optional[Dict[int, frozenset]] = None,
        clearing: Iterable[str] = ("secure.declassify", "secure.encrypt"),
    ):
        super().__init__()
        self._seed = dict(seed or {})
        self._clearing = frozenset(clearing)

    def boundary(self, function: Function) -> None:
        for op in function.walk():
            for value in op.results:
                labels = self._seed.get(id(value))
                if labels:
                    self.state.update(value, frozenset(labels))
        for argument in function.arguments:
            labels = self._seed.get(id(argument))
            if labels:
                self.state.update(argument, frozenset(labels))

    def transfer(self, op: Operation) -> None:
        if op.name in self._clearing:
            for result in op.results:
                self.state.set(result, frozenset())
            return
        incoming: frozenset = frozenset()
        for operand in op.operands:
            incoming |= self.state.get(operand)
        if op.name == "kernel.store" and len(op.operands) >= 2:
            # value stored into a buffer taints the buffer itself
            self.state.update(op.operands[1], incoming)
            return
        if op.name == "secure.taint":
            label = op.attr("label")
            if label:
                incoming |= frozenset({str(label)})
        for result in op.results:
            self.state.update(result, incoming)


class Liveness(BackwardAnalysis[bool]):
    """Reference backward client: which values feed an effect.

    An operation is an *effect root* when it writes memory, terminates
    a block or has observable side effects. Every operand of a live
    operation is live; an op is live when it is a root or any of its
    results is live.
    """

    lattice = FlagLattice()

    _ROOT_NAMES = frozenset({
        "kernel.store", "func.return", "kernel.yield", "workflow.yield",
        "workflow.sink", "secure.check", "secure.monitor", "kernel.call",
        "hw.stream_write", "hw.partition", "hw.accelerator",
    })

    def is_root(self, op: Operation) -> bool:
        """True for ops whose execution is observable."""
        if op.name in self._ROOT_NAMES:
            return True
        from repro.core.ir.dialects import op_is_pure, op_is_terminator

        if op_is_terminator(op):
            return True
        # region-carrying ops (loops, pipelines) sequence their body
        if op.regions:
            return True
        return not op_is_pure(op) and not op.results

    def op_is_live(self, op: Operation) -> bool:
        """True when the op is a root or any result is live."""
        return self.is_root(op) or any(
            self.state.get(result) for result in op.results
        )

    def transfer(self, op: Operation) -> None:
        if not self.op_is_live(op):
            return
        for operand in op.operands:
            self.state.update(operand, True)
