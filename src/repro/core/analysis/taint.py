"""Static taint / information-flow checking (compile-time IFT).

The dynamic half of EVEREST's data protection (TaintHLS shadow logic,
the runtime flow tracker) catches violations while the design runs;
this module catches them *before* anything is synthesized, in the
spirit of the SDK's "detect security violations at compile time"
promise (paper §III-A).

Taint sources
    ``secure.taint`` results, arguments listed in a function's
    ``everest.sensitive_args`` attribute, and ``workflow.source`` ops
    whose ``sensitivity`` is not public.

Declassification
    ``secure.declassify`` and ``secure.encrypt`` clear labels; a
    ``secure.check`` guarding a value downgrades the finding to a
    note (the violation would trap dynamically).

Checks
    * SEC001 — a tainted value reaches ``func.return`` with no
      declassification and no dynamic guard;
    * SEC002 — a tainted value is stored into a caller-visible memref
      (a function argument) of a function without crypto/DIFT
      protection;
    * SEC003 — tainted egress exists but is guarded by a dynamic
      ``secure.check`` (note);
    * SEC004 — at the workflow level, a tainted pipeline value reaches
      a sink explicitly declared public;
    * SEC005 — a function carries ``everest.sensitive_args`` but has
      not been instrumented yet (warning: the compiler will force
      DIFT variants).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.analysis.dataflow import TaintPropagation
from repro.core.analysis.diagnostics import Diagnostics, Severity
from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Operation, Value

_PUBLIC = ("public", None, "")


def _function_seed(function: Function) -> Dict[int, FrozenSet[str]]:
    """Initial labels for a function: its sensitive arguments."""
    seed: Dict[int, FrozenSet[str]] = {}
    sensitive: List[int] = function.op.attr("everest.sensitive_args", [])
    arguments = function.arguments
    for index in sensitive:
        if 0 <= index < len(arguments):
            seed[id(arguments[index])] = frozenset({f"arg{index}"})
    return seed


def _is_protected(function: Function) -> bool:
    """True when the function already carries dynamic protection."""
    return bool(function.op.attr("dift")) or bool(
        function.op.attr("cipher")
    )


def _guarded_values(function: Function) -> Set[int]:
    """Values consumed by a secure.check (dynamically guarded)."""
    guarded: Set[int] = set()
    for op in function.walk():
        if op.name == "secure.check":
            guarded.update(id(operand) for operand in op.operands)
    return guarded


def check_function_taint(
    function: Function,
    diagnostics: Optional[Diagnostics] = None,
    annotate: bool = False,
) -> Diagnostics:
    """Run static IFT over one function; returns the diagnostics.

    With ``annotate`` set, every op producing a tainted value gets an
    ``analysis.taint`` attribute listing the labels (sorted), which
    round-trips through the textual IR for inspection.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    if function.is_declaration:
        return diagnostics

    analysis = TaintPropagation(seed=_function_seed(function))
    state = analysis.run(function)
    facts = state.facts()
    has_explicit_taint = any(
        op.name == "secure.taint" for op in function.walk()
    )
    instrumented = has_explicit_taint or _is_protected(function)
    sensitive = function.op.attr("everest.sensitive_args", [])
    if sensitive and not instrumented:
        diagnostics.warning(
            "SEC005",
            f"function {function.name!r} marks args {sensitive} "
            "sensitive but carries no taint instrumentation yet",
            anchor=function.name,
            analysis="taint",
        )

    if annotate:
        for value, labels in facts.items():
            producer = value.producer
            if producer is not None and labels:
                producer.set_attr("analysis.taint", sorted(labels))

    guarded = _guarded_values(function)
    protected = _is_protected(function)

    def labels_of(value: Value) -> FrozenSet[str]:
        return facts.get(value, frozenset())

    if not has_explicit_taint and not protected:
        # Only implicit arg-sensitivity: the compiler has not run the
        # security pass yet, so SEC005 above is the whole story —
        # hard errors would flag every pipeline mid-compilation.
        return diagnostics

    for op in function.walk():
        if op.name == "func.return":
            for operand in op.operands:
                labels = labels_of(operand)
                if not labels:
                    continue
                rendered = ", ".join(sorted(labels))
                if id(operand) in guarded or protected:
                    diagnostics.note(
                        "SEC003",
                        f"return of value tainted by [{rendered}] is "
                        "guarded dynamically, not declassified",
                        anchor=f"{function.name}/func.return",
                        analysis="taint",
                    )
                else:
                    diagnostics.error(
                        "SEC001",
                        f"tainted value (labels [{rendered}]) reaches "
                        f"the return of {function.name!r} without "
                        "secure.declassify or secure.encrypt",
                        anchor=f"{function.name}/func.return",
                        analysis="taint",
                    )
        elif op.name == "kernel.store" and len(op.operands) >= 2:
            stored, target = op.operands[0], op.operands[1]
            labels = labels_of(stored)
            if not labels or not target.is_block_argument:
                continue  # spills to local scratch are fine
            if protected or id(stored) in guarded:
                continue
            rendered = ", ".join(sorted(labels))
            diagnostics.error(
                "SEC002",
                f"value tainted by [{rendered}] is stored to "
                f"caller-visible memory %{target.name} of "
                f"{function.name!r} without protection",
                anchor=f"{function.name}/kernel.store",
                analysis="taint",
            )
    return diagnostics


def check_pipeline_taint(
    module: Module,
    pipeline_op: Operation,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Propagate source sensitivity through a workflow.pipeline op."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    block = pipeline_op.regions[0].blocks[0]
    tainted: Dict[int, FrozenSet[str]] = {}
    for op in block.operations:
        if op.name == "workflow.source":
            sensitivity = op.attr("sensitivity")
            if sensitivity not in _PUBLIC:
                tainted[id(op.results[0])] = frozenset(
                    {f"{op.attr('sym_name')}:{sensitivity}"}
                )
        elif op.name == "workflow.task":
            incoming: FrozenSet[str] = frozenset()
            for operand in op.operands:
                incoming |= tainted.get(id(operand), frozenset())
            if incoming:
                for result in op.results:
                    tainted[id(result)] = incoming
        elif op.name == "workflow.sink":
            incoming = frozenset()
            for operand in op.operands:
                incoming |= tainted.get(id(operand), frozenset())
            if not incoming:
                continue
            rendered = ", ".join(sorted(incoming))
            declared = op.attr("sensitivity")
            sink = op.attr("sym_name", "<sink>")
            if declared == "public":
                diagnostics.error(
                    "SEC004",
                    f"sink {sink!r} is declared public but receives "
                    f"data tainted by [{rendered}]",
                    anchor=f"{pipeline_op.attr('sym_name')}/{sink}",
                    analysis="taint",
                )
            else:
                diagnostics.note(
                    "SEC003",
                    f"sink {sink!r} receives data tainted by "
                    f"[{rendered}]; runtime flow tracking will gate "
                    "its egress",
                    anchor=f"{pipeline_op.attr('sym_name')}/{sink}",
                    analysis="taint",
                )
    return diagnostics


def check_module_taint(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
    annotate: bool = False,
) -> Diagnostics:
    """Static IFT over every function and pipeline of a module."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for function in module.functions():
        check_function_taint(function, diagnostics, annotate=annotate)
    for op in module.body.operations:
        if op.name == "workflow.pipeline":
            check_pipeline_taint(module, op, diagnostics)
    return diagnostics


__all__ = [
    "check_function_taint",
    "check_pipeline_taint",
    "check_module_taint",
    "Severity",
]
