"""Memory-partitioning legality and static bounds checking.

Runs over kernel-form functions (explicit ``kernel.for`` nests with
``kernel.load``/``kernel.store``) and checks, per buffer:

* MEM001 — any access whose affine index expression can fall outside
  the memref's shape (out-of-bounds);
* MEM002 — an explicit ``hw.partition`` directive whose bank count
  cannot serve the unrolled access pattern conflict-free (checked with
  the same cyclic mapping rule the HLS memory planner uses, plus a
  port-count bound);
* MEM003 — a wasteful directive (more banks than elements).

Index expressions are recovered symbolically: constants, loop
induction variables and ``addi``/``subi``/``muli`` combinations form
affine functions whose min/max over the loop ranges are exact. Non-
affine indices fall back to the interval facts of
:mod:`repro.core.analysis.absint` when available: their inferred
dependence sets place them under the right loop for the MEM002
port-demand check, and their value ranges are checked by MEM004 —
only a fully-unknown index remains a dynamic-check concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Operation, Value
from repro.core.ir.types import MemRefType


@dataclass
class LoopInfo:
    """Range and directives of one kernel.for."""

    op: Operation
    lower: int
    upper: int
    step: int
    depth: int

    @property
    def last(self) -> int:
        """Largest induction value actually taken."""
        if self.upper <= self.lower:
            return self.lower
        trips = (self.upper - self.lower - 1) // self.step
        return self.lower + trips * self.step

    @property
    def unroll(self) -> int:
        """Unroll directive (1 when absent)."""
        return int(self.op.attr("unroll", 1) or 1)


@dataclass
class Affine:
    """offset + sum(coefficient * induction_var)."""

    offset: int = 0
    terms: Dict[int, int] = field(default_factory=dict)

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for key, coefficient in other.terms.items():
            terms[key] = terms.get(key, 0) + coefficient
        return Affine(self.offset + other.offset, terms)

    def scale(self, factor: int) -> "Affine":
        return Affine(
            self.offset * factor,
            {key: coefficient * factor
             for key, coefficient in self.terms.items()},
        )

    def bounds(self, loops: Dict[int, LoopInfo]) -> Tuple[int, int]:
        """(min, max) over the ranges of the referenced loops."""
        low = high = self.offset
        for key, coefficient in self.terms.items():
            info = loops[key]
            values = (coefficient * info.lower, coefficient * info.last)
            low += min(values)
            high += max(values)
        return low, high


def _collect_loops(function: Function) -> Dict[int, LoopInfo]:
    """Map id(induction var) -> LoopInfo for every kernel.for."""
    loops: Dict[int, LoopInfo] = {}

    def visit(op: Operation, depth: int) -> None:
        if op.name == "kernel.for":
            block = op.regions[0].blocks[0]
            if block.arguments:
                loops[id(block.arguments[0])] = LoopInfo(
                    op=op,
                    lower=int(op.attr("lower", 0)),
                    upper=int(op.attr("upper", 0)),
                    step=int(op.attr("step", 1)),
                    depth=depth,
                )
            depth += 1
        for region in op.regions:
            for block in region.blocks:
                for inner in block.operations:
                    visit(inner, depth)

    for block in function.body.blocks:
        for op in block.operations:
            visit(op, 0)
    return loops


def _affine_of(value: Value,
               loops: Dict[int, LoopInfo]) -> Optional[Affine]:
    """Recover an affine expression for an index value, or None."""
    if id(value) in loops:
        return Affine(0, {id(value): 1})
    producer = value.producer
    if producer is None:
        return None
    if producer.name == "kernel.const":
        raw = producer.attr("value")
        if isinstance(raw, (int, float)) and int(raw) == raw:
            return Affine(int(raw), {})
        return None
    if producer.name in ("kernel.addi", "kernel.subi"):
        lhs = _affine_of(producer.operands[0], loops)
        rhs = _affine_of(producer.operands[1], loops)
        if lhs is None or rhs is None:
            return None
        if producer.name == "kernel.subi":
            rhs = rhs.scale(-1)
        return lhs.add(rhs)
    if producer.name == "kernel.muli":
        lhs = _affine_of(producer.operands[0], loops)
        rhs = _affine_of(producer.operands[1], loops)
        if lhs is None or rhs is None:
            return None
        if not lhs.terms:
            return rhs.scale(lhs.offset)
        if not rhs.terms:
            return lhs.scale(rhs.offset)
        return None
    return None


@dataclass
class Access:
    """One load/store against a buffer, with recovered indices."""

    op: Operation
    buffer: Value
    memref: MemRefType
    indices: List[Optional[Affine]]

    def flat(self) -> Optional[Affine]:
        """Row-major linearized address expression."""
        total = Affine(0, {})
        stride = 1
        for dimension, index in zip(
            reversed(self.memref.shape), reversed(self.indices)
        ):
            if index is None:
                return None
            total = total.add(index.scale(stride))
            stride *= dimension
        return total


def _collect_accesses(function: Function,
                      loops: Dict[int, LoopInfo]) -> List[Access]:
    accesses: List[Access] = []
    for op in function.walk():
        if op.name == "kernel.load":
            buffer, indices = op.operands[0], op.operands[1:]
        elif op.name == "kernel.store":
            buffer, indices = op.operands[1], op.operands[2:]
        else:
            continue
        memref = buffer.type
        if not isinstance(memref, MemRefType):
            continue
        accesses.append(Access(
            op=op,
            buffer=buffer,
            memref=memref,
            indices=[_affine_of(index, loops) for index in indices],
        ))
    return accesses


def _innermost_loop(
    access: Access,
    loops: Dict[int, LoopInfo],
    op_vars: Optional[Dict[int, frozenset]] = None,
) -> Optional[LoopInfo]:
    """Deepest loop whose induction var the access references.

    Affine term sets are used when recovered; otherwise the interval
    facts' dependence sets (``op_vars``) answer for non-affine indices
    such as ``i*i``.
    """
    best: Optional[LoopInfo] = None
    for index in access.indices:
        if index is None:
            continue
        for key in index.terms:
            info = loops[key]
            if best is None or info.depth > best.depth:
                best = info
    if best is None and op_vars is not None:
        for key in op_vars.get(id(access.op), ()):  # absint dependence
            info = loops.get(key)
            if info is not None and (
                best is None or info.depth > best.depth
            ):
                best = info
    return best


def _check_bounds(function: Function, accesses: List[Access],
                  loops: Dict[int, LoopInfo],
                  diagnostics: Diagnostics) -> None:
    for access in accesses:
        for dimension, index in zip(access.memref.shape, access.indices):
            if index is None:
                continue
            low, high = index.bounds(loops)
            if low < 0 or high >= dimension:
                diagnostics.error(
                    "MEM001",
                    f"{access.op.name} on %{access.buffer.name} indexes "
                    f"[{low}, {high}] outside dimension of size "
                    f"{dimension}",
                    anchor=f"{function.name}/{access.op.name}",
                    analysis="partition",
                )


def _partition_directives(
    function: Function,
) -> Dict[int, Tuple[Operation, str, int]]:
    directives: Dict[int, Tuple[Operation, str, int]] = {}
    for op in function.walk():
        if op.name == "hw.partition" and op.operands:
            directives[id(op.operands[0])] = (
                op, str(op.attr("scheme")), int(op.attr("factor", 1))
            )
    return directives


def _check_partitions(function: Function, accesses: List[Access],
                      loops: Dict[int, LoopInfo],
                      diagnostics: Diagnostics,
                      op_vars: Optional[Dict[int, frozenset]] = None,
                      ) -> None:
    # deferred: hls.memory pulls in the CDFG machinery, which imports
    # the IR package this analysis is reachable from (verifier)
    from repro.core.hls.memory import (
        PORTS_PER_BANK,
        cyclic_conflict_free,
    )

    directives = _partition_directives(function)
    if not directives:
        return
    by_buffer: Dict[int, List[Access]] = {}
    for access in accesses:
        by_buffer.setdefault(id(access.buffer), []).append(access)

    for key, (op, scheme, factor) in directives.items():
        buffer = op.operands[0]
        memref = buffer.type
        if not isinstance(memref, MemRefType):
            continue
        if factor > memref.num_elements:
            diagnostics.warning(
                "MEM003",
                f"partition factor {factor} exceeds the "
                f"{memref.num_elements} elements of %{buffer.name}",
                anchor=f"{function.name}/hw.partition",
                analysis="partition",
            )
        if scheme == "complete":
            continue
        buffer_accesses = by_buffer.get(key, [])
        if not buffer_accesses:
            continue
        # group accesses by the loop they unroll under
        by_loop: Dict[int, List[Access]] = {}
        loop_for_group: Dict[int, LoopInfo] = {}
        for access in buffer_accesses:
            info = _innermost_loop(access, loops, op_vars)
            if info is not None and info.unroll > 1:
                by_loop.setdefault(id(info.op), []).append(access)
                loop_for_group[id(info.op)] = info
        for group_key, grouped in by_loop.items():
            info = loop_for_group[group_key]
            unroll = info.unroll
            ports = factor * PORTS_PER_BANK
            demanded = len(grouped) * unroll
            if demanded > ports:
                diagnostics.warning(
                    "MEM002",
                    f"%{buffer.name}: {len(grouped)} accesses x unroll "
                    f"{unroll} need {demanded} ports but {scheme} "
                    f"partition factor {factor} provides {ports}",
                    anchor=f"{function.name}/hw.partition",
                    analysis="partition",
                )
                continue
            if scheme != "cyclic":
                continue
            offsets: List[int] = []
            stride: Optional[int] = None
            affine_ok = True
            for access in grouped:
                flat = access.flat()
                if flat is None:
                    affine_ok = False
                    break
                ivar = id(info.op.regions[0].blocks[0].arguments[0])
                offsets.append(flat.offset)
                coefficient = flat.terms.get(ivar, 0) * info.step
                if stride is None:
                    stride = coefficient
                elif stride != coefficient:
                    affine_ok = False
                    break
            if not affine_ok or stride is None:
                continue
            if not cyclic_conflict_free(offsets, stride, unroll, factor):
                diagnostics.warning(
                    "MEM002",
                    f"%{buffer.name}: cyclic partition factor {factor} "
                    f"maps unrolled accesses (stride {stride}, offsets "
                    f"{sorted(offsets)}) onto colliding banks",
                    anchor=f"{function.name}/hw.partition",
                    analysis="partition",
                )


def check_function_partitioning(
    function: Function,
    diagnostics: Optional[Diagnostics] = None,
    facts=None,
) -> Diagnostics:
    """Bounds + partition-legality checks for one function.

    ``facts`` is an optional
    :class:`~repro.core.analysis.absint.FunctionFacts`: its dependence
    sets extend the MEM002 bank-conflict check to accesses whose
    indices are not syntactically affine.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    if function.is_declaration:
        return diagnostics
    loops = _collect_loops(function)
    accesses = _collect_accesses(function, loops)
    if not accesses:
        return diagnostics
    op_vars = facts.op_vars if facts is not None else None
    _check_bounds(function, accesses, loops, diagnostics)
    _check_partitions(function, accesses, loops, diagnostics,
                      op_vars=op_vars)
    return diagnostics


def check_module_partitioning(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
    facts=None,
) -> Diagnostics:
    """Partition-legality checks for every function of a module.

    ``facts`` is an optional
    :class:`~repro.core.analysis.absint.AnalysisFacts` shared with the
    absint pass (see :func:`repro.core.analysis.analyze_module`).
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for function in module.functions():
        function_facts = (
            facts.function(function.name) if facts is not None else None
        )
        check_function_partitioning(function, diagnostics,
                                    facts=function_facts)
    return diagnostics
