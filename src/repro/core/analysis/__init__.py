"""Compile-time static analysis for the EVEREST SDK.

A unified diagnostics layer (:mod:`.diagnostics`), a generic dataflow
fixpoint engine (:mod:`.dataflow`) and the concrete analyses built on
them:

* :mod:`.taint` — static information-flow tracking against the
  ``secure`` dialect's policies;
* :mod:`.partition` — memory-partition legality and static bounds
  checking for kernel-form functions;
* :mod:`.absint` — interval abstract interpretation: value ranges for
  non-affine indices (MEM004), statically-dead constructs (LINT004)
  and interprocedural shape/dtype contracts (WF010/WF011), exposed as
  a reusable :class:`~repro.core.analysis.absint.AnalysisFacts`;
* :mod:`.perf` — static performance analysis: analytic work/traffic/II
  lower bounds (:class:`~repro.core.analysis.perf.StaticBounds`),
  PERF001-PERF005 diagnostics and the bound oracle the DSE explorer
  uses for bound-guided pruning;
* :mod:`.lints` — dead values, unreachable blocks, unused functions;
* :mod:`.wfcheck` — workflow-DAG structural linting;
* :mod:`.concurrency` — static race (RACE001-004) and deadlock
  (DL001-003) detection over workflow plans and resource specs.

:func:`analyze_module` is the one-call entry point used by the
compiler's pre-DSE gate and the ``repro lint`` CLI; each selected
pass runs under its own tracer span (category
:data:`ANALYSIS_CATEGORY`) so the gate shows up in Chrome traces like
the compiler and DSE phases do. :func:`analyze_module_cached` is the
incremental variant, memoized through
:mod:`repro.core.analysis.cache` keyed by the module's content digest.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.analysis.absint import (
    ANALYSIS_VERSION,
    AnalysisFacts,
    FunctionFacts,
    Interval,
    check_module_contracts,
    check_module_ranges,
    compute_facts,
    compute_function_facts,
    function_facts,
    partition_conflict,
)

from repro.core.analysis.dataflow import (
    BackwardAnalysis,
    DataflowAnalysis,
    DataflowState,
    FlagLattice,
    ForwardAnalysis,
    Lattice,
    Liveness,
    SetLattice,
    TaintPropagation,
)
from repro.core.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Diagnostics,
    Severity,
    raise_if_errors,
)
from repro.core.analysis.concurrency import (
    CONCURRENCY_CHECKS,
    ConcurrencyTask,
    ResourceSpec,
    analyze_concurrency,
    check_pipeline_concurrency,
    check_task_graph_concurrency,
    concurrency_from_task_graph,
    lint_concurrency_spec,
)
from repro.core.analysis.lints import check_module_lints
from repro.core.analysis.partition import check_module_partitioning
from repro.core.analysis.perf import (
    StaticBounds,
    bound_for,
    check_module_perf,
    compute_kernel_bounds,
    kernel_bounds,
)
from repro.core.analysis.taint import (
    check_function_taint,
    check_module_taint,
    check_pipeline_taint,
)
from repro.core.analysis.wfcheck import (
    TaskSpec,
    WorkerSpec,
    lint_task_graph,
    lint_workflow,
    lint_workflow_spec,
)

#: Names accepted by ``analyze_module(checks=...)`` / ``--only``.
ALL_CHECKS = ("taint", "partition", "lint", "absint", "shapes", "perf")

#: Tracer category for per-analysis-pass spans.
ANALYSIS_CATEGORY = "analysis.pass"


def analyze_module(
    module,
    diagnostics: Optional[Diagnostics] = None,
    checks: Optional[Iterable[str]] = None,
    annotate: bool = False,
    facts: Optional[AnalysisFacts] = None,
) -> Diagnostics:
    """Run the IR analyses over a module; returns the diagnostics.

    ``checks`` restricts the run to a subset of :data:`ALL_CHECKS`;
    ``annotate`` additionally records taint labels on the IR (see
    :func:`~repro.core.analysis.taint.check_function_taint`). Pass
    precomputed ``facts`` to skip the abstract-interpretation sweep
    the partition and absint checks share.
    """
    from repro.obs import current_tracer

    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    selected = set(checks) if checks is not None else set(ALL_CHECKS)
    unknown = selected - set(ALL_CHECKS)
    if unknown:
        raise ValueError(
            f"unknown checks {sorted(unknown)}; "
            f"expected a subset of {list(ALL_CHECKS)}"
        )
    tracer = current_tracer()
    if facts is None and selected & {"partition", "absint", "perf"}:
        with tracer.span("analysis:facts", category=ANALYSIS_CATEGORY):
            facts = compute_facts(module)
    if "taint" in selected:
        with tracer.span("analysis:taint", category=ANALYSIS_CATEGORY):
            check_module_taint(module, diagnostics, annotate=annotate)
    if "partition" in selected:
        with tracer.span("analysis:partition",
                         category=ANALYSIS_CATEGORY):
            check_module_partitioning(module, diagnostics, facts=facts)
    if "lint" in selected:
        with tracer.span("analysis:lint", category=ANALYSIS_CATEGORY):
            check_module_lints(module, diagnostics)
    if "absint" in selected:
        with tracer.span("analysis:absint", category=ANALYSIS_CATEGORY):
            check_module_ranges(module, diagnostics, facts=facts)
    if "shapes" in selected:
        with tracer.span("analysis:shapes", category=ANALYSIS_CATEGORY):
            check_module_contracts(module, diagnostics)
    if "perf" in selected:
        with tracer.span("analysis:perf", category=ANALYSIS_CATEGORY):
            check_module_perf(module, diagnostics, facts=facts)
    return diagnostics


def analyze_module_cached(
    module,
    checks: Optional[Iterable[str]] = None,
    annotate: bool = False,
    digest: Optional[str] = None,
    cache=None,
) -> Tuple[Diagnostics, Optional[AnalysisFacts], bool]:
    """Digest-memoized :func:`analyze_module`.

    Returns ``(diagnostics, facts, hit)``. Results are keyed by the
    module's content digest plus the analysis version, so a structural
    change — or an analysis upgrade — always recomputes; a warm hit
    replays the stored diagnostics and facts without touching the IR.
    Cache traffic is published to the ambient metrics registry as
    ``analysis.cache_hits`` / ``analysis.cache_misses``.
    """
    from repro.core.analysis.cache import AnalysisCache, analysis_cache
    from repro.core.ir.digest import module_digest
    from repro.obs import current_metrics

    cache = cache if cache is not None else analysis_cache()
    selected = tuple(sorted(set(checks) if checks is not None
                            else set(ALL_CHECKS)))
    if digest is None:
        digest = module_digest(module)
    key = AnalysisCache.module_key(digest, selected, annotate)
    metrics = current_metrics()
    payload = cache.get(key)
    if payload is not None:
        metrics.counter(
            "analysis.cache_hits", "analysis cache hits",
        ).inc(1, layer="module")
        return (
            Diagnostics.from_dicts(payload.get("diagnostics", [])),
            AnalysisFacts.from_payload(payload.get("facts", {})),
            True,
        )
    metrics.counter(
        "analysis.cache_misses", "analysis cache misses",
    ).inc(1, layer="module")
    facts = compute_facts(module)
    diagnostics = analyze_module(
        module, checks=selected, annotate=annotate, facts=facts,
    )
    cache.put(key, {
        "diagnostics": [item.to_dict() for item in diagnostics],
        "facts": facts.to_payload(),
    })
    return diagnostics, facts, False


__all__ = [
    "ALL_CHECKS",
    "ANALYSIS_CATEGORY",
    "ANALYSIS_VERSION",
    "AnalysisFacts",
    "FunctionFacts",
    "Interval",
    "analyze_module_cached",
    "check_module_contracts",
    "check_module_ranges",
    "compute_facts",
    "compute_function_facts",
    "function_facts",
    "partition_conflict",
    "BackwardAnalysis",
    "CODES",
    "CONCURRENCY_CHECKS",
    "ConcurrencyTask",
    "ResourceSpec",
    "analyze_concurrency",
    "check_pipeline_concurrency",
    "check_task_graph_concurrency",
    "concurrency_from_task_graph",
    "lint_concurrency_spec",
    "DataflowAnalysis",
    "DataflowState",
    "Diagnostic",
    "Diagnostics",
    "FlagLattice",
    "ForwardAnalysis",
    "Lattice",
    "Liveness",
    "SetLattice",
    "Severity",
    "StaticBounds",
    "TaintPropagation",
    "TaskSpec",
    "WorkerSpec",
    "analyze_module",
    "bound_for",
    "check_function_taint",
    "check_module_lints",
    "check_module_partitioning",
    "check_module_perf",
    "check_module_taint",
    "compute_kernel_bounds",
    "kernel_bounds",
    "check_pipeline_taint",
    "lint_task_graph",
    "lint_workflow",
    "lint_workflow_spec",
    "raise_if_errors",
]
