"""Compile-time static analysis for the EVEREST SDK.

A unified diagnostics layer (:mod:`.diagnostics`), a generic dataflow
fixpoint engine (:mod:`.dataflow`) and the concrete analyses built on
them:

* :mod:`.taint` — static information-flow tracking against the
  ``secure`` dialect's policies;
* :mod:`.partition` — memory-partition legality and static bounds
  checking for kernel-form functions;
* :mod:`.lints` — dead values, unreachable blocks, unused functions;
* :mod:`.wfcheck` — workflow-DAG structural linting;
* :mod:`.concurrency` — static race (RACE001-004) and deadlock
  (DL001-003) detection over workflow plans and resource specs.

:func:`analyze_module` is the one-call entry point used by the
compiler's pre-DSE gate and the ``repro lint`` CLI.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.analysis.dataflow import (
    BackwardAnalysis,
    DataflowAnalysis,
    DataflowState,
    FlagLattice,
    ForwardAnalysis,
    Lattice,
    Liveness,
    SetLattice,
    TaintPropagation,
)
from repro.core.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Diagnostics,
    Severity,
    raise_if_errors,
)
from repro.core.analysis.concurrency import (
    CONCURRENCY_CHECKS,
    ConcurrencyTask,
    ResourceSpec,
    analyze_concurrency,
    check_pipeline_concurrency,
    check_task_graph_concurrency,
    concurrency_from_task_graph,
    lint_concurrency_spec,
)
from repro.core.analysis.lints import check_module_lints
from repro.core.analysis.partition import check_module_partitioning
from repro.core.analysis.taint import (
    check_function_taint,
    check_module_taint,
    check_pipeline_taint,
)
from repro.core.analysis.wfcheck import (
    TaskSpec,
    WorkerSpec,
    lint_task_graph,
    lint_workflow,
    lint_workflow_spec,
)

#: Names accepted by ``analyze_module(checks=...)`` / ``--only``.
ALL_CHECKS = ("taint", "partition", "lint")


def analyze_module(
    module,
    diagnostics: Optional[Diagnostics] = None,
    checks: Optional[Iterable[str]] = None,
    annotate: bool = False,
) -> Diagnostics:
    """Run the IR analyses over a module; returns the diagnostics.

    ``checks`` restricts the run to a subset of :data:`ALL_CHECKS`;
    ``annotate`` additionally records taint labels on the IR (see
    :func:`~repro.core.analysis.taint.check_function_taint`).
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    selected = set(checks) if checks is not None else set(ALL_CHECKS)
    unknown = selected - set(ALL_CHECKS)
    if unknown:
        raise ValueError(
            f"unknown checks {sorted(unknown)}; "
            f"expected a subset of {list(ALL_CHECKS)}"
        )
    if "taint" in selected:
        check_module_taint(module, diagnostics, annotate=annotate)
    if "partition" in selected:
        check_module_partitioning(module, diagnostics)
    if "lint" in selected:
        check_module_lints(module, diagnostics)
    return diagnostics


__all__ = [
    "ALL_CHECKS",
    "BackwardAnalysis",
    "CODES",
    "CONCURRENCY_CHECKS",
    "ConcurrencyTask",
    "ResourceSpec",
    "analyze_concurrency",
    "check_pipeline_concurrency",
    "check_task_graph_concurrency",
    "concurrency_from_task_graph",
    "lint_concurrency_spec",
    "DataflowAnalysis",
    "DataflowState",
    "Diagnostic",
    "Diagnostics",
    "FlagLattice",
    "ForwardAnalysis",
    "Lattice",
    "Liveness",
    "SetLattice",
    "Severity",
    "TaintPropagation",
    "TaskSpec",
    "WorkerSpec",
    "analyze_module",
    "check_function_taint",
    "check_module_lints",
    "check_module_partitioning",
    "check_module_taint",
    "check_pipeline_taint",
    "lint_task_graph",
    "lint_workflow",
    "lint_workflow_spec",
    "raise_if_errors",
]
