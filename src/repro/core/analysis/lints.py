"""Generic IR lints: dead values, unreachable blocks, unused functions.

These are warnings, not errors — the module is still executable — but
they catch the classic symptoms of a buggy rewrite (a fused loop whose
original ops were left behind, a kernel nobody calls after a rename)
before any time is spent exploring variants for them.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.analysis.dataflow import Liveness
from repro.core.analysis.diagnostics import Diagnostics
from repro.core.ir.dialects import op_is_pure
from repro.core.ir.module import Function, Module


def check_dead_values(
    function: Function,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """LINT001: pure ops whose results never feed an effect."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    if function.is_declaration:
        return diagnostics
    liveness = Liveness()
    state = liveness.run(function)
    for op in function.walk():
        if not op.results or not op_is_pure(op):
            continue
        if any(state.get(result) for result in op.results):
            continue
        diagnostics.warning(
            "LINT001",
            f"result of {op.name} is never used "
            f"(%{op.results[0].name})",
            anchor=f"{function.name}/{op.name}",
            analysis="lint",
        )
    return diagnostics


def check_unreachable_blocks(
    function: Function,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """LINT002: non-entry blocks (the IR has no branch ops)."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for op in [function.op, *function.walk()]:
        for region in op.regions:
            for index, block in enumerate(region.blocks):
                if index == 0:
                    continue
                diagnostics.warning(
                    "LINT002",
                    f"block ^bb{index} of {op.name} is unreachable "
                    "(no control flow targets it)",
                    anchor=f"{function.name}/{op.name}",
                    analysis="lint",
                )
    return diagnostics


def _referenced_symbols(module: Module) -> Set[str]:
    """Function names referenced by tasks, calls or hw markers."""
    referenced: Set[str] = set()
    for op in module.walk():
        if op.name in ("workflow.task", "hw.accelerator", "kernel.call"):
            kernel = op.attr("kernel") or op.attr("callee")
            if isinstance(kernel, str):
                referenced.add(kernel)
    return referenced


def check_unused_functions(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """LINT003: functions nothing references (when anything does).

    Modules without any workflow/call structure are treated as kernel
    libraries where every function is a public entry point.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    referenced = _referenced_symbols(module)
    if not referenced:
        return diagnostics
    for function in module.functions():
        if function.name not in referenced:
            diagnostics.warning(
                "LINT003",
                f"function {function.name!r} is never referenced by "
                "any task, call or accelerator marker",
                anchor=function.name,
                analysis="lint",
            )
    return diagnostics


def check_module_lints(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """All lints over a module."""
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for function in module.functions():
        check_dead_values(function, diagnostics)
        check_unreachable_blocks(function, diagnostics)
    check_unused_functions(module, diagnostics)
    return diagnostics
