"""Static concurrency analysis: races, deadlocks, nondeterminism.

The workflow runtime schedules any tasks with no dependency path
between them concurrently, so every pair of *unordered* accesses to a
shared :class:`~repro.workflow.graph.DataObject` is a potential race,
and every circular resource-acquisition pattern between unordered
tasks is a potential deadlock. Following the static half of the
RacerD / ThreadSanitizer split, this module proves hazards *possible*
over the plan alone; the dynamic half
(:mod:`repro.sanitize`) confirms them on a concrete schedule.

Race checks (all over the happens-before skeleton induced by
producer -> consumer dependency edges):

* RACE001 — two unordered tasks both write one object (lost update);
* RACE002 — a task reads an object an unordered task writes;
* RACE003 — a task reads several objects that one unordered task
  writes: even atomic per-object accesses can observe a torn
  multi-object state;
* RACE004 — a task declared ``order_sensitive`` consumes the outputs
  of unordered producers with equal static priority (b-level): the
  scheduler's tie-break decides the observable result.

Deadlock checks (against declared :class:`ResourceSpec` capacities;
tasks acquire the units of their ``acquires`` list in order, one unit
per simulator request, and hold everything until they finish):

* DL001 — the resource-allocation-order graph has a cycle whose edges
  come from at least two unordered tasks (lock-order inversion);
* DL002 — a request names an unknown resource or more units than the
  resource's total capacity: it can never be granted;
* DL003 — a set of mutually-unordered tasks can each hold part of a
  resource while waiting for the rest: possible when
  ``sum(need_i - 1) >= capacity`` (generalized dining philosophers).

Use :func:`analyze_concurrency` over explicit specs,
:func:`check_task_graph_concurrency` over a built
:class:`~repro.workflow.graph.TaskGraph`,
:func:`lint_concurrency_spec` over JSON workflow specs (the ``repro
lint`` path) and :func:`check_pipeline_concurrency` inside the
compiler's pre-DSE gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.analysis.diagnostics import Diagnostics

#: Check names accepted by ``analyze_concurrency(checks=...)``.
CONCURRENCY_CHECKS = ("race", "dl")


@dataclass(frozen=True)
class ResourceSpec:
    """One contended platform resource with a finite capacity."""

    name: str
    capacity: int = 1


@dataclass
class ConcurrencyTask:
    """One task as the concurrency analyzer sees it.

    ``reads``/``writes`` are object names; ``updates`` are objects the
    task reads *and* rewrites in place (so it both depends on the
    object's producer and conflicts with every other toucher).
    ``acquires`` is the ordered list of ``(resource, units)``
    acquisitions the task performs before running.
    """

    name: str
    reads: List[str] = field(default_factory=list)
    writes: List[str] = field(default_factory=list)
    updates: List[str] = field(default_factory=list)
    acquires: List[Tuple[str, int]] = field(default_factory=list)
    duration_s: float = 1e-3
    order_sensitive: bool = False

    def all_writes(self) -> List[str]:
        """Objects this task writes (produced or updated in place)."""
        return list(self.writes) + list(self.updates)

    def all_reads(self) -> List[str]:
        """Objects this task reads (consumed or updated in place)."""
        return list(self.reads) + list(self.updates)


# ----------------------------------------------------------------------
# happens-before skeleton
# ----------------------------------------------------------------------


class _Order:
    """Reachability over the dependency edges of a task set."""

    def __init__(self, tasks: Sequence[ConcurrencyTask]):
        self.tasks = {task.name: task for task in tasks}
        producer: Dict[str, str] = {}
        for task in tasks:
            for obj in task.writes:
                producer.setdefault(obj, task.name)
        edges: Dict[str, Set[str]] = {task.name: set() for task in tasks}
        for task in tasks:
            for obj in task.all_reads():
                upstream = producer.get(obj)
                if upstream is not None and upstream != task.name:
                    edges[upstream].add(task.name)
        self.edges = edges
        self.producer = producer
        self._descendants: Dict[str, Set[str]] = {}
        for name in edges:
            seen: Set[str] = set()
            frontier = list(edges[name])
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(edges.get(node, ()))
            self._descendants[name] = seen

    def ordered(self, a: str, b: str) -> bool:
        """True when a dependency path orders the two tasks."""
        return (
            b in self._descendants.get(a, ())
            or a in self._descendants.get(b, ())
        )

    def unordered(self, a: str, b: str) -> bool:
        """True when the tasks may run concurrently."""
        return a != b and not self.ordered(a, b)

    def b_levels(self) -> Dict[str, float]:
        """Static priority: longest downstream path per task."""
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for successor in sorted(self.edges.get(node, ())):
                if state.get(successor, 0) == 0:
                    visit(successor)
            state[node] = 2
            order.append(node)

        for name in sorted(self.edges):
            if state.get(name, 0) == 0:
                visit(name)
        levels: Dict[str, float] = {}
        for name in order:  # reverse-topological emission order
            consumer_level = max(
                (levels[successor]
                 for successor in self.edges.get(name, ())
                 if successor in levels),
                default=0.0,
            )
            levels[name] = self.tasks[name].duration_s + consumer_level
        return levels


# ----------------------------------------------------------------------
# race checks
# ----------------------------------------------------------------------


def _check_races(
    tasks: Sequence[ConcurrencyTask],
    order: _Order,
    name: str,
    diagnostics: Diagnostics,
) -> None:
    writers: Dict[str, List[str]] = {}
    readers: Dict[str, List[str]] = {}
    for task in tasks:
        for obj in task.all_writes():
            writers.setdefault(obj, []).append(task.name)
        for obj in task.reads:
            readers.setdefault(obj, []).append(task.name)

    # RACE001: unordered write-write pairs per object.
    for obj in sorted(writers):
        names = writers[obj]
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if order.unordered(a, b):
                    first, second = sorted((a, b))
                    diagnostics.error(
                        "RACE001",
                        f"tasks {first!r} and {second!r} both write "
                        f"{obj!r} with no dependency path between "
                        f"them: last writer wins",
                        anchor=f"{name}/{obj}",
                        analysis="concurrency",
                    )

    # RACE002: unordered read-write pairs per object.
    for obj in sorted(writers):
        for reader in readers.get(obj, ()):
            task = order.tasks[reader]
            if obj in task.updates:
                continue  # updater vs writer is RACE001
            for writer in writers[obj]:
                if order.unordered(writer, reader):
                    diagnostics.error(
                        "RACE002",
                        f"task {reader!r} reads {obj!r} while "
                        f"unordered task {writer!r} writes it",
                        anchor=f"{name}/{obj}",
                        analysis="concurrency",
                    )

    # RACE003: one unordered writer covering >= 2 of a task's reads.
    for task in sorted(tasks, key=lambda t: t.name):
        read_set = set(task.reads)
        for other in sorted(tasks, key=lambda t: t.name):
            if not order.unordered(task.name, other.name):
                continue
            torn = sorted(read_set.intersection(other.all_writes()))
            if len(torn) >= 2:
                diagnostics.error(
                    "RACE003",
                    f"task {task.name!r} reads {torn} which unordered "
                    f"task {other.name!r} writes: a torn multi-object "
                    f"state is observable",
                    anchor=f"{name}/{task.name}",
                    analysis="concurrency",
                )

    # RACE004: order-sensitive consumers of tied unordered producers.
    levels = order.b_levels()
    for task in sorted(tasks, key=lambda t: t.name):
        if not task.order_sensitive:
            continue
        producers = sorted({
            order.producer[obj]
            for obj in task.all_reads()
            if obj in order.producer
            and order.producer[obj] != task.name
        })
        for i, a in enumerate(producers):
            for b in producers[i + 1:]:
                if (
                    order.unordered(a, b)
                    and abs(levels[a] - levels[b]) < 1e-12
                ):
                    diagnostics.error(
                        "RACE004",
                        f"order-sensitive task {task.name!r} consumes "
                        f"unordered producers {a!r} and {b!r} with "
                        f"equal priority: the scheduler tie-break "
                        f"decides the result",
                        anchor=f"{name}/{task.name}",
                        analysis="concurrency",
                    )


# ----------------------------------------------------------------------
# deadlock checks
# ----------------------------------------------------------------------


def _check_deadlocks(
    tasks: Sequence[ConcurrencyTask],
    resources: Sequence[ResourceSpec],
    order: _Order,
    name: str,
    diagnostics: Diagnostics,
) -> None:
    capacities = {spec.name: spec.capacity for spec in resources}

    # DL002: unsatisfiable requests.
    for task in sorted(tasks, key=lambda t: t.name):
        need: Dict[str, int] = {}
        for resource, units in task.acquires:
            need[resource] = need.get(resource, 0) + units
        for resource in sorted(need):
            if resource not in capacities:
                diagnostics.error(
                    "DL002",
                    f"task {task.name!r} acquires undeclared resource "
                    f"{resource!r}: the request can never be granted",
                    anchor=f"{name}/{task.name}",
                    analysis="concurrency",
                )
            elif need[resource] > capacities[resource]:
                diagnostics.error(
                    "DL002",
                    f"task {task.name!r} needs {need[resource]} units "
                    f"of {resource!r} but its capacity is "
                    f"{capacities[resource]}: permanent stall",
                    anchor=f"{name}/{task.name}",
                    analysis="concurrency",
                )

    # DL001: cycles in the resource-allocation-order graph whose edges
    # come from at least two unordered tasks.
    order_edges: Dict[str, Set[str]] = {}
    edge_owners: Dict[Tuple[str, str], Set[str]] = {}
    for task in tasks:
        held = [resource for resource, _units in task.acquires]
        for i, first in enumerate(held):
            for second in held[i + 1:]:
                if first == second:
                    continue
                order_edges.setdefault(first, set()).add(second)
                order_edges.setdefault(second, set())
                edge_owners.setdefault(
                    (first, second), set()
                ).add(task.name)
    cycle = _find_cycle(order_edges)
    if cycle:
        owners: Set[str] = set()
        for first, second in zip(cycle, cycle[1:]):
            owners.update(edge_owners.get((first, second), ()))
        owner_list = sorted(owners)
        concurrent = any(
            order.unordered(a, b)
            for i, a in enumerate(owner_list)
            for b in owner_list[i + 1:]
        )
        if concurrent:
            rendered = " -> ".join(cycle)
            diagnostics.error(
                "DL001",
                f"resource acquisition order {rendered} is circular "
                f"between concurrent tasks {owner_list}: lock-order "
                f"inversion can deadlock",
                anchor=f"{name}/{cycle[0]}",
                analysis="concurrency",
            )

    # DL003: incremental multi-unit exhaustion per resource. A set S
    # of mutually-unordered tasks deadlocks when every unit can be
    # held by a task that still waits: sum(need - 1) >= capacity.
    for resource in sorted(capacities):
        capacity = capacities[resource]
        claimants: List[Tuple[str, int]] = []
        for task in sorted(tasks, key=lambda t: t.name):
            need = sum(
                units for res, units in task.acquires
                if res == resource
            )
            if need >= 2 and need <= capacity:
                claimants.append((task.name, need))
        hazard = _hold_wait_set(claimants, capacity, order)
        if hazard:
            names_, needs = zip(*hazard)
            diagnostics.error(
                "DL003",
                f"concurrent tasks {list(names_)} need "
                f"{list(needs)} units of {resource!r} "
                f"(capacity {capacity}) acquired incrementally: "
                f"partial grants can strand every holder waiting",
                anchor=f"{name}/{resource}",
                analysis="concurrency",
            )


def _hold_wait_set(
    claimants: List[Tuple[str, int]],
    capacity: int,
    order: _Order,
) -> List[Tuple[str, int]]:
    """Smallest-first set of mutually-unordered claimants that can
    strand the resource (``sum(need - 1) >= capacity``), or []."""
    # pairwise first: the most common and easiest-to-explain case
    for i, (a, need_a) in enumerate(claimants):
        for b, need_b in claimants[i + 1:]:
            if (
                order.unordered(a, b)
                and (need_a - 1) + (need_b - 1) >= capacity
            ):
                return [(a, need_a), (b, need_b)]
    # greedy antichain for larger sets
    chosen: List[Tuple[str, int]] = []
    for name, need in claimants:
        if all(order.unordered(name, other) for other, _ in chosen):
            chosen.append((name, need))
    if (
        len(chosen) >= 2
        and sum(need - 1 for _, need in chosen) >= capacity
    ):
        return chosen
    return []


def _find_cycle(edges: Dict[str, Set[str]]) -> List[str]:
    """First cycle in a digraph as ``[n0, n1, ..., n0]`` (or [])."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GRAY
        stack.append(node)
        for successor in sorted(edges.get(node, ())):
            if color.get(successor, WHITE) == GRAY:
                start = stack.index(successor)
                return stack[start:] + [successor]
            if color.get(successor, WHITE) == WHITE:
                found = visit(successor)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return []


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def analyze_concurrency(
    tasks: Sequence[ConcurrencyTask],
    resources: Sequence[ResourceSpec] = (),
    name: str = "workflow",
    diagnostics: Optional[Diagnostics] = None,
    checks: Optional[Iterable[str]] = None,
) -> Diagnostics:
    """Run the race and deadlock checks; returns the diagnostics.

    ``checks`` restricts the run to a subset of
    :data:`CONCURRENCY_CHECKS` (``race``, ``dl``).
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    selected = (
        set(checks) if checks is not None else set(CONCURRENCY_CHECKS)
    )
    unknown = selected - set(CONCURRENCY_CHECKS)
    if unknown:
        raise ValueError(
            f"unknown concurrency checks {sorted(unknown)}; expected a "
            f"subset of {list(CONCURRENCY_CHECKS)}"
        )
    order = _Order(tasks)
    if "race" in selected:
        _check_races(tasks, order, name, diagnostics)
    if "dl" in selected:
        _check_deadlocks(tasks, resources, order, name, diagnostics)
    return diagnostics


def concurrency_from_task_graph(graph) -> List[ConcurrencyTask]:
    """View a built :class:`~repro.workflow.graph.TaskGraph` as
    concurrency tasks; per-task ``acquires`` / ``order_sensitive``
    come from ``WorkflowTask.constraints``."""
    tasks: List[ConcurrencyTask] = []
    for task in graph.tasks.values():
        acquires = [
            (str(resource), int(units))
            for resource, units in task.constraints.get("acquires", ())
        ]
        tasks.append(ConcurrencyTask(
            name=task.name,
            reads=list(task.inputs),
            writes=list(task.outputs),
            updates=list(getattr(task, "updates", ())),
            acquires=acquires,
            duration_s=task.duration_s,
            order_sensitive=bool(
                task.constraints.get("order_sensitive", False)
            ),
        ))
    return tasks


def check_task_graph_concurrency(
    graph,
    resources: Sequence[ResourceSpec] = (),
    diagnostics: Optional[Diagnostics] = None,
    checks: Optional[Iterable[str]] = None,
) -> Diagnostics:
    """Concurrency-lint a built task graph."""
    return analyze_concurrency(
        concurrency_from_task_graph(graph),
        resources,
        name=getattr(graph, "name", "workflow"),
        diagnostics=diagnostics,
        checks=checks,
    )


def _acquires_from_spec(entries) -> List[Tuple[str, int]]:
    acquires: List[Tuple[str, int]] = []
    for entry in entries or ():
        if isinstance(entry, dict):
            acquires.append((
                str(entry.get("resource", "")),
                int(entry.get("units", 1)),
            ))
        else:
            resource, units = entry[0], (
                entry[1] if len(entry) > 1 else 1
            )
            acquires.append((str(resource), int(units)))
    return acquires


def lint_concurrency_spec(
    spec: Dict,
    diagnostics: Optional[Diagnostics] = None,
    checks: Optional[Iterable[str]] = None,
) -> Diagnostics:
    """Concurrency-lint a JSON-style workflow description.

    Beyond the shape :func:`~repro.core.analysis.wfcheck.
    lint_workflow_spec` accepts, tasks may declare ``updates`` (object
    names rewritten in place), ``acquires`` (ordered
    ``[["resource", units], ...]`` or ``[{"resource": ..., "units":
    ...}]``) and ``order_sensitive``; a top-level ``resources`` list
    (``[{"name": ..., "capacity": ...}]``) declares capacities.
    """
    tasks = [
        ConcurrencyTask(
            name=str(entry.get("name", f"task{index}")),
            reads=[str(item) for item in entry.get("inputs", [])],
            writes=[str(item) for item in entry.get("outputs", [])],
            updates=[str(item) for item in entry.get("updates", [])],
            acquires=_acquires_from_spec(entry.get("acquires")),
            duration_s=float(entry.get("duration_s", 1e-3)),
            order_sensitive=bool(entry.get("order_sensitive", False)),
        )
        for index, entry in enumerate(spec.get("tasks", []))
    ]
    resources = [
        ResourceSpec(
            name=str(entry.get("name", f"r{index}")),
            capacity=int(entry.get("capacity", 1)),
        )
        for index, entry in enumerate(spec.get("resources", []))
    ]
    return analyze_concurrency(
        tasks,
        resources,
        name=str(spec.get("name", "workflow")),
        diagnostics=diagnostics,
        checks=checks,
    )


def check_pipeline_concurrency(
    pipeline,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Concurrency-lint a DSL :class:`~repro.core.dsl.workflow.
    Pipeline` (the compiler's pre-DSE gate).

    Pipeline dataflow is pure (every task writes fresh outputs), so a
    defect here means duplicated output wiring or an ordering hazard
    introduced by hand-built pipelines.
    """
    tasks: List[ConcurrencyTask] = []
    for task in pipeline.tasks:
        reads: List[str] = []
        for value in task.inputs:
            if hasattr(value, "task"):  # TaskOutput
                reads.append(f"{value.task.name}.{value.index}")
            else:  # Source
                reads.append(value.name)
        writes = sorted({
            f"{task.name}.{consumer_input.index}"
            for other in pipeline.tasks
            for consumer_input in other.inputs
            if hasattr(consumer_input, "task")
            and consumer_input.task is task
        } | {
            f"{task.name}.{sink.value.index}"
            for sink in pipeline.sinks
            if hasattr(sink.value, "task") and sink.value.task is task
        })
        tasks.append(ConcurrencyTask(
            name=task.name, reads=reads, writes=writes,
        ))
    return analyze_concurrency(
        tasks, name=pipeline.name, diagnostics=diagnostics,
    )
