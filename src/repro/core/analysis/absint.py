"""Interval abstract interpretation over kernel-form IR.

The syntactic/affine analyses (:mod:`.partition`) stop at whatever an
:class:`~repro.core.analysis.partition.Affine` can express; everything
else is "a dynamic-check concern". This module closes that gap with a
classic interval (value-range) abstract interpreter:

* every integer SSA value gets a conservative ``[lo, hi]`` interval;
  loop induction variables range over their static bounds, and the
  transfer functions for ``addi``/``subi``/``muli``/``divi`` evaluate
  interval corners, so non-affine index arithmetic (``i*i``,
  ``i*j + k``) still gets finite bounds;
* comparisons whose operand intervals are disjoint become known
  booleans, and ``kernel.select`` refines through them: a select on a
  provably-constant condition takes the live arm exactly (the dead arm
  is reported as LINT004), and the ``cmplt(x, y) ? x : y`` min/max
  idiom gets the tight ``min``/``max`` interval instead of the union —
  the IR has no branch ops, so select refinement *is* branch
  refinement here;
* each interval tracks which induction variables it depends on and
  whether its bounds are *attained* (``tight``): an expression tree
  that mentions every variable at most once is multilinear, so its
  extrema sit at range corners and really occur on some iteration.
  A tight out-of-bounds interval is therefore a proof (MEM004 error);
  a loose one is only a possibility (MEM004 warning).

Everything the interpreter learns is packaged into a serializable
:class:`AnalysisFacts` object — per-function loop ranges, per-access
per-dimension value ranges, statically-dead constructs, declared
shapes/dtypes and explicit-partition port demands — which downstream
consumers reuse instead of re-deriving:

* :func:`check_module_ranges` turns access facts into MEM004/LINT004
  diagnostics;
* :func:`check_module_contracts` propagates shapes/dtypes
  interprocedurally (``workflow.task`` operands/results and
  ``func.call`` sites against callee signatures) and reports
  producer→consumer mismatches as WF010 (shape) / WF011 (dtype);
* :func:`partition_conflict` lets the DSE pruner reject knob
  assignments whose explicit ``hw.partition`` factors provably cannot
  serve the unrolled access pattern — before any pricing happens;
* :mod:`.partition` uses the dependence sets to run its bank-conflict
  check (MEM002) on accesses whose indices are not syntactically
  affine.

Facts are cheap to recompute but cheaper to reuse: see
:mod:`repro.core.analysis.cache` for the digest-keyed incremental
store, and :data:`ANALYSIS_VERSION` which invalidates it whenever the
analysis itself changes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.ir.module import Function, Module
from repro.core.ir.ops import Block, Operation, Value
from repro.core.ir.types import MemRefType, ScalarType, TensorType

#: Bump whenever any analysis result can change for the same module —
#: cache entries keyed with an older version are ignored.
ANALYSIS_VERSION = "2"

_INF = float("inf")


# ---------------------------------------------------------------------
# The abstract domain: intervals with dependence and tightness.


@dataclass(frozen=True)
class Interval:
    """A conservative integer range ``[lo, hi]`` (±inf = unbounded)."""

    lo: float = -_INF
    hi: float = _INF
    #: ids of the loop induction variables the value depends on.
    vars: FrozenSet[int] = frozenset()
    #: True when both bounds are attained by concrete executions —
    #: holds for multilinear expressions over independent variables.
    tight: bool = False

    @staticmethod
    def top() -> "Interval":
        return Interval()

    @staticmethod
    def const(value: float) -> "Interval":
        return Interval(value, value, frozenset(), True)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and self.lo not in (-_INF, _INF)

    @property
    def bounded(self) -> bool:
        return self.lo != -_INF or self.hi != _INF

    def _combine_tight(self, other: "Interval") -> bool:
        # Corner attainment needs independence: sharing a variable
        # correlates the operands (i - i is 0, not [lo-hi, hi-lo]).
        return self.tight and other.tight and not (self.vars & other.vars)

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi,
                        self.vars | other.vars,
                        self._combine_tight(other))

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo,
                        self.vars | other.vars,
                        self._combine_tight(other))

    def mul(self, other: "Interval") -> "Interval":
        corners = [_finite_mul(a, b)
                   for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        return Interval(min(corners), max(corners),
                        self.vars | other.vars,
                        self._combine_tight(other))

    def floordiv(self, other: "Interval") -> "Interval":
        # Only a divisor interval that excludes zero gives bounds.
        if other.lo <= 0 <= other.hi:
            return Interval(vars=self.vars | other.vars)
        if self.lo in (-_INF, _INF) or self.hi in (-_INF, _INF):
            return Interval(vars=self.vars | other.vars)
        corners = [int(a) // int(b)
                   for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        # Monotone in the dividend; exact corners only for a constant
        # divisor (floor division is not multilinear otherwise).
        tight = self.tight and other.is_const and not (
            self.vars & other.vars
        )
        return Interval(min(corners), max(corners),
                        self.vars | other.vars, tight)

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi),
                        self.vars | other.vars, False)

    def minimum(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi),
                        self.vars | other.vars,
                        self._combine_tight(other))

    def maximum(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi),
                        self.vars | other.vars,
                        self._combine_tight(other))


def _finite_mul(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0  # 0 * inf is 0 here: the finite factor wins
    return a * b


# ---------------------------------------------------------------------
# Facts: what one interpretation of a function learned.


@dataclass
class LoopFacts:
    """Static range of one ``kernel.for``."""

    anchor: str
    lower: int
    upper: int
    step: int
    depth: int
    innermost: bool

    @property
    def trip(self) -> int:
        if self.upper <= self.lower:
            return 0
        return (self.upper - self.lower + self.step - 1) // self.step

    @property
    def last(self) -> int:
        """Largest induction value actually taken."""
        if self.trip == 0:
            return self.lower
        return self.lower + (self.trip - 1) * self.step

    def to_payload(self) -> Dict[str, Any]:
        return {"anchor": self.anchor, "lower": self.lower,
                "upper": self.upper, "step": self.step,
                "depth": self.depth, "innermost": self.innermost}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "LoopFacts":
        return LoopFacts(
            anchor=str(payload["anchor"]), lower=int(payload["lower"]),
            upper=int(payload["upper"]), step=int(payload["step"]),
            depth=int(payload["depth"]),
            innermost=bool(payload["innermost"]),
        )


def _encode_bound(value: float) -> Optional[int]:
    return None if value in (-_INF, _INF) else int(value)


def _decode_bound(value: Optional[int], sign: float) -> float:
    return sign * _INF if value is None else int(value)


@dataclass
class DimRange:
    """Inferred index range against one buffer dimension."""

    lo: float
    hi: float
    tight: bool
    size: int
    affine: bool  # already covered by the affine MEM001 check

    @property
    def in_bounds(self) -> bool:
        return self.lo >= 0 and self.hi < self.size

    @property
    def always_oob(self) -> bool:
        return self.lo >= self.size or self.hi < 0

    def to_payload(self) -> Dict[str, Any]:
        return {"lo": _encode_bound(self.lo),
                "hi": _encode_bound(self.hi),
                "tight": self.tight, "size": self.size,
                "affine": self.affine}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "DimRange":
        return DimRange(
            lo=_decode_bound(payload["lo"], -1.0),
            hi=_decode_bound(payload["hi"], 1.0),
            tight=bool(payload["tight"]), size=int(payload["size"]),
            affine=bool(payload["affine"]),
        )


@dataclass
class AccessFacts:
    """One load/store with inferred per-dimension value ranges.

    Beyond the range information the out-of-bounds check consumes,
    each access carries its *loop-dependence context* for the static
    performance analyzer: the trip counts of every enclosing loop
    (outermost first), a parallel mask of which of those loops the
    access indices actually depend on, and the element width.  A
    ``False`` in the suffix of ``depends_on`` is a proof that the
    access is invariant in that (inner) loop — a hoisting / reuse
    opportunity the traffic model credits.
    """

    anchor: str
    kind: str  # "load" | "store"
    buffer: str
    dims: List[DimRange] = field(default_factory=list)
    #: trip counts of the enclosing kernel.for loops, outermost first.
    enclosing_trips: List[int] = field(default_factory=list)
    #: aligned with enclosing_trips: does any index depend on the
    #: induction variable of that loop?
    depends_on: List[bool] = field(default_factory=list)
    #: bit width of one buffer element (f32 -> 32).
    element_bits: int = 32

    @property
    def reuse_factor(self) -> int:
        """Product of trips of the maximal invariant loop *suffix*.

        A load invariant in the innermost ``k`` consecutive loops can
        be issued once per surrounding iteration instead of once per
        innermost iteration: its traffic shrinks by this factor.
        """
        factor = 1
        for trip, depends in zip(reversed(self.enclosing_trips),
                                 reversed(self.depends_on)):
            if depends:
                break
            factor *= max(1, trip)
        return factor

    def to_payload(self) -> Dict[str, Any]:
        return {"anchor": self.anchor, "kind": self.kind,
                "buffer": self.buffer,
                "dims": [dim.to_payload() for dim in self.dims],
                "enclosing_trips": list(self.enclosing_trips),
                "depends_on": list(self.depends_on),
                "element_bits": self.element_bits}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "AccessFacts":
        return AccessFacts(
            anchor=str(payload["anchor"]), kind=str(payload["kind"]),
            buffer=str(payload["buffer"]),
            dims=[DimRange.from_payload(d) for d in payload["dims"]],
            enclosing_trips=[int(t) for t in
                             payload.get("enclosing_trips", [])],
            depends_on=[bool(d) for d in payload.get("depends_on", [])],
            element_bits=int(payload.get("element_bits", 32)),
        )


@dataclass
class DeadFacts:
    """A statically-dead construct (LINT004)."""

    anchor: str
    message: str

    def to_payload(self) -> Dict[str, Any]:
        return {"anchor": self.anchor, "message": self.message}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "DeadFacts":
        return DeadFacts(anchor=str(payload["anchor"]),
                         message=str(payload["message"]))


@dataclass
class PartitionDemand:
    """Port pressure one explicit ``hw.partition`` directive must serve.

    ``accesses`` loads/stores hit ``buffer`` inside an innermost loop
    of ``trip`` iterations; unrolling by ``u`` demands
    ``accesses * min(u, trip)`` concurrent ports against the
    ``factor * PORTS_PER_BANK`` the directive provides.
    """

    buffer: str
    scheme: str
    factor: int
    accesses: int
    trip: int

    def to_payload(self) -> Dict[str, Any]:
        return {"buffer": self.buffer, "scheme": self.scheme,
                "factor": self.factor, "accesses": self.accesses,
                "trip": self.trip}

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "PartitionDemand":
        return PartitionDemand(
            buffer=str(payload["buffer"]), scheme=str(payload["scheme"]),
            factor=int(payload["factor"]),
            accesses=int(payload["accesses"]), trip=int(payload["trip"]),
        )


@dataclass
class FunctionFacts:
    """Everything the abstract interpreter learned about one function."""

    name: str
    loops: List[LoopFacts] = field(default_factory=list)
    accesses: List[AccessFacts] = field(default_factory=list)
    dead: List[DeadFacts] = field(default_factory=list)
    demands: List[PartitionDemand] = field(default_factory=list)
    #: declared signature, as printed types (shape/dtype inference
    #: output — the IR is typed, so declarations are the ground truth
    #: the interprocedural checks compare against).
    inputs: List[str] = field(default_factory=list)
    results: List[str] = field(default_factory=list)
    #: runtime-only: id(load/store op) -> induction-variable ids its
    #: indices depend on. Not serialized; rebuilt on every compute.
    op_vars: Dict[int, FrozenSet[int]] = field(
        default_factory=dict, repr=False, compare=False,
    )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "loops": [x.to_payload() for x in self.loops],
            "accesses": [x.to_payload() for x in self.accesses],
            "dead": [x.to_payload() for x in self.dead],
            "demands": [x.to_payload() for x in self.demands],
            "inputs": list(self.inputs),
            "results": list(self.results),
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "FunctionFacts":
        return FunctionFacts(
            name=str(payload["name"]),
            loops=[LoopFacts.from_payload(x) for x in payload["loops"]],
            accesses=[AccessFacts.from_payload(x)
                      for x in payload["accesses"]],
            dead=[DeadFacts.from_payload(x) for x in payload["dead"]],
            demands=[PartitionDemand.from_payload(x)
                     for x in payload["demands"]],
            inputs=[str(x) for x in payload["inputs"]],
            results=[str(x) for x in payload["results"]],
        )


@dataclass
class AnalysisFacts:
    """Per-function facts for a whole module (the reusable object)."""

    version: str = ANALYSIS_VERSION
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)

    def function(self, name: str) -> Optional[FunctionFacts]:
        return self.functions.get(name)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "functions": {name: facts.to_payload()
                          for name, facts in sorted(self.functions.items())},
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "AnalysisFacts":
        return AnalysisFacts(
            version=str(payload.get("version", "")),
            functions={
                name: FunctionFacts.from_payload(facts)
                for name, facts in payload.get("functions", {}).items()
            },
        )


# ---------------------------------------------------------------------
# The interpreter.

_BINARY_INT = {
    "kernel.addi": Interval.add,
    "kernel.subi": Interval.sub,
    "kernel.muli": Interval.mul,
    "kernel.divi": Interval.floordiv,
}

_COMPARE = {
    "kernel.cmplt": lambda a, b: (a.hi < b.lo, a.lo >= b.hi),
    "kernel.cmple": lambda a, b: (a.hi <= b.lo, a.lo > b.hi),
    "kernel.cmpgt": lambda a, b: (a.lo > b.hi, a.hi <= b.lo),
    "kernel.cmpeq": lambda a, b: (
        a.is_const and b.is_const and a.lo == b.lo,
        a.hi < b.lo or b.hi < a.lo,
    ),
}

_MIN_COMPARES = ("kernel.cmplt", "kernel.cmple")
_MAX_COMPARES = ("kernel.cmpgt",)


class _FunctionInterpreter:
    """One abstract-interpretation sweep over a kernel-form function."""

    def __init__(self, function: Function):
        self.function = function
        self.env: Dict[int, Interval] = {}
        self.loop_of_var: Dict[int, LoopFacts] = {}
        #: enclosing (loop, induction-variable-id) pairs, outer first.
        self._loop_stack: List[Tuple[LoopFacts, int]] = []
        self._access_ops: List[Tuple[Operation, Value, FrozenSet[int]]] = []
        self.facts = FunctionFacts(
            name=function.name,
            inputs=[str(t) for t in function.type.inputs],
            results=[str(t) for t in function.type.results],
        )

    # -- helpers -------------------------------------------------------

    def value_of(self, value: Value) -> Interval:
        cached = self.env.get(id(value))
        if cached is not None:
            return cached
        return Interval.top()

    def anchor(self, op: Operation) -> str:
        return f"{self.function.name}/{op.name}"

    # -- driver --------------------------------------------------------

    def run(self) -> FunctionFacts:
        if not self.function.is_declaration:
            for block in self.function.body.blocks:
                self._eval_block(block, depth=0)
            self._collect_demands()
        return self.facts

    def _eval_block(self, block: Block, depth: int) -> None:
        for op in block.operations:
            self._eval_op(op, depth)

    def _eval_op(self, op: Operation, depth: int) -> None:
        name = op.name
        if name == "kernel.for":
            self._eval_loop(op, depth)
            return
        if name == "kernel.const":
            self._eval_const(op)
        elif name in _BINARY_INT:
            lhs = self.value_of(op.operands[0])
            rhs = self.value_of(op.operands[1])
            self.env[id(op.results[0])] = _BINARY_INT[name](lhs, rhs)
        elif name in _COMPARE:
            self._eval_compare(op)
        elif name == "kernel.select":
            self._eval_select(op)
        elif name in ("kernel.load", "kernel.store"):
            self._eval_access(op)
        # every other op (float arithmetic, tensor ops, yields) leaves
        # its results at top — soundly unknown.
        for region in op.regions:
            for block in region.blocks:
                self._eval_block(block, depth)

    def _eval_loop(self, op: Operation, depth: int) -> None:
        lower = int(op.attr("lower", 0))
        upper = int(op.attr("upper", 0))
        step = max(1, int(op.attr("step", 1)))
        body = op.regions[0].blocks[0] if (
            op.regions and op.regions[0].blocks
        ) else None
        innermost = not any(
            inner.name == "kernel.for"
            for inner in op.walk() if inner is not op
        )
        loop = LoopFacts(
            anchor=self.anchor(op), lower=lower, upper=upper,
            step=step, depth=depth, innermost=innermost,
        )
        self.facts.loops.append(loop)
        if loop.trip == 0:
            # the body never executes: report it, don't analyze it —
            # accesses inside can't be out of bounds at runtime.
            self.facts.dead.append(DeadFacts(
                anchor=loop.anchor,
                message=(
                    f"loop [{lower}, {upper}) step {step} runs zero "
                    f"iterations; its body is dead"
                ),
            ))
            return
        if body is not None:
            iv_id = -1
            if body.arguments:
                iv = body.arguments[0]
                iv_id = id(iv)
                self.loop_of_var[iv_id] = loop
                self.env[iv_id] = Interval(
                    lower, loop.last, frozenset({iv_id}), True,
                )
            self._loop_stack.append((loop, iv_id))
            try:
                self._eval_block(body, depth + 1)
            finally:
                self._loop_stack.pop()

    def _eval_const(self, op: Operation) -> None:
        raw = op.attr("value")
        if not isinstance(raw, (int, float)):
            return
        result = op.results[0]
        element = result.type
        if isinstance(element, ScalarType) and element.is_float:
            return  # float ranges are not index material
        self.env[id(result)] = Interval.const(int(raw))

    def _eval_compare(self, op: Operation) -> None:
        lhs = self.value_of(op.operands[0])
        rhs = self.value_of(op.operands[1])
        # Over-approximated intervals make disjointness proofs sound:
        # every concrete value lies inside its interval.
        surely_true, surely_false = _COMPARE[op.name](lhs, rhs)
        if surely_true:
            interval = Interval.const(1.0)
        elif surely_false:
            interval = Interval.const(0.0)
        else:
            interval = Interval(0.0, 1.0, lhs.vars | rhs.vars, False)
        self.env[id(op.results[0])] = interval

    def _eval_select(self, op: Operation) -> None:
        cond_value, true_value, false_value = op.operands[:3]
        cond = self.value_of(cond_value)
        result = op.results[0]
        taken = self.value_of(true_value)
        other = self.value_of(false_value)
        if cond.is_const:
            # branch refinement, degenerate case: the condition is a
            # known constant, so only one arm is ever selected.
            dead_arm = "false" if cond.lo else "true"
            self.env[id(result)] = taken if cond.lo else other
            self.facts.dead.append(DeadFacts(
                anchor=self.anchor(op),
                message=(
                    f"select condition is always "
                    f"{'true' if cond.lo else 'false'}; the {dead_arm} "
                    f"arm is never selected"
                ),
            ))
            return
        producer = cond_value.producer
        if producer is not None and producer.name in _COMPARE:
            x, y = producer.operands[0], producer.operands[1]
            refined = self._refine_minmax(
                producer.name, x, y, true_value, false_value
            )
            if refined is not None:
                self.env[id(result)] = refined
                return
        self.env[id(result)] = taken.union(other)

    def _refine_minmax(
        self, compare: str, x: Value, y: Value,
        true_value: Value, false_value: Value,
    ) -> Optional[Interval]:
        """``cmplt(x,y) ? x : y`` is min; swapped arms (or cmpgt) max."""
        a, b = self.value_of(x), self.value_of(y)
        if compare in _MIN_COMPARES:
            if true_value is x and false_value is y:
                return a.minimum(b)
            if true_value is y and false_value is x:
                return a.maximum(b)
        elif compare in _MAX_COMPARES:
            if true_value is x and false_value is y:
                return a.maximum(b)
            if true_value is y and false_value is x:
                return a.minimum(b)
        return None

    def _eval_access(self, op: Operation) -> None:
        if op.name == "kernel.load":
            kind, buffer, indices = "load", op.operands[0], op.operands[1:]
        else:
            kind, buffer, indices = "store", op.operands[1], op.operands[2:]
        memref = buffer.type
        if not isinstance(memref, MemRefType):
            return
        affine = _affine_flags(indices, self.loop_of_var)
        dims: List[DimRange] = []
        used: FrozenSet[int] = frozenset()
        for position, (size, index) in enumerate(
            zip(memref.shape, indices)
        ):
            interval = self.value_of(index)
            used |= interval.vars
            dims.append(DimRange(
                lo=interval.lo, hi=interval.hi, tight=interval.tight,
                size=int(size), affine=affine[position],
            ))
        access = AccessFacts(
            anchor=self.anchor(op), kind=kind,
            buffer=buffer.name, dims=dims,
            enclosing_trips=[loop.trip for loop, _ in self._loop_stack],
            depends_on=[iv_id in used for _, iv_id in self._loop_stack],
            element_bits=int(memref.element.bit_width),
        )
        self.facts.accesses.append(access)
        self.facts.op_vars[id(op)] = used
        self._access_ops.append((op, buffer, used))

    # -- explicit-partition port demands -------------------------------

    def _collect_demands(self) -> None:
        directives: List[Tuple[Value, str, int]] = []
        for op in self.function.walk():
            if op.name == "hw.partition" and op.operands:
                directives.append((
                    op.operands[0], str(op.attr("scheme")),
                    int(op.attr("factor", 1)),
                ))
        if not directives:
            return
        access_ops = self._access_ops
        for buffer, scheme, factor in directives:
            if scheme == "complete":
                continue
            # group this buffer's accesses by the innermost loop their
            # indices depend on — dependence comes from the interval
            # vars, so non-affine indices group correctly too.
            groups: Dict[int, Tuple[LoopFacts, int]] = {}
            for op, accessed, used in access_ops:
                if accessed is not buffer:
                    continue
                deepest: Optional[LoopFacts] = None
                for var in used:
                    loop = self.loop_of_var.get(var)
                    if loop is not None and (
                        deepest is None or loop.depth > deepest.depth
                    ):
                        deepest = loop
                if deepest is None or not deepest.innermost:
                    continue
                previous = groups.get(id(deepest))
                count = previous[1] + 1 if previous else 1
                groups[id(deepest)] = (deepest, count)
            for loop, count in groups.values():
                self.facts.demands.append(PartitionDemand(
                    buffer=buffer.name, scheme=scheme, factor=factor,
                    accesses=count, trip=loop.trip,
                ))


def _affine_flags(
    indices, loop_of_var: Dict[int, LoopFacts]
) -> List[bool]:
    """Which indices the affine MEM001 check already covers."""
    from repro.core.analysis.partition import LoopInfo, _affine_of

    affine_loops: Dict[int, LoopInfo] = {}
    for var, loop in loop_of_var.items():
        # _affine_of only needs membership; ranges are unused there.
        affine_loops[var] = None  # type: ignore[assignment]
    return [
        _affine_of(index, affine_loops) is not None for index in indices
    ]


# ---------------------------------------------------------------------
# Entry points.


def compute_function_facts(function: Function) -> FunctionFacts:
    """Abstractly interpret one function."""
    return _FunctionInterpreter(function).run()


def compute_facts(module: Module) -> AnalysisFacts:
    """Abstractly interpret every function of a module."""
    facts = AnalysisFacts()
    for function in module.functions():
        facts.functions[function.name] = compute_function_facts(function)
    return facts


def check_module_ranges(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
    facts: Optional[AnalysisFacts] = None,
) -> Diagnostics:
    """MEM004 (range-proven out-of-bounds) + LINT004 (dead constructs).

    Accesses whose indices are syntactically affine are left to the
    exact MEM001 check; everything here is the non-affine remainder.
    A *tight* violating interval is an error (the bound is attained on
    a real iteration); a loose one only warns, so over-approximation
    can never produce a false-positive error.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    facts = facts if facts is not None else compute_facts(module)
    for name in sorted(facts.functions):
        function_facts = facts.functions[name]
        for access in function_facts.accesses:
            for position, dim in enumerate(access.dims):
                if dim.affine or dim.in_bounds:
                    continue
                span = (f"[{_render_bound(dim.lo)}, "
                        f"{_render_bound(dim.hi)}]")
                if dim.always_oob or dim.tight:
                    diagnostics.error(
                        "MEM004",
                        f"{access.kind} on %{access.buffer}: inferred "
                        f"range {span} of index {position} "
                        f"{'never enters' if dim.always_oob else 'escapes'} "
                        f"dimension of size {dim.size}",
                        anchor=access.anchor, analysis="absint",
                    )
                elif dim.lo != -_INF or dim.hi != _INF:
                    # a half-bounded range is informative enough to
                    # warn about; a fully-unknown index is a dynamic-
                    # check concern, exactly like the affine pass.
                    diagnostics.warning(
                        "MEM004",
                        f"{access.kind} on %{access.buffer}: inferred "
                        f"range {span} of index {position} may escape "
                        f"dimension of size {dim.size}",
                        anchor=access.anchor, analysis="absint",
                    )
        for dead in function_facts.dead:
            diagnostics.error(
                "LINT004", dead.message,
                anchor=dead.anchor, analysis="absint",
            )
    return diagnostics


def _render_bound(value: float) -> str:
    if value == -_INF:
        return "-inf"
    if value == _INF:
        return "+inf"
    return str(int(value))


# ---------------------------------------------------------------------
# Interprocedural shape/dtype contracts (WF010/WF011).


def _shape_of(declared) -> Optional[Tuple[int, ...]]:
    if isinstance(declared, (TensorType, MemRefType)):
        return tuple(declared.shape)
    return None


def _dtype_of(declared) -> str:
    if isinstance(declared, (TensorType, MemRefType)):
        return declared.element.name
    if isinstance(declared, ScalarType):
        return declared.name
    return str(declared)


def _compare_types(
    diagnostics: Diagnostics, anchor: str, role: str,
    actual, expected,
) -> None:
    actual_shape, expected_shape = _shape_of(actual), _shape_of(expected)
    if actual_shape != expected_shape:
        diagnostics.error(
            "WF010",
            f"{role} has shape "
            f"{_render_shape(actual_shape, actual)} but the callee "
            f"declares {_render_shape(expected_shape, expected)}",
            anchor=anchor, analysis="absint",
        )
        return
    if _dtype_of(actual) != _dtype_of(expected):
        diagnostics.error(
            "WF011",
            f"{role} has dtype {_dtype_of(actual)} but the callee "
            f"declares {_dtype_of(expected)}",
            anchor=anchor, analysis="absint",
        )


def _render_shape(shape: Optional[Tuple[int, ...]], declared) -> str:
    if shape is None:
        return f"{declared} (scalar)"
    return "x".join(str(dim) for dim in shape) or "<>"


def check_module_contracts(
    module: Module,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Propagate shapes/dtypes across workflow tasks and calls.

    Every ``workflow.task`` and ``func.call`` is checked against the
    signature of the kernel it invokes: a producer→consumer shape
    mismatch is WF010, a dtype mismatch WF011. Unknown callees are
    skipped (symbol resolution is not this check's concern).
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    for op in module.walk():
        if op.name == "workflow.task":
            callee = op.attr("kernel")
            task = op.attr("sym_name") or "task"
        elif op.name == "func.call":
            callee = op.attr("callee")
            task = "func.call"
        else:
            continue
        if not isinstance(callee, str):
            continue
        function = module.find_function(callee)
        if function is None:
            continue
        anchor = f"{callee}/{task}"
        expected_inputs = function.type.inputs
        if len(op.operands) != len(expected_inputs):
            diagnostics.error(
                "WF010",
                f"{task} passes {len(op.operands)} operands but kernel "
                f"{callee!r} takes {len(expected_inputs)}",
                anchor=anchor, analysis="absint",
            )
        else:
            for position, (operand, expected) in enumerate(
                zip(op.operands, expected_inputs)
            ):
                _compare_types(
                    diagnostics, anchor,
                    f"{task}: operand {position} (%{operand.name})",
                    operand.type, expected,
                )
        expected_results = function.type.results
        if len(op.results) != len(expected_results):
            diagnostics.error(
                "WF010",
                f"{task} binds {len(op.results)} results but kernel "
                f"{callee!r} returns {len(expected_results)}",
                anchor=anchor, analysis="absint",
            )
        else:
            for position, (result, expected) in enumerate(
                zip(op.results, expected_results)
            ):
                _compare_types(
                    diagnostics, anchor,
                    f"{task}: result {position}",
                    result.type, expected,
                )
    return diagnostics


# ---------------------------------------------------------------------
# DSE space pruning: static partition legality.


def partition_conflict(
    facts: Optional[FunctionFacts], knobs
) -> Optional[str]:
    """Why a knob assignment is statically illegal, or ``None``.

    The single source of truth shared by the cost model (which rejects
    before synthesis) and the explorer's pruner (which rejects before
    calling the cost model at all) — both must produce the *same*
    infeasibility reason so pruned and unpruned explorations serialize
    byte-identically.
    """
    if facts is None or knobs.target != "fpga" or not facts.demands:
        return None
    from repro.core.hls.memory import PORTS_PER_BANK

    for demand in facts.demands:
        effective = min(int(knobs.unroll), demand.trip) if (
            demand.trip > 0
        ) else 1
        if effective <= 1:
            continue
        demanded = demand.accesses * effective
        ports = demand.factor * PORTS_PER_BANK
        if demanded > ports:
            return (
                f"partition: %{demand.buffer} needs {demanded} ports "
                f"({demand.accesses} accesses x unroll {effective}) "
                f"but {demand.scheme} factor {demand.factor} "
                f"provides {ports}"
            )
    return None


# Facts for the DSE hot path, memoized by content digest so pricing a
# thousand knob points re-analyzes the kernel exactly once.
_FACTS_MEMO: "OrderedDict[Tuple[str, str], FunctionFacts]" = OrderedDict()
_FACTS_LOCK = threading.Lock()
_FACTS_MEMO_CAPACITY = 256


def function_facts(
    module: Module, kernel: str, digest: Optional[str] = None
) -> Optional[FunctionFacts]:
    """Digest-memoized facts for one kernel of a module."""
    if digest is None:
        from repro.core.ir.digest import module_digest

        digest = module_digest(module)
    key = (digest, kernel)
    with _FACTS_LOCK:
        cached = _FACTS_MEMO.get(key)
        if cached is not None:
            _FACTS_MEMO.move_to_end(key)
            return cached
    function = module.find_function(kernel)
    if function is None:
        return None
    facts = compute_function_facts(function)
    with _FACTS_LOCK:
        _FACTS_MEMO[key] = facts
        while len(_FACTS_MEMO) > _FACTS_MEMO_CAPACITY:
            _FACTS_MEMO.popitem(last=False)
    return facts
