"""Digest-keyed incremental cache for static-analysis results.

The analysis gate (verification + taint + partition + absint + lints)
re-runs from scratch on every compile and every ``repro lint``, even
when nothing changed. This module memoizes it the same way the DSE
layer memoizes synthesis (:mod:`repro.core.dse.cache`): a two-level
store — in-memory dict plus an optional sharded on-disk directory
with atomic writes — keyed by *content*:

* :meth:`AnalysisCache.module_key` — the structural module digest
  (:func:`repro.core.ir.digest.module_digest`), used by the compiler's
  pre-DSE ``static_checks`` gate;
* :meth:`AnalysisCache.source_key` — the raw spec text, used by
  ``repro lint --incremental`` so a warm run skips parsing and
  compiling the spec entirely, not just the analyses.

Every key recipe folds in :data:`ANALYSIS_CACHE_VERSION` (entry
layout), :data:`~repro.core.analysis.absint.ANALYSIS_VERSION` (the
analyses' semantics) and the IR digest version, so stale results can
never survive an upgrade. Entries carry rendered diagnostics (via
``Diagnostic.to_dict``) and the serialized
:class:`~repro.core.analysis.absint.AnalysisFacts`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.core.analysis.absint import ANALYSIS_VERSION

# Reuse the DSE cache's stats record: same shape, same semantics.
from repro.core.dse.cache import CacheStats
from repro.core.ir.digest import DIGEST_VERSION

#: Bump when the entry layout or key recipe changes incompatibly.
ANALYSIS_CACHE_VERSION = "1"


class AnalysisCache:
    """Two-level (memory + optional disk) store of analysis payloads.

    Payloads are plain JSON-able dicts; this class neither knows nor
    cares that they hold diagnostics — serialization policy lives with
    the callers (:func:`repro.core.analysis.analyze_module_cached`,
    the lint CLI).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: bool = True):
        self.directory = Path(directory) if directory else None
        self.enabled = enabled
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: Dict[str, Dict[str, Any]] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- keying --------------------------------------------------------

    @staticmethod
    def _key(kind: str, material: Sequence[str]) -> str:
        joined = "\x1f".join((
            f"analysis-cache-v{ANALYSIS_CACHE_VERSION}",
            f"analysis-v{ANALYSIS_VERSION}",
            f"ir-v{DIGEST_VERSION}",
            kind,
            *material,
        ))
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    @staticmethod
    def module_key(module_digest: str,
                   checks: Sequence[str] = (),
                   annotate: bool = False) -> str:
        """Key for ``analyze_module`` results on one IR module."""
        return AnalysisCache._key("module", (
            module_digest, ",".join(sorted(checks)), repr(bool(annotate)),
        ))

    @staticmethod
    def source_key(text: str, checks: Sequence[str] = ()) -> str:
        """Key for whole-spec lint results, by raw source text."""
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return AnalysisCache._key("source", (
            digest, ",".join(sorted(checks)),
        ))

    @staticmethod
    def perf_key(module_digest: str, kernel: str) -> str:
        """Key for one kernel's static performance bounds
        (:func:`repro.core.analysis.perf.kernel_bounds`)."""
        return AnalysisCache._key("perf", (module_digest, kernel))

    # -- lookup / store ------------------------------------------------

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None."""
        if not self.enabled:
            return None
        with self._lock:
            payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read_disk(key)
            if payload is not None:
                with self._lock:
                    self._memory[key] = payload
        with self._lock:
            if payload is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store one payload (memory always, disk when configured)."""
        if not self.enabled:
            return
        with self._lock:
            self._memory[key] = payload
            self.stats.stores += 1
        if self.directory is not None:
            self._write_disk(key, {
                "version": ANALYSIS_CACHE_VERSION, "key": key,
                "payload": payload,
            })

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path_for(key)
        try:
            entry = json.loads(path.read_text())
            if entry.get("version") != ANALYSIS_CACHE_VERSION:
                return None
            return entry["payload"]
        except (OSError, ValueError, KeyError):
            return None

    def _write_disk(self, key: str, entry: Dict[str, Any]) -> None:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(handle, "w") as stream:
                json.dump(entry, stream, sort_keys=True)
            os.replace(temp, path)
        except OSError:
            # Best-effort persistence: a read-only or full cache
            # directory degrades to memory-only behavior.
            pass

    # -- maintenance ---------------------------------------------------

    def _disk_files(self) -> Iterator[Path]:
        if self.directory is None or not self.directory.is_dir():
            return iter(())
        return self.directory.glob("*/*.json")

    def entry_count(self) -> int:
        """Distinct cached results (union of memory and disk)."""
        keys = set(self._memory)
        keys.update(path.stem for path in self._disk_files())
        return len(keys)

    def disk_bytes(self) -> int:
        """Total size of the on-disk entries."""
        return sum(path.stat().st_size for path in self._disk_files())

    def breakdown(self) -> Dict[str, Dict[str, int]]:
        """Entries/bytes per payload kind ("analysis" vs "perf").

        Payloads may carry a ``"kind"`` marker (the perf analyzer
        stores ``"perf"``); unmarked payloads are the classic analysis
        entries. Disk bytes are only known for on-disk entries; the
        union semantics match :meth:`entry_count`.
        """
        kinds: Dict[str, Dict[str, int]] = {}

        def record(kind: str, size: int) -> None:
            row = kinds.setdefault(
                kind, {"entries": 0, "disk_bytes": 0})
            row["entries"] += 1
            row["disk_bytes"] += size

        seen = set()
        for path in self._disk_files():
            try:
                entry = json.loads(path.read_text())
                payload = entry.get("payload", {})
                size = path.stat().st_size
            except (OSError, ValueError):
                continue
            seen.add(path.stem)
            record(str(payload.get("kind", "analysis")), size)
        with self._lock:
            memory = dict(self._memory)
        for key, payload in memory.items():
            if key in seen:
                continue
            record(str(payload.get("kind", "analysis")), 0)
        return kinds

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        removed = self.entry_count()
        with self._lock:
            self._memory.clear()
        for path in list(self._disk_files()):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------
# Process-wide default instance (what the compiler gate and CLI use).

_analysis = AnalysisCache()
_config_lock = threading.Lock()


def default_analysis_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-analysis`` or the ``~/.cache`` fallback."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-analysis"


def analysis_cache() -> AnalysisCache:
    """The process-wide analysis cache."""
    return _analysis


def configure_analysis_cache(
    cache_dir: Optional[os.PathLike] = None,
    enabled: bool = True,
) -> AnalysisCache:
    """Reconfigure the process-wide cache; returns the new instance.

    ``cache_dir=None`` keeps it memory-only (the library default);
    ``repro lint --incremental`` passes
    :func:`default_analysis_cache_dir` so repeated invocations share
    one persistent store.
    """
    global _analysis
    with _config_lock:
        _analysis = AnalysisCache(directory=cache_dir, enabled=enabled)
        return _analysis


def clear_analysis_cache() -> int:
    """Empty the process-wide cache; returns entries removed."""
    return analysis_cache().clear()
