"""Loaders turning user-facing specs into lintable targets.

``python -m repro lint`` accepts:

* a ``.edsl`` file of kernel-DSL source — compiled to an IR module;
* a ``.ir`` file of printed IR — parsed back to a module, so lowered
  kernel-form fixtures (explicit loops, ``hw.partition`` directives)
  lint without a DSL front end;
* a ``.py`` file — every string constant that looks like kernel-DSL
  source (``kernel name(...)``) is extracted via the ``ast`` module
  and compiled, so the shipped examples lint without being executed;
* a ``.json`` file — a workflow description for the DAG linter (see
  :func:`repro.core.analysis.wfcheck.lint_workflow_spec`);
* a directory — recursively expanded to all of the above.

Each target is a :class:`LintTarget` carrying either an IR module or a
workflow spec; load failures become DSL001 diagnostics instead of
exceptions so a single bad file does not hide findings in the rest.

Expansion is fully deterministic: directory walks sort both the
subdirectory and the file lists, so ``repro lint`` over a tree emits
byte-identical reports on any filesystem and any worker count.
"""

from __future__ import annotations

import ast as python_ast
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis.diagnostics import Diagnostics
from repro.errors import EverestError

_KERNEL_RE = re.compile(r"\bkernel\s+\w+\s*\(")

_EXTENSIONS = (".edsl", ".ir", ".py", ".json")


@dataclass
class LintTarget:
    """One lintable unit: an IR module or a workflow spec."""

    name: str
    kind: str  # "module" | "workflow"
    module: Optional[object] = None
    spec: Optional[Dict] = None


def extract_kernel_sources(python_source: str) -> List[str]:
    """Kernel-DSL string constants embedded in python source."""
    sources: List[str] = []
    try:
        tree = python_ast.parse(python_source)
    except SyntaxError:
        return sources
    for node in python_ast.walk(tree):
        if (
            isinstance(node, python_ast.Constant)
            and isinstance(node.value, str)
            and _KERNEL_RE.search(node.value)
        ):
            sources.append(node.value)
    return sources


def _load_module_target(
    name: str, source: str, diagnostics: Diagnostics
) -> Optional[LintTarget]:
    from repro.core.dsl.kernel_dsl import compile_kernel

    try:
        module = compile_kernel(source)
    except EverestError as exc:
        diagnostics.error(
            "DSL001",
            f"cannot compile kernel source: {exc}",
            anchor=name,
            analysis="loader",
        )
        return None
    return LintTarget(name=name, kind="module", module=module)


def _load_ir_target(
    name: str, source: str, diagnostics: Diagnostics
) -> Optional[LintTarget]:
    from repro.core.ir.parser import parse_module

    try:
        module = parse_module(source)
    except EverestError as exc:
        diagnostics.error(
            "DSL001",
            f"cannot parse IR: {exc}",
            anchor=name,
            analysis="loader",
        )
        return None
    return LintTarget(name=name, kind="module", module=module)


def expand_spec_files(path: str) -> List[str]:
    """Deterministically expand one CLI path into spec files.

    A directory yields every ``_EXTENSIONS`` file beneath it with both
    the directory and file walk order sorted; anything else (including
    a nonexistent path — its error is reported at load time) passes
    through unchanged.
    """
    if not os.path.isdir(path):
        return [path]
    found: List[str] = []
    for root, dirs, files in os.walk(path):
        dirs.sort()
        for filename in sorted(files):
            if filename.endswith(_EXTENSIONS):
                found.append(os.path.join(root, filename))
    return found


def load_targets_from_text(
    path: str, text: str, diagnostics: Diagnostics
) -> List[LintTarget]:
    """Targets for one spec file whose contents are already in hand.

    This is the unit the incremental lint cache keys on: pure in
    ``(path, text)``, so a warm ``repro lint --incremental`` replays
    the stored findings without parsing or compiling anything.
    """
    targets: List[LintTarget] = []
    if path.endswith(".edsl"):
        target = _load_module_target(path, text, diagnostics)
        if target:
            targets.append(target)
    elif path.endswith(".ir"):
        target = _load_ir_target(path, text, diagnostics)
        if target:
            targets.append(target)
    elif path.endswith(".py"):
        for index, source in enumerate(extract_kernel_sources(text)):
            target = _load_module_target(
                f"{path}#{index}", source, diagnostics
            )
            if target:
                targets.append(target)
    elif path.endswith(".json"):
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            diagnostics.error(
                "DSL001", f"invalid JSON: {exc}",
                anchor=path, analysis="loader",
            )
            return targets
        if not isinstance(spec, dict):
            diagnostics.error(
                "DSL001", "workflow spec must be a JSON object",
                anchor=path, analysis="loader",
            )
            return targets
        targets.append(LintTarget(name=path, kind="workflow", spec=spec))
    else:
        diagnostics.error(
            "DSL001",
            f"unsupported spec type (expected one of {_EXTENSIONS})",
            anchor=path, analysis="loader",
        )
    return targets


def read_spec_text(
    path: str, diagnostics: Diagnostics
) -> Optional[str]:
    """The file's text, or None with a DSL001 recorded."""
    if not os.path.exists(path):
        diagnostics.error(
            "DSL001", "no such file or directory",
            anchor=path, analysis="loader",
        )
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        diagnostics.error(
            "DSL001", f"cannot read spec: {exc}",
            anchor=path, analysis="loader",
        )
        return None


def load_lint_targets(
    path: str, diagnostics: Optional[Diagnostics] = None
) -> List[LintTarget]:
    """Expand a path into lint targets, recording load failures.

    Returns the targets; load problems are emitted as DSL001 on the
    passed (or a fresh) diagnostics collection accessible through each
    call site.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    targets: List[LintTarget] = []
    for filename in expand_spec_files(path):
        text = read_spec_text(filename, diagnostics)
        if text is None:
            continue
        targets.extend(
            load_targets_from_text(filename, text, diagnostics)
        )
    return targets
