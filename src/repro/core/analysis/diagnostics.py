"""Unified diagnostics for compile-time analyses.

Every static check in the SDK — the structural verifier, the DSL type
checker and the analyses under :mod:`repro.core.analysis` — reports
through the same :class:`Diagnostic` record: a stable error code, a
severity, a human message and an anchor naming the op / function /
task the finding is about. A :class:`Diagnostics` collection renders
to pretty text or JSON and decides process exit codes, so the CLI, the
pass manager and CI all consume one format.

Error codes are registered centrally (:data:`CODES`) so they stay
stable across releases and can be suppressed individually.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(Enum):
    """How serious a finding is."""

    ERROR = "error"  # the artifact must not proceed to DSE/HLS
    WARNING = "warning"  # suspicious but not blocking
    NOTE = "note"  # informational (e.g. dynamically-checked flow)

    @property
    def rank(self) -> int:
        """Orderable weight: errors first."""
        return {"error": 0, "warning": 1, "note": 2}[self.value]


#: Registry of stable diagnostic codes -> one-line description.
CODES: Dict[str, str] = {
    # structural IR verification
    "IR001": "operation is not registered with any dialect",
    "IR002": "operation violates its structural constraints",
    "IR003": "operand is not visible at its use",
    "IR004": "terminator is not the last operation of its block",
    "IR005": "block does not end with the required terminator",
    "IR006": "use-def chains are inconsistent",
    "IR007": "SSA value defined more than once",
    # DSL front end
    "DSL001": "kernel DSL source failed to parse",
    "TY001": "type error in a kernel body",
    "TY002": "duplicate or malformed declaration",
    # static taint / information-flow
    "SEC001": "tainted value reaches kernel return without declassification",
    "SEC002": "tainted value stored to unprotected caller-visible memory",
    "SEC003": "tainted egress is only guarded by a dynamic check",
    "SEC004": "tainted pipeline value reaches a sink declared public",
    "SEC005": "sensitive arguments await DIFT instrumentation",
    # memory partition legality
    "MEM001": "memory access is out of bounds",
    "MEM002": "partition factor cannot serve the access pattern (bank conflict)",
    "MEM003": "partition directive is malformed or wasteful",
    "MEM004": "inferred value range proves the access out of bounds",
    # generic lints
    "LINT001": "result of a pure operation is never used",
    "LINT002": "block is unreachable",
    "LINT003": "function is never referenced",
    "LINT004": "branch or loop is statically dead (never taken)",
    # workflow DAG
    "WF001": "workflow contains a dependency cycle",
    "WF002": "task consumes an object nothing produces",
    "WF003": "task requests more resources than any worker provides",
    "WF004": "data object is produced by more than one task",
    "WF005": "duplicate task name",
    "WF006": "task is unreachable (depends on an unproducible object)",
    "WF007": "workflow run journal is corrupt",
    "WF008": "workflow journal/snapshot version skew",
    "WF009": "resume state does not match the run recipe",
    "WF010": "producer and consumer disagree on a data object's shape",
    "WF011": "producer and consumer disagree on a data object's dtype",
    # pass pipeline
    "PM001": "module became invalid after a pass",
    "PM002": "analysis found errors after a pass",
    # design-space exploration
    "DSE001": "no feasible variants for the kernel",
    # static performance analysis
    "PERF001": "unroll factor provably exceeds memory port capacity",
    "PERF002": "loop-invariant load can be hoisted to a register",
    "PERF003": "non-affine access defeats burst inference",
    "PERF004": "kernel is memory-bound at default knobs (roofline)",
    "PERF005": "pipeline II target is provably unattainable",
    # static concurrency: data races
    "RACE001": "unordered tasks both write the same data object",
    "RACE002": "task reads an object an unordered task writes",
    "RACE003": "torn read: task reads several objects one unordered "
               "task writes",
    "RACE004": "order-sensitive task consumes unordered equal-priority "
               "producers",
    # static concurrency: deadlocks
    "DL001": "resource acquisition order forms a cycle between "
             "concurrent tasks",
    "DL002": "resource request can never be granted",
    "DL003": "concurrent incremental requests can exhaust a resource "
             "with every holder still waiting",
    # platform simulator runtime diagnostics
    "SIM001": "resource released without a matching request",
    "SIM002": "simulation drained with an unfinished process (deadlock)",
    # dynamic happens-before sanitizer
    "SAN001": "two concurrent writes to the same object observed",
    "SAN002": "concurrent read and write of the same object observed",
    "SAN003": "resource acquire/release imbalance observed",
}


def describe_code(code: str) -> str:
    """One-line description of a registered code ('' if unknown)."""
    return CODES.get(code, "")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis."""

    code: str
    severity: Severity
    message: str
    #: what the finding anchors to: an op name, function, task, file…
    anchor: str = ""
    #: originating analysis or tool (verifier, taint, dag-lint, …)
    analysis: str = ""
    #: optional source location (file, line) when known
    loc: Optional[Tuple[str, int]] = None

    def render(self) -> str:
        """One-line human rendering."""
        where = f" @ {self.anchor}" if self.anchor else ""
        if self.loc is not None:
            where += f" ({self.loc[0]}:{self.loc[1]})"
        return (
            f"{self.severity.value}[{self.code}]{where}: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping."""
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.anchor:
            payload["anchor"] = self.anchor
        if self.analysis:
            payload["analysis"] = self.analysis
        if self.loc is not None:
            payload["file"], payload["line"] = self.loc
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the analysis cache)."""
        loc: Optional[Tuple[str, int]] = None
        if "file" in payload:
            loc = (str(payload["file"]), int(payload["line"]))  # type: ignore[arg-type]
        return Diagnostic(
            code=str(payload["code"]),
            severity=Severity(str(payload["severity"])),
            message=str(payload["message"]),
            anchor=str(payload.get("anchor", "")),
            analysis=str(payload.get("analysis", "")),
            loc=loc,
        )


@dataclass
class Diagnostics:
    """An ordered collection of findings with rendering helpers."""

    items: List[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
        anchor: str = "",
        analysis: str = "",
        loc: Optional[Tuple[str, int]] = None,
    ) -> Diagnostic:
        """Record one finding and return it."""
        if code not in CODES:
            raise ValueError(f"unregistered diagnostic code {code!r}")
        diagnostic = Diagnostic(
            code=code, severity=severity, message=message,
            anchor=anchor, analysis=analysis, loc=loc,
        )
        self.items.append(diagnostic)
        return diagnostic

    def error(self, code: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand for an ERROR finding."""
        return self.emit(code, message, Severity.ERROR, **kwargs)

    def warning(self, code: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand for a WARNING finding."""
        return self.emit(code, message, Severity.WARNING, **kwargs)

    def note(self, code: str, message: str, **kwargs) -> Diagnostic:
        """Shorthand for a NOTE finding."""
        return self.emit(code, message, Severity.NOTE, **kwargs)

    @staticmethod
    def from_dicts(payloads: Iterable[Dict[str, object]]) -> "Diagnostics":
        """Rebuild a collection from :meth:`Diagnostic.to_dict` output."""
        return Diagnostics([Diagnostic.from_dict(p) for p in payloads])

    # ------------------------------------------------------------------

    def extend(self, other: "Diagnostics") -> "Diagnostics":
        """Absorb another collection; returns self."""
        self.items.extend(other.items)
        return self

    def suppress(self, codes: Iterable[str]) -> "Diagnostics":
        """New collection without findings whose code is suppressed."""
        dropped = set(codes)
        return Diagnostics(
            [item for item in self.items if item.code not in dropped]
        )

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        """Findings of one severity, in emission order."""
        return [item for item in self.items if item.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        """All ERROR findings."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        """All WARNING findings."""
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        """True when at least one ERROR was recorded."""
        return any(
            item.severity is Severity.ERROR for item in self.items
        )

    def sorted(self) -> List[Diagnostic]:
        """Findings ordered by severity, then code, then anchor."""
        return sorted(
            self.items,
            key=lambda d: (d.severity.rank, d.code, d.anchor, d.message),
        )

    # ------------------------------------------------------------------

    def render_text(self, header: str = "") -> str:
        """Multi-line human-readable report."""
        lines: List[str] = []
        if header:
            lines.append(header)
        for item in self.sorted():
            lines.append("  " + item.render() if header else item.render())
        counts = self.summary()
        tally = ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in counts.items() if count
        ) or "clean"
        lines.append(("  " if header else "") + f"-- {tally}")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Stable JSON rendering (sorted findings + counts)."""
        payload = {
            "diagnostics": [item.to_dict() for item in self.sorted()],
            "counts": self.summary(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def summary(self) -> Dict[str, int]:
        """Counts per severity name."""
        return {
            "error": len(self.by_severity(Severity.ERROR)),
            "warning": len(self.by_severity(Severity.WARNING)),
            "note": len(self.by_severity(Severity.NOTE)),
        }

    def first_error_message(self) -> str:
        """Rendered first error ('' when error-free)."""
        for item in self.sorted():
            if item.severity is Severity.ERROR:
                return item.render()
        return ""

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)


def raise_if_errors(diagnostics: Diagnostics, exc_type: type) -> None:
    """Raise ``exc_type`` carrying the first error, if any.

    The raised exception gets a ``diagnostics`` attribute holding the
    full collection so callers can render everything.
    """
    if not diagnostics.has_errors:
        return
    exc = exc_type(diagnostics.first_error_message())
    exc.diagnostics = diagnostics
    raise exc
