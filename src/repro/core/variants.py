"""Code-variant representation (paper §III-B).

The compiler emits *multiple hardware and software variants* per
kernel; each :class:`Variant` couples the knob settings that produced
it with the cost estimates the runtime's decision maker needs, plus
references to the generated artifacts (binary or bitstream).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.platform.fpga import Bitstream
from repro.platform.resources import FPGAResources

_variant_ids = itertools.count()


@dataclass(frozen=True)
class VariantKnobs:
    """The knob assignment that generated one variant."""

    target: str = "cpu"  # cpu | fpga | gpu
    threads: int = 1  # software parallelism
    tile: int = 0  # 0 = untiled
    unroll: int = 1
    memory_strategy: str = "auto"
    layout: str = "row_major"
    clock_hz: float = 250e6
    dift: bool = False
    matmul_order: str = "ijk"  # ijk | ikj (loop interchange)
    interleave: int = 1  # accumulation partial sums

    def describe(self) -> str:
        """Compact human-readable knob string."""
        parts = [self.target]
        if self.target == "cpu":
            parts.append(f"t{self.threads}")
        else:
            parts.append(f"u{self.unroll}")
            parts.append(f"{int(self.clock_hz / 1e6)}MHz")
            parts.append(self.memory_strategy)
        if self.tile:
            parts.append(f"tile{self.tile}")
        if self.layout not in ("row_major",):
            parts.append(self.layout)
        if self.matmul_order != "ijk":
            parts.append(self.matmul_order)
        if self.interleave > 1:
            parts.append(f"il{self.interleave}")
        if self.dift:
            parts.append("dift")
        return "/".join(parts)


@dataclass
class CostEstimate:
    """Predicted cost of one variant on its target.

    ``accuracy`` supports mARGOt-style approximate computing [11]: a
    variant may trade output quality (fewer Monte Carlo samples, a
    reduced model) for latency/energy; 1.0 means exact.
    """

    latency_s: float
    energy_j: float
    resources: FPGAResources = field(default_factory=FPGAResources)
    data_bytes: int = 0
    feasible: bool = True
    infeasible_reason: str = ""
    accuracy: float = 1.0

    def dominates(self, other: "CostEstimate") -> bool:
        """Pareto dominance on (latency, energy); ties must improve one."""
        if not self.feasible:
            return False
        if not other.feasible:
            return True
        no_worse = (
            self.latency_s <= other.latency_s
            and self.energy_j <= other.energy_j
        )
        better = (
            self.latency_s < other.latency_s
            or self.energy_j < other.energy_j
        )
        return no_worse and better


@dataclass
class Variant:
    """One compiled implementation of a kernel."""

    kernel: str
    knobs: VariantKnobs
    cost: CostEstimate
    variant_id: int = field(default_factory=lambda: next(_variant_ids))
    bitstream: Optional[Bitstream] = None
    source_text: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Stable display name."""
        return f"{self.kernel}#{self.variant_id}[{self.knobs.describe()}]"

    @property
    def is_hardware(self) -> bool:
        """True for FPGA variants."""
        return self.knobs.target == "fpga"

    def to_metadata(self) -> Dict[str, Any]:
        """Serializable record handed to the runtime decision maker."""
        return {
            "kernel": self.kernel,
            "variant_id": self.variant_id,
            "target": self.knobs.target,
            "knobs": self.knobs.describe(),
            "latency_s": self.cost.latency_s,
            "energy_j": self.cost.energy_j,
            "feasible": self.cost.feasible,
            "resources": {
                "luts": self.cost.resources.luts,
                "ffs": self.cost.resources.ffs,
                "bram_kb": self.cost.resources.bram_kb,
                "dsps": self.cost.resources.dsps,
            },
        }
