"""Import of ML exchange formats (paper §III-B: NNEF/ONNX support).

Real EVEREST ingests TensorFlow/PyTorch graphs through exchange
formats. Offline we define a compact JSON model format with the same
role — a layer list any of those exporters could produce — and
translate it into kernel-DSL source, which then flows through the
standard compilation path (DSL → tensor dialect → variants).

Format::

    {
      "name": "wind_power",
      "batch": 64,
      "input_features": 32,
      "layers": [
        {"type": "dense", "units": 24, "activation": "relu"},
        {"type": "scale", "factor": 0.5},
        {"type": "dense", "units": 1, "activation": "sigmoid"}
      ]
    }

Bias terms are passed as full ``batch x units`` matrices (the host
tiles the bias row), keeping the DSL free of implicit broadcasting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SpecificationError

_ACTIVATIONS = {"relu", "tanh", "sigmoid", "none"}


@dataclass
class ImportedModel:
    """Result of importing a model description."""

    name: str
    dsl_source: str
    kernel_name: str
    parameter_shapes: List[Tuple[str, Tuple[int, ...]]] = field(
        default_factory=list
    )

    @property
    def parameter_names(self) -> List[str]:
        """Names of the kernel parameters in order."""
        return [name for name, _ in self.parameter_shapes]


def import_model_json(text: str) -> ImportedModel:
    """Translate a JSON model into DSL source."""
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecificationError(f"malformed model JSON: {exc}") from exc
    return import_model(spec)


def import_model(spec: Dict) -> ImportedModel:
    """Translate a parsed model description into DSL source."""
    for key in ("name", "batch", "input_features", "layers"):
        if key not in spec:
            raise SpecificationError(f"model spec missing {key!r}")
    name = str(spec["name"])
    batch = int(spec["batch"])
    features = int(spec["input_features"])
    layers = spec["layers"]
    if batch <= 0 or features <= 0:
        raise SpecificationError("batch and input_features must be > 0")
    if not layers:
        raise SpecificationError("model has no layers")

    params: List[Tuple[str, Tuple[int, ...]]] = [
        ("X", (batch, features))
    ]
    body: List[str] = []
    current = "X"
    width = features
    for index, layer in enumerate(layers):
        layer_type = layer.get("type")
        if layer_type == "dense":
            units = int(layer.get("units", 0))
            if units <= 0:
                raise SpecificationError(
                    f"layer {index}: dense needs positive units"
                )
            weight = f"W{index}"
            bias = f"B{index}"
            params.append((weight, (width, units)))
            params.append((bias, (batch, units)))
            pre = f"z{index}"
            body.append(f"{pre} = {current} @ {weight} + {bias}")
            current = _apply_activation(
                body, index, pre, layer.get("activation", "none")
            )
            width = units
        elif layer_type == "scale":
            factor = float(layer.get("factor", 1.0))
            scaled = f"s{index}"
            body.append(f"{scaled} = {current} * {factor}")
            current = scaled
        elif layer_type == "activation":
            current = _apply_activation(
                body, index, current, layer.get("activation", "relu")
            )
        else:
            raise SpecificationError(
                f"layer {index}: unknown type {layer_type!r}"
            )
    body.append(f"return {current}")

    param_text = ", ".join(
        f"{pname}: tensor<{'x'.join(str(d) for d in shape)}xf32>"
        for pname, shape in params
    )
    result_type = f"tensor<{batch}x{width}xf32>"
    lines = [f"kernel {name}({param_text}) -> {result_type} {{"]
    lines.extend(f"  {line}" for line in body)
    lines.append("}")
    return ImportedModel(
        name=name,
        dsl_source="\n".join(lines),
        kernel_name=name,
        parameter_shapes=params,
    )


def _apply_activation(body: List[str], index: int, value: str,
                      activation: str) -> str:
    if activation not in _ACTIVATIONS:
        raise SpecificationError(
            f"layer {index}: unknown activation {activation!r}"
        )
    if activation == "none":
        return value
    activated = f"a{index}"
    body.append(f"{activated} = {activation}({value})")
    return activated


def export_model(name: str, batch: int, input_features: int,
                 layers: List[Dict]) -> str:
    """Serialize a model description to the exchange JSON."""
    return json.dumps(
        {
            "name": name,
            "batch": batch,
            "input_features": input_features,
            "layers": layers,
        },
        indent=2,
    )
