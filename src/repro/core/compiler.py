"""End-to-end compilation driver (the whole of paper Fig. 1).

:class:`EverestCompiler` ties the SDK together: a workflow
:class:`~repro.core.dsl.workflow.Pipeline` goes in; out comes a
:class:`CompiledApplication` holding the unified IR module, the
per-kernel exploration results, and a signed
:class:`~repro.core.backend.packaging.VariantPackage` with binaries and
bitstreams ready for the runtime.

Security annotations on pipeline sources propagate to the kernels
consuming them (transitively through task outputs), forcing DIFT
instrumentation on those kernels' variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.analysis import (
    analyze_module_cached,
    check_pipeline_concurrency,
)
from repro.core.analysis.diagnostics import Diagnostics, raise_if_errors
from repro.core.backend.binary import Artifact, SoftwareBinary
from repro.core.backend.packaging import VariantPackage
from repro.core.backend.sycl_gen import generate_sycl
from repro.core.dse.cost_model import (
    ArchitectureModel,
    prepare_variant_module,
)
from repro.core.dse.explorer import ExplorationResult, Explorer
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import Sensitivity
from repro.core.dsl.workflow import Pipeline, lint_pipeline_contracts
from repro.core.hls.bambu import HLSOptions, synthesize
from repro.core.hls.scheduling import ResourceBudget
from repro.core.ir.digest import module_digest
from repro.core.ir.module import Module
from repro.core.ir.passes.partitioning import HardwarePartitioningPass
from repro.errors import AnalysisError, BackendError
from repro.obs import Observation, current_metrics, current_tracer, observe

#: Tracer category for compile-driver phase spans.
COMPILE_CATEGORY = "compiler.phase"


@dataclass
class CompiledApplication:
    """The compiler's output for one pipeline."""

    name: str
    module: Module
    pipeline: Pipeline
    exploration: Dict[str, ExplorationResult] = field(default_factory=dict)
    package: VariantPackage = None  # type: ignore[assignment]
    sensitive_kernels: Set[str] = field(default_factory=set)
    #: Findings of the pre-DSE static-analysis gate (never errors —
    #: those abort compilation with an AnalysisError).
    diagnostics: Diagnostics = field(default_factory=Diagnostics)

    def kernel_names(self) -> List[str]:
        """Kernels reachable from the pipeline, in task order."""
        return list(self.exploration)

    def summary(self) -> str:
        """Multi-line compilation report."""
        lines = [f"application {self.name}"]
        for kernel, result in self.exploration.items():
            front = ", ".join(v.knobs.describe() for v in result.front)
            marker = " [dift]" if kernel in self.sensitive_kernels else ""
            lines.append(
                f"  {kernel}{marker}: {result.evaluations} points, "
                f"{len(result.front)} on front ({front})"
            )
        return "\n".join(lines)


class EverestCompiler:
    """Drives frontend → middle-end → backend for a pipeline."""

    def __init__(
        self,
        space: Optional[DesignSpace] = None,
        model: Optional[ArchitectureModel] = None,
        strategy: str = "exhaustive",
        signing_key: str = "everest-demo-key",
        emit_artifacts: bool = True,
        static_checks: bool = True,
        workers: int = 1,
        workers_mode: str = "thread",
    ):
        self.space = space or DesignSpace.small()
        self.model = model or ArchitectureModel()
        self.strategy = strategy
        self.signing_key = signing_key
        self.emit_artifacts = emit_artifacts
        self.static_checks = static_checks
        #: Pool width and flavor ("thread" or "process") for per-kernel
        #: DSE batches; results are identical for every combination
        #: (see Explorer).
        self.workers = workers
        self.workers_mode = workers_mode

    # ------------------------------------------------------------------

    def compile(self, pipeline: Pipeline) -> CompiledApplication:
        """Compile a pipeline into variants + artifacts."""
        tracer = current_tracer()
        metrics = current_metrics()
        with tracer.span(f"compile:{pipeline.name}",
                         category=COMPILE_CATEGORY) as compile_span:
            with tracer.span("frontend", category=COMPILE_CATEGORY):
                module = pipeline.to_ir()
                sensitive_kernels = self._propagate_sensitivity(module)
                HardwarePartitioningPass().run(module)

            # One digest for the whole compile: every downstream
            # consumer (analysis gate, explorer, artifact packaging)
            # keys its caches off this hash instead of re-digesting.
            # The version-counter memo makes re-digesting free anyway;
            # threading it removes the footgun entirely.
            digest = module_digest(module)

            diagnostics = Diagnostics()
            if self.static_checks:
                # Pre-DSE gate: exploring or synthesizing a module that
                # statically violates a secure.* policy, banks memory
                # illegally or wires mismatched task contracts would
                # only waste the DSE budget. The IR analyses are
                # memoized by the module's content digest — recompiling
                # an unchanged pipeline replays the stored findings.
                with tracer.span("static-checks",
                                 category=COMPILE_CATEGORY) as span:
                    # Whether the per-pass spans fire depends on
                    # cache warmth; mute the tracer (but keep the
                    # ambient metrics, which carry the hit/miss
                    # counters) so identical compiles produce
                    # identical traces at any cache temperature.
                    with observe(Observation(metrics=metrics)):
                        cached, _facts, _hit = analyze_module_cached(
                            module, digest=digest)
                    diagnostics.extend(cached)
                    check_pipeline_concurrency(pipeline, diagnostics)
                    lint_pipeline_contracts(pipeline, diagnostics)
                    span.note(findings=len(diagnostics.items))
                raise_if_errors(diagnostics, AnalysisError)

            app = CompiledApplication(
                name=pipeline.name,
                module=module,
                pipeline=pipeline,
                package=VariantPackage(
                    application=pipeline.name,
                    signing_key=self.signing_key,
                ),
                sensitive_kernels=sensitive_kernels,
                diagnostics=diagnostics,
            )

            for task in pipeline.tasks:
                kernel = task.kernel
                if kernel in app.exploration:
                    continue
                space = self.space
                if kernel in sensitive_kernels:
                    space = dataclasses.replace(
                        space, dift_options=(True,)
                    )
                explorer = Explorer(
                    module, kernel, space=space, model=self.model,
                    requirements=list(task.requirements)
                    + list(pipeline.requirements),
                    workers=self.workers,
                    workers_mode=self.workers_mode,
                    digest=digest,
                )
                result = explorer.run(self.strategy)
                app.exploration[kernel] = result
                # Package every feasible variant: points off the Pareto
                # front still matter at run time, when contention or
                # data features shift the effective costs (mARGOt keeps
                # the full operating-point list).
                with tracer.span(f"package:{kernel}",
                                 category=COMPILE_CATEGORY) as span:
                    for variant in result.feasible:
                        artifact = (
                            self._build_artifact(module, variant, digest)
                            if self.emit_artifacts else None
                        )
                        app.package.add_variant(variant, artifact)
                    span.note(variants=len(result.feasible))
                metrics.counter(
                    "compiler.variants_packaged",
                    "variants added to packages",
                ).inc(len(result.feasible), kernel=kernel)
            compile_span.note(
                kernels=len(app.exploration),
                sensitive=len(sensitive_kernels),
            )
        metrics.counter(
            "compiler.pipelines_compiled", "pipelines compiled",
        ).inc()
        return app

    # ------------------------------------------------------------------

    def _propagate_sensitivity(self, module: Module) -> Set[str]:
        """Mark kernels consuming sensitive data; returns their names."""
        sensitive_kernels: Set[str] = set()
        pipeline_ops = [
            op for op in module.body.operations
            if op.name == "workflow.pipeline"
        ]
        for pipeline_op in pipeline_ops:
            block = pipeline_op.regions[0].blocks[0]
            tainted_values = set()
            for op in block.operations:
                if op.name == "workflow.source":
                    sensitivity = op.attr("sensitivity", "public")
                    if sensitivity not in ("public",
                                           Sensitivity.PUBLIC.value):
                        tainted_values.add(id(op.results[0]))
                elif op.name == "workflow.task":
                    tainted_indices = [
                        index
                        for index, operand in enumerate(op.operands)
                        if id(operand) in tainted_values
                    ]
                    if tainted_indices:
                        kernel = op.attr("kernel")
                        function = module.find_function(kernel)
                        if function is not None:
                            existing = set(function.op.attr(
                                "everest.sensitive_args", []))
                            existing.update(tainted_indices)
                            function.op.set_attr(
                                "everest.sensitive_args",
                                sorted(existing),
                            )
                        sensitive_kernels.add(kernel)
                        for result in op.results:
                            tainted_values.add(id(result))
        return sensitive_kernels

    def _build_artifact(
        self, module: Module, variant, digest: Optional[str] = None
    ) -> Artifact:
        """Generate the deployable artifact for one variant."""
        # Muted observation: preparation is memoized, so whether the
        # pass pipeline actually runs here depends on cache warmth;
        # letting it trace would make otherwise-identical compiles
        # produce different traces. The packaging span above is the
        # deterministic record of this work.
        with observe(Observation()):
            prepared = prepare_variant_module(
                module, variant.kernel, variant.knobs, digest
            )
        if variant.knobs.target == "cpu":
            source = generate_sycl(prepared, variant.kernel)
            payload = SoftwareBinary(
                name=variant.name,
                arch="ppc64le",
                source_text=source,
                threads=variant.knobs.threads,
            )
            return Artifact(
                variant_id=variant.variant_id,
                kind="binary",
                payload=payload,
            )
        if variant.knobs.target == "fpga":
            options = HLSOptions(
                clock_hz=variant.knobs.clock_hz,
                memory_strategy=variant.knobs.memory_strategy,
                budget=ResourceBudget(
                    fadd=4 * variant.knobs.unroll,
                    fmul=4 * variant.knobs.unroll,
                ),
                enable_dift=variant.knobs.dift or None,
            )
            design = synthesize(prepared, variant.kernel, options)
            return Artifact(
                variant_id=variant.variant_id,
                kind="bitstream",
                payload=design.bitstream(),
            )
        raise BackendError(
            f"no artifact path for target {variant.knobs.target!r}"
        )
