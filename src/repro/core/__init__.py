"""The EVEREST compilation SDK (paper Sections II-III, Fig. 1).

Subpackages:

* :mod:`repro.core.dsl` — embedded DSLs: tensor-expression kernels,
  workflow pipelines, data/security annotations.
* :mod:`repro.core.ir` — the unified MLIR-style intermediate
  representation with workflow/tensor/kernel/hw/secure dialects and the
  optimization passes that produce code variants.
* :mod:`repro.core.dse` — design-space exploration over variant knobs,
  backed by high-level architecture cost models.
* :mod:`repro.core.hls` — the Bambu-like high-level synthesis engine.
* :mod:`repro.core.backend` — SYCL-like code generation, bitstream and
  binary packaging, variant metadata for the runtime.
* :mod:`repro.core.frontend` — import of ML exchange formats.
* :mod:`repro.core.compiler` — the end-to-end driver tying it together.
"""
