"""Functional execution of workflow pipelines.

The workflow engine simulates *timing*; this module executes the
*data*: it walks a module's ``workflow.pipeline`` op in dataflow order,
runs each task's kernel with the reference interpreter, and returns the
values delivered to each sink. Used for end-to-end functional
verification of compiled applications — the answer a deployment would
compute, independent of where things run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.ir.interp import Interpreter
from repro.core.ir.module import Module
from repro.core.ir.types import ScalarType, TensorType
from repro.errors import SpecificationError, WorkflowError


def execute_pipeline(
    module: Module,
    feeds: Dict[str, Any],
    pipeline_name: Optional[str] = None,
) -> Dict[str, Any]:
    """Run a pipeline functionally; returns {sink name: value}.

    ``feeds`` maps every ``workflow.source`` symbol to its input value
    (numpy arrays for tensors, Python scalars otherwise). Kernels are
    executed in tensor form with the reference interpreter.
    """
    pipeline_op = None
    for op in module.body.operations:
        if op.name != "workflow.pipeline":
            continue
        if pipeline_name is None or \
                op.attr("sym_name") == pipeline_name:
            pipeline_op = op
            break
    if pipeline_op is None:
        raise WorkflowError(
            "module has no workflow.pipeline"
            + (f" named {pipeline_name!r}" if pipeline_name else "")
        )

    interpreter = Interpreter(module)
    values: Dict[int, Any] = {}
    outputs: Dict[str, Any] = {}

    block = pipeline_op.regions[0].blocks[0]
    for op in block.operations:
        if op.name == "workflow.source":
            name = op.attr("sym_name")
            if name not in feeds:
                raise SpecificationError(
                    f"no feed provided for source {name!r}"
                )
            declared = op.results[0].type
            value = feeds[name]
            if isinstance(declared, TensorType):
                value = np.asarray(value, dtype=np.float32)
                if tuple(value.shape) != tuple(declared.shape):
                    raise SpecificationError(
                        f"source {name!r}: feed shape {value.shape} "
                        f"does not match declared {declared.shape}"
                    )
            values[id(op.results[0])] = value
        elif op.name == "workflow.task":
            kernel = op.attr("kernel")
            arguments = [
                values[id(operand)] for operand in op.operands
            ]
            results = interpreter.run(kernel, *arguments)
            for value, result in zip(op.results, results):
                values[id(value)] = result
        elif op.name == "workflow.sink":
            outputs[op.attr("sym_name")] = values[id(op.operands[0])]
        elif op.name == "workflow.yield":
            break
    unknown = set(feeds) - {
        op.attr("sym_name")
        for op in block.operations
        if op.name == "workflow.source"
    }
    if unknown:
        raise SpecificationError(
            f"feeds for unknown sources: {sorted(unknown)}"
        )
    return outputs


def pipeline_io(
    module: Module, pipeline_name: Optional[str] = None
) -> Dict[str, List[str]]:
    """Source and sink names of a pipeline: {"sources": [...],
    "sinks": [...]}."""
    for op in module.body.operations:
        if op.name != "workflow.pipeline":
            continue
        if pipeline_name is not None and \
                op.attr("sym_name") != pipeline_name:
            continue
        block = op.regions[0].blocks[0]
        return {
            "sources": [
                inner.attr("sym_name")
                for inner in block.operations
                if inner.name == "workflow.source"
            ],
            "sinks": [
                inner.attr("sym_name")
                for inner in block.operations
                if inner.name == "workflow.sink"
            ],
        }
    raise WorkflowError("module has no workflow.pipeline")
