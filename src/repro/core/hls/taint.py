"""TaintHLS-style dynamic information flow tracking insertion [18].

Hardware DIFT shadows every architectural register and memory word
with taint bits, propagates them through the datapath in parallel with
the computation, and raises a trap when tainted data reaches an
unchecked egress. At the HLS level this costs:

* shadow flip-flops: one taint bit per pipeline register;
* propagation LUTs: an OR-tree per functional unit;
* shadow BRAM: one extra bit per stored element (modeled as extra
  BRAM kilobits);
* a checker at each memory/stream egress (one cycle, overlapped).

The published TaintHLS results report single-digit-percent area
overhead and negligible performance loss; this model reproduces that
shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.hls.memory import MemoryPlan
from repro.platform.resources import FPGAResources

#: LUTs for the taint-propagation network of one functional unit.
_PROPAGATION_LUTS_PER_UNIT = 12
#: Flip-flops per shadowed pipeline value.
_SHADOW_FFS_PER_VALUE = 2
#: LUTs for one egress checker.
_CHECKER_LUTS = 45


@dataclass(frozen=True)
class TaintReport:
    """Overheads added by DIFT instrumentation."""

    extra: FPGAResources
    extra_latency_cycles: int
    tracked_labels: List[str]
    checkers: int

    def area_overhead_fraction(self, base: FPGAResources) -> float:
        """Taint area as a fraction of the base design's LUTs+FFs."""
        base_cells = base.luts + base.ffs
        if base_cells == 0:
            return 0.0
        return (self.extra.luts + self.extra.ffs) / base_cells


def apply_taint_tracking(
    unit_counts: Dict[str, int],
    inflight_values: int,
    memory_plan: MemoryPlan,
    labels: List[str],
    egress_count: int = 1,
) -> TaintReport:
    """Compute the DIFT hardware added for the given design footprint.

    ``labels`` are the distinct taint labels (one bit lane each);
    multi-label designs replicate the shadow network per label.
    """
    lanes = max(1, len(labels))
    units = sum(
        count for resource, count in unit_counts.items()
    )
    shadow_bram_kb = 0
    for plan in memory_plan.buffers.values():
        # one taint bit per element, per lane
        bits = plan.memref.num_elements * lanes
        shadow_bram_kb += math.ceil(bits / 8 / 1024)

    extra = FPGAResources(
        luts=lanes * (
            _PROPAGATION_LUTS_PER_UNIT * max(units, 1)
            + _CHECKER_LUTS * max(egress_count, 1)
        ),
        ffs=lanes * _SHADOW_FFS_PER_VALUE * max(inflight_values, 1),
        bram_kb=shadow_bram_kb,
    )
    # Checkers sit off the critical path; the only latency cost is the
    # final egress check before 'done'.
    return TaintReport(
        extra=extra,
        extra_latency_cycles=1,
        tracked_labels=sorted(labels),
        checkers=max(egress_count, 1),
    )
