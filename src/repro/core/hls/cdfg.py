"""Control/data-flow graph extraction from kernel-form functions.

The CDFG is a tree of :class:`LoopNode` mirroring the loop nests, each
carrying the straight-line operations of its body as :class:`DFGNode`
entries with explicit dependence edges:

* SSA (value) dependences between operations in the same body;
* memory dependences: a load after a store (or store after store) to
  the same buffer is ordered conservatively unless their constant
  index distance proves independence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ir.module import Function
from repro.core.ir.ops import Operation, Value
from repro.errors import HLSError

#: Operation kinds treated as memory accesses.
MEMORY_OPS = ("kernel.load", "kernel.store")


@dataclass
class DFGNode:
    """One operation inside a loop body."""

    op: Operation
    index: int  # position in body order
    predecessors: List["DFGNode"] = field(default_factory=list)
    successors: List["DFGNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Operation name."""
        return self.op.name

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op.name in MEMORY_OPS

    def buffer(self) -> Optional[Value]:
        """The memref a memory op touches, else None."""
        if self.op.name == "kernel.load":
            return self.op.operands[0]
        if self.op.name == "kernel.store":
            return self.op.operands[1]
        return None

    def indices(self) -> Tuple[Value, ...]:
        """Index operands of a memory op."""
        if self.op.name == "kernel.load":
            return tuple(self.op.operands[1:])
        if self.op.name == "kernel.store":
            return tuple(self.op.operands[2:])
        return ()

    def __repr__(self) -> str:
        return f"<dfg {self.index}:{self.op.name}>"


@dataclass
class LoopNode:
    """A kernel.for in the loop tree."""

    op: Optional[Operation]  # None for the virtual root
    trip_count: int
    depth: int
    body: List[DFGNode] = field(default_factory=list)
    children: List["LoopNode"] = field(default_factory=list)

    @property
    def unroll(self) -> int:
        """Requested unroll factor (1 when absent)."""
        if self.op is None:
            return 1
        return max(1, int(self.op.attr("unroll", 1)))

    @property
    def pipelined(self) -> bool:
        """True when a pipeline directive is present."""
        return self.op is not None and self.op.attr(
            "pipeline_ii") is not None

    @property
    def is_innermost(self) -> bool:
        """True when the loop contains no nested loops."""
        return not self.children

    def walk(self):
        """Yield this loop and all nested loops, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class CDFG:
    """The full control/data-flow graph of one function."""

    function: Function
    root: LoopNode

    def innermost_loops(self) -> List[LoopNode]:
        """All innermost loops, in program order."""
        return [loop for loop in self.root.walk()
                if loop.op is not None and loop.is_innermost]

    def all_loops(self) -> List[LoopNode]:
        """All real loops (excluding the virtual root)."""
        return [loop for loop in self.root.walk() if loop.op is not None]


def _trip_count(op: Operation) -> int:
    lower, upper, step = (
        op.attr("lower"), op.attr("upper"), op.attr("step")
    )
    if upper <= lower:
        return 0
    return (upper - lower + step - 1) // step


def build_cdfg(function: Function) -> CDFG:
    """Extract the CDFG of a kernel-form function."""
    if function.is_declaration:
        raise HLSError(
            f"cannot synthesize declaration {function.name!r}"
        )
    for op in function.walk():
        if op.dialect == "tensor":
            raise HLSError(
                f"function {function.name!r} still contains tensor ops; "
                f"run LowerTensorPass first"
            )
    root = LoopNode(op=None, trip_count=1, depth=0)
    _populate(function.entry_block.operations, root)
    return CDFG(function, root)


def _populate(operations, parent: LoopNode) -> None:
    for op in operations:
        if op.name == "kernel.for":
            loop = LoopNode(
                op=op,
                trip_count=_trip_count(op),
                depth=parent.depth + 1,
            )
            parent.children.append(loop)
            body_block = op.regions[0].blocks[0]
            _populate(body_block.operations, loop)
        elif op.name in ("kernel.yield", "func.return"):
            continue
        else:
            node = DFGNode(op=op, index=len(parent.body))
            parent.body.append(node)
    _wire_dependences(parent)


def _wire_dependences(loop: LoopNode) -> None:
    by_result: Dict[int, DFGNode] = {}
    for node in loop.body:
        for result in node.op.results:
            by_result[id(result)] = node
    last_store: Dict[int, DFGNode] = {}
    for node in loop.body:
        for operand in node.op.operands:
            producer = by_result.get(id(operand))
            if producer is not None and producer is not node:
                _add_edge(producer, node)
        buffer = node.buffer()
        if buffer is None:
            continue
        key = id(buffer)
        if node.op.name == "kernel.load":
            prior = last_store.get(key)
            if prior is not None and not _provably_disjoint(prior, node):
                _add_edge(prior, node)
        else:  # store
            prior = last_store.get(key)
            if prior is not None:
                _add_edge(prior, node)
            last_store[key] = node


def _add_edge(source: DFGNode, target: DFGNode) -> None:
    if target not in source.successors:
        source.successors.append(target)
        target.predecessors.append(source)


def _provably_disjoint(store: DFGNode, load: DFGNode) -> bool:
    """True when a store and load clearly touch different elements.

    Conservative: only constant indices that differ prove disjointness;
    identical index value tuples prove a dependence; anything symbolic
    is treated as potentially aliasing (returns False).
    """
    store_idx = store.indices()
    load_idx = load.indices()
    if len(store_idx) != len(load_idx):
        return False
    all_const = True
    for a, b in zip(store_idx, load_idx):
        const_a = _const_of(a)
        const_b = _const_of(b)
        if const_a is None or const_b is None:
            all_const = False
            break
        if const_a != const_b:
            return True
    if all_const:
        return False  # identical constant indices: true dependence
    return False


def _const_of(value: Value) -> Optional[float]:
    producer = value.producer
    if producer is not None and producer.name == "kernel.const":
        return producer.attr("value")
    return None


def loop_carried_chain(loop: LoopNode) -> List[DFGNode]:
    """The load→…→store recurrence chain on one buffer, if present.

    Detects the accumulation idiom (``c = load; ...; store c'``) that
    limits pipelining: a load and a store on the same buffer with the
    same index expressions, connected through arithmetic. The
    dependence is only *loop-carried* when the shared indices are
    invariant in this loop — if the loop's own induction variable
    addresses the element, consecutive iterations touch different
    elements (e.g. the ikj matmul form) and the pipeline is free.
    Returns the SSA path from the load to the store, or an empty list.
    """
    loop_iv = None
    if loop.op is not None and loop.op.regions:
        blocks = loop.op.regions[0].blocks
        if blocks and blocks[0].arguments:
            loop_iv = blocks[0].arguments[0]

    def depends_on_iv(value: Value) -> bool:
        if loop_iv is None:
            return False
        frontier = [value]
        visited = set()
        while frontier:
            current = frontier.pop()
            if current is loop_iv:
                return True
            if id(current) in visited:
                continue
            visited.add(id(current))
            if current.producer is not None:
                frontier.extend(current.producer.operands)
        return False

    for store in loop.body:
        if store.op.name != "kernel.store":
            continue
        buffer = store.buffer()
        for load in loop.body:
            if load.op.name != "kernel.load":
                continue
            if load.buffer() is not buffer:
                continue
            if load.indices() != store.indices():
                continue
            if any(depends_on_iv(index) for index in store.indices()):
                continue  # different element every iteration
            path = _ssa_path(load, store)
            if path:
                return path
    return []


def _ssa_path(source: DFGNode, target: DFGNode) -> List[DFGNode]:
    """Shortest dependence path source→target, or empty list."""
    frontier = [(source, [source])]
    visited = {id(source)}
    while frontier:
        node, path = frontier.pop(0)
        if node is target:
            return path
        for successor in node.successors:
            if id(successor) not in visited:
                visited.add(id(successor))
                frontier.append((successor, path + [successor]))
    return []
