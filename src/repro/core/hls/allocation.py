"""Functional-unit allocation, binding and area estimation.

Given the schedules of all loops, allocation decides how many units of
each class to instantiate (enough for the worst concurrent demand,
never more than the schedule can keep busy) and binds operations to
unit instances. The area model then sums unit footprints, pipeline
registers, FSM control logic and the memory plan's BRAM/register usage
into an :class:`~repro.platform.resources.FPGAResources` estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.hls.cdfg import CDFG
from repro.core.hls.memory import MemoryPlan
from repro.core.hls.scheduling import (
    RESOURCE_CLASS,
    Schedule,
    latency_of,
)
from repro.platform.resources import FPGAResources

#: Area of one functional unit per class.
UNIT_AREA: Dict[str, FPGAResources] = {
    "fadd": FPGAResources(luts=420, ffs=580, bram_kb=0, dsps=2),
    "fmul": FPGAResources(luts=130, ffs=190, bram_kb=0, dsps=3),
    "fdiv": FPGAResources(luts=830, ffs=950, bram_kb=0, dsps=0),
    "special": FPGAResources(luts=1_350, ffs=900, bram_kb=0, dsps=8),
    "int": FPGAResources(luts=64, ffs=64, bram_kb=0, dsps=0),
    "cmp": FPGAResources(luts=40, ffs=16, bram_kb=0, dsps=0),
}

_INT_OPS = ("kernel.addi", "kernel.subi", "kernel.muli", "kernel.divi")
_CMP_OPS = ("kernel.cmplt", "kernel.cmple", "kernel.cmpeq",
            "kernel.cmpgt", "kernel.select")

#: FSM + steering logic cost per schedule state.
_CONTROL_LUTS_PER_STATE = 18
_CONTROL_FFS_PER_STATE = 9
#: Pipeline register cost per in-flight 32-bit value.
_REGISTER_FFS_PER_VALUE = 36


@dataclass
class Binding:
    """Operation-to-unit assignment for one resource class."""

    resource: str
    instances: int
    assignments: Dict[int, int] = field(default_factory=dict)  # id(op)->unit


@dataclass
class Allocation:
    """Full allocation result for one accelerator."""

    unit_counts: Dict[str, int] = field(default_factory=dict)
    bindings: List[Binding] = field(default_factory=list)
    resources: FPGAResources = field(default_factory=FPGAResources)

    def describe(self) -> str:
        """One-line unit inventory."""
        inventory = ", ".join(
            f"{count}x{name}" for name, count in sorted(
                self.unit_counts.items())
        )
        return inventory or "no constrained units"


def _class_of(op_name: str) -> str:
    if op_name in _INT_OPS:
        return "int"
    if op_name in _CMP_OPS:
        return "cmp"
    return RESOURCE_CLASS.get(op_name, "")


def allocate(
    cdfg: CDFG,
    schedules: Dict[int, Schedule],
    memory_plan: MemoryPlan,
) -> Allocation:
    """Allocate and bind; returns the allocation with area estimate."""
    allocation = Allocation()

    # -- unit counts: worst concurrent demand across all loop schedules
    demand_per_class: Dict[str, int] = {}
    states = 0
    inflight_values = 0
    for loop_id, schedule in schedules.items():
        states += schedule.depth
        concurrent = _peak_concurrency(schedule)
        for resource, peak in concurrent.items():
            demand_per_class[resource] = max(
                demand_per_class.get(resource, 0), peak
            )
        if schedule.loop is not None:
            inflight_values += len(schedule.loop.body)

    for resource, count in demand_per_class.items():
        if resource.startswith("memport"):
            continue
        allocation.unit_counts[resource] = count

    # -- binding: round-robin per class in start-cycle order
    for loop_id, schedule in schedules.items():
        if schedule.loop is None:
            continue
        _bind_loop(schedule, allocation)

    # -- area
    total = FPGAResources()
    for resource, count in allocation.unit_counts.items():
        area = UNIT_AREA.get(resource)
        if area is not None:
            total = total + area.scaled(count)
    total = total + FPGAResources(
        luts=_CONTROL_LUTS_PER_STATE * max(states, 1),
        ffs=_CONTROL_FFS_PER_STATE * max(states, 1)
        + _REGISTER_FFS_PER_VALUE * inflight_values,
    )
    bram_kb = math.ceil(memory_plan.total_bram_blocks * 18 / 8)
    total = total + FPGAResources(
        bram_kb=bram_kb,
        ffs=memory_plan.total_register_bits,
    )
    allocation.resources = total
    return allocation


def _peak_concurrency(schedule: Schedule) -> Dict[str, int]:
    """Peak per-class concurrency over the schedule's cycles.

    For pipelined loops, overlapping iterations raise concurrency: an
    op class used ``n`` times per iteration needs ``ceil(n / II)``
    units to sustain the pipeline... more precisely usage wraps modulo
    II, so we fold start cycles into II buckets.
    """
    loop = schedule.loop
    if loop is None:
        return {}
    modulo = schedule.ii if schedule.pipelined else None
    usage: Dict[int, Dict[str, int]] = {}
    for node in loop.body:
        resource = _class_of(node.op.name)
        if not resource or resource == "memport":
            continue
        start = schedule.start_cycle.get(id(node), 0)
        bucket = start % modulo if modulo else start
        cycle_usage = usage.setdefault(bucket, {})
        cycle_usage[resource] = (
            cycle_usage.get(resource, 0) + schedule.unroll
        )
    peak: Dict[str, int] = {}
    for cycle_usage in usage.values():
        for resource, count in cycle_usage.items():
            peak[resource] = max(peak.get(resource, 0), count)
    return peak


def _bind_loop(schedule: Schedule, allocation: Allocation) -> None:
    loop = schedule.loop
    per_class: Dict[str, Binding] = {}
    next_unit: Dict[str, int] = {}
    for node in sorted(
        loop.body, key=lambda n: schedule.start_cycle.get(id(n), 0)
    ):
        resource = _class_of(node.op.name)
        if not resource or resource == "memport":
            continue
        instances = allocation.unit_counts.get(resource, 1)
        binding = per_class.get(resource)
        if binding is None:
            binding = Binding(resource=resource, instances=instances)
            per_class[resource] = binding
            allocation.bindings.append(binding)
        unit = next_unit.get(resource, 0)
        binding.assignments[id(node.op)] = unit
        next_unit[resource] = (unit + 1) % max(1, instances)
