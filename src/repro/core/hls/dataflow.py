"""Accelerator dataflow chaining.

Paper §III-B: "Hardware variants could implement a chain of tensor
operations directly on the FPGA logic before writing back to main
memory." Chaining connects synthesized accelerators with on-chip
FIFOs: intermediate buffers never round-trip through DDR, and the
stages overlap at invocation granularity (stage *i* works on batch
*k* while stage *i+1* works on batch *k-1*).

The model: a :class:`ChainedDesign` whose

* resources are the sum of the stages plus FIFO BRAM,
* per-batch interval is the slowest stage,
* pipeline fill latency is the sum of stage latencies,
* external traffic is only the first stage's inputs and the last
  stage's outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.hls.bambu import AcceleratorDesign
from repro.errors import HLSError
from repro.platform.interconnect import Link
from repro.platform.resources import FPGAResources
from repro.utils.validation import check_positive

#: FIFO sizing: double-buffer the largest intermediate.
_FIFO_SLACK = 2


@dataclass
class ChainedDesign:
    """A pipeline of accelerators connected by on-chip FIFOs."""

    stages: List[AcceleratorDesign]
    fifo_bram_kb: int
    clock_hz: float

    @property
    def resources(self) -> FPGAResources:
        """Fabric footprint: all stages plus the FIFOs."""
        total = FPGAResources(bram_kb=self.fifo_bram_kb)
        for stage in self.stages:
            total = total + stage.resources
        return total

    @property
    def fill_latency_s(self) -> float:
        """Time for the first batch to traverse the whole chain."""
        return sum(
            stage.latency_cycles for stage in self.stages
        ) / self.clock_hz

    @property
    def batch_interval_s(self) -> float:
        """Steady-state time between output batches."""
        return max(
            stage.latency_cycles for stage in self.stages
        ) / self.clock_hz

    def total_time_s(self, batches: int) -> float:
        """Wall time to push ``batches`` through the chain."""
        check_positive("batches", batches)
        return self.fill_latency_s + (batches - 1) * \
            self.batch_interval_s

    def external_bytes_per_batch(self) -> int:
        """Bytes crossing the memory boundary per batch.

        Only the chain's first inputs and last outputs touch DDR;
        everything between stays in the FIFOs.
        """
        first = self.stages[0]
        last = self.stages[-1]
        if len(self.stages) == 1:
            return first.data_bytes()
        first_inputs = first.data_bytes() - _output_bytes(first)
        return first_inputs + _output_bytes(last)

    @property
    def dynamic_watts(self) -> float:
        """All stages active simultaneously."""
        return sum(stage.dynamic_watts for stage in self.stages)


def _output_bytes(design: AcceleratorDesign) -> int:
    """Bytes of the design's out-parameters (last memref args)."""
    function = design.cdfg.function
    from repro.core.ir.types import MemRefType

    memrefs = [
        t for t in function.type.inputs if isinstance(t, MemRefType)
    ]
    if not memrefs:
        return 0
    # lowered kernels append out-params last; one output assumed
    return memrefs[-1].size_bytes


def chain_designs(
    designs: Sequence[AcceleratorDesign],
) -> ChainedDesign:
    """Connect accelerators into a dataflow chain.

    All stages must share a clock; intermediate FIFO capacity is the
    largest hand-off, double-buffered.
    """
    if not designs:
        raise HLSError("cannot chain zero designs")
    clocks = {design.options.clock_hz for design in designs}
    if len(clocks) != 1:
        raise HLSError(
            f"chained stages must share a clock, got "
            f"{sorted(clocks)}"
        )
    fifo_bytes = 0
    for stage in designs[:-1]:
        fifo_bytes = max(fifo_bytes, _output_bytes(stage))
    fifo_bram_kb = _FIFO_SLACK * math.ceil(fifo_bytes / 1024)
    return ChainedDesign(
        stages=list(designs),
        fifo_bram_kb=fifo_bram_kb,
        clock_hz=clocks.pop(),
    )


def staged_total_time_s(
    designs: Sequence[AcceleratorDesign],
    link: Link,
    batches: int,
) -> float:
    """Baseline: the same stages with DDR round-trips in between.

    Each batch runs stage-by-stage, writing intermediates to memory
    over ``link`` and reading them back — no overlap between stages.
    """
    check_positive("batches", batches)
    per_batch = 0.0
    for index, stage in enumerate(designs):
        per_batch += stage.latency_seconds
        if index < len(designs) - 1:
            handoff = _output_bytes(stage)
            per_batch += 2 * link.transfer_time(handoff)
    return per_batch * batches
