"""On-chip memory planning: banking, partitioning and port assignment.

Implements the memory-subsystem customization of paper §III-B: each
buffer of a kernel gets a bank layout so the scheduled loop can issue
all its accesses every II cycles — cyclic or block partitioning in the
style of generalized memory partitioning (Wang et al. [28]) with
dual-port BRAM banks, or ``complete`` partitioning into registers for
tiny buffers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hls.cdfg import CDFG, DFGNode
from repro.core.ir.ops import Value
from repro.core.ir.types import MemRefType
from repro.errors import HLSError
from repro.utils.validation import check_positive

#: BRAM block granularity (bits) — 18 kbit blocks.
BRAM_BLOCK_BITS = 18 * 1024
#: Ports of one BRAM bank (true dual port).
PORTS_PER_BANK = 2
#: Buffers at or below this element count partition completely.
COMPLETE_PARTITION_LIMIT = 64


@dataclass
class BufferPlan:
    """Bank layout of one buffer."""

    value: Value
    memref: MemRefType
    scheme: str = "cyclic"  # cyclic | block | complete
    factor: int = 1  # number of banks
    accesses_per_iteration: int = 0

    @property
    def ports(self) -> int:
        """Concurrent ports the layout provides."""
        if self.scheme == "complete":
            return self.memref.num_elements  # registers: unlimited-ish
        return self.factor * PORTS_PER_BANK

    @property
    def bram_blocks(self) -> int:
        """BRAM blocks consumed (0 when registers are used)."""
        if self.scheme == "complete":
            return 0
        bits_per_bank = math.ceil(
            self.memref.num_elements / self.factor
        ) * self.memref.element.bit_width
        return self.factor * max(
            1, math.ceil(bits_per_bank / BRAM_BLOCK_BITS)
        )

    @property
    def register_bits(self) -> int:
        """Flip-flop bits when completely partitioned."""
        if self.scheme != "complete":
            return 0
        return self.memref.num_elements * self.memref.element.bit_width


@dataclass
class MemoryPlan:
    """Bank layouts for every buffer of a function."""

    buffers: Dict[int, BufferPlan] = field(default_factory=dict)

    def ports_map(self) -> Dict[int, int]:
        """id(buffer value) -> available ports (for the scheduler)."""
        return {key: plan.ports for key, plan in self.buffers.items()}

    @property
    def total_bram_blocks(self) -> int:
        """All BRAM blocks across buffers."""
        return sum(plan.bram_blocks for plan in self.buffers.values())

    @property
    def total_register_bits(self) -> int:
        """All register bits from complete partitioning."""
        return sum(plan.register_bits for plan in self.buffers.values())

    def plan_for(self, value: Value) -> Optional[BufferPlan]:
        """Plan of one buffer, if planned."""
        return self.buffers.get(id(value))


def cyclic_conflict_free(offsets: List[int], stride: int, unroll: int,
                         banks: int) -> bool:
    """Check Wang-style cyclic mapping: distinct banks per cycle.

    For unroll copies ``k`` of accesses with constant ``offsets`` and
    per-iteration ``stride``, every address ``stride*k + offset`` in
    one cycle must land in a distinct bank modulo ``banks``.
    """
    check_positive("banks", banks)
    seen = set()
    for copy in range(unroll):
        for offset in offsets:
            bank = (stride * copy + offset) % banks
            if bank in seen:
                return False
            seen.add(bank)
    return True


def _required_ports(accesses: int, unroll: int, target_ii: int) -> int:
    return max(1, math.ceil(accesses * unroll / max(1, target_ii)))


def plan_memories(
    cdfg: CDFG,
    unroll: int = 1,
    target_ii: int = 1,
    strategy: str = "auto",
    max_factor: int = 64,
) -> MemoryPlan:
    """Derive bank layouts from the access pattern of the loop nests.

    ``strategy``: ``auto`` (choose per buffer), ``cyclic``, ``block``
    or ``none`` (single bank, the unoptimized baseline).
    """
    if strategy not in ("auto", "cyclic", "block", "none"):
        raise HLSError(f"unknown memory strategy {strategy!r}")
    plan = MemoryPlan()
    access_counts = _count_accesses(cdfg)
    explicit = _explicit_directives(cdfg)

    for value, count in access_counts.items():
        memref = value.type
        if not isinstance(memref, MemRefType):
            continue
        directive = explicit.get(id(value))
        if directive is not None:
            scheme, factor = directive
        elif strategy == "none":
            scheme, factor = "cyclic", 1
        elif (
            memref.num_elements <= COMPLETE_PARTITION_LIMIT
            and value.producer is not None
            and value.producer.name == "kernel.alloc"
        ):
            # Local scratch buffers small enough become registers;
            # interface buffers always stay addressable memories.
            scheme, factor = "complete", memref.num_elements
        else:
            needed = _required_ports(count, unroll, target_ii)
            factor = 1
            while factor * PORTS_PER_BANK < needed and factor < max_factor:
                factor *= 2
            if strategy == "block":
                scheme = "block"
            elif strategy == "cyclic":
                scheme = "cyclic"
            else:
                # SoA-layout record buffers bank naturally by field
                # (block); streaming unit-stride buffers prefer cyclic.
                scheme = "block" if memref.layout == "soa" else "cyclic"
        plan.buffers[id(value)] = BufferPlan(
            value=value,
            memref=memref,
            scheme=scheme,
            factor=max(1, factor),
            accesses_per_iteration=count,
        )
    return plan


def _count_accesses(cdfg: CDFG) -> Dict[Value, int]:
    """Accesses per innermost-loop iteration for each buffer.

    Buffers only touched outside innermost loops still appear with
    their total straight-line access count.
    """
    counts: Dict[int, int] = {}
    values: Dict[int, Value] = {}

    def record(node: DFGNode) -> None:
        buffer = node.buffer()
        if buffer is None:
            return
        counts[id(buffer)] = counts.get(id(buffer), 0) + 1
        values[id(buffer)] = buffer

    for loop in cdfg.root.walk():
        for node in loop.body:
            record(node)
    return {values[key]: count for key, count in counts.items()}


def _explicit_directives(cdfg: CDFG) -> Dict[int, tuple]:
    """hw.partition directives found in the function body."""
    directives: Dict[int, tuple] = {}
    for op in cdfg.function.walk():
        if op.name != "hw.partition":
            continue
        directives[id(op.operands[0])] = (
            op.attr("scheme"), int(op.attr("factor"))
        )
    return directives
