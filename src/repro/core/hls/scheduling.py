"""Resource-constrained scheduling of loop bodies.

A classical HLS flow (Bambu [27]): operations get ASAP/ALAP bounds,
then list scheduling with a mobility priority packs them into control
steps subject to functional-unit and memory-port constraints. For
pipelined loops the initiation interval is the max of

* **ResMII** — resource-minimum II from the busiest constrained
  resource class, and
* **RecMII** — recurrence-minimum II from the loop-carried
  accumulation chain (see :func:`repro.core.hls.cdfg.loop_carried_chain`).

Latencies are in clock cycles at the accelerator clock.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hls.cdfg import DFGNode, LoopNode, loop_carried_chain
from repro.errors import SchedulingError
from repro.utils.validation import check_positive

#: Cycle latency of each operation kind (fully pipelined units, II=1).
OP_LATENCY: Dict[str, int] = {
    "kernel.load": 2,
    "kernel.store": 1,
    "kernel.addf": 3,
    "kernel.subf": 3,
    "kernel.mulf": 4,
    "kernel.divf": 14,
    "kernel.maxf": 1,
    "kernel.minf": 1,
    "kernel.addi": 1,
    "kernel.subi": 1,
    "kernel.muli": 2,
    "kernel.divi": 18,
    "kernel.cmplt": 1,
    "kernel.cmple": 1,
    "kernel.cmpeq": 1,
    "kernel.cmpgt": 1,
    "kernel.select": 1,
    "kernel.negf": 1,
    "kernel.expf": 18,
    "kernel.sqrtf": 12,
    "kernel.tanhf": 20,
    "kernel.sigmoidf": 20,
    "kernel.absf": 1,
    "kernel.const": 0,
    "kernel.view": 0,
    "kernel.alloc": 0,
    "secure.taint": 0,
    "secure.check": 1,
    "secure.declassify": 0,
    "secure.encrypt": 8,
    "secure.decrypt": 8,
}

#: Resource class of each constrained operation kind.
RESOURCE_CLASS: Dict[str, str] = {
    "kernel.mulf": "fmul",
    "kernel.divf": "fdiv",
    "kernel.addf": "fadd",
    "kernel.subf": "fadd",
    "kernel.expf": "special",
    "kernel.sqrtf": "special",
    "kernel.tanhf": "special",
    "kernel.sigmoidf": "special",
    "kernel.load": "memport",
    "kernel.store": "memport",
    "secure.encrypt": "crypto",
    "secure.decrypt": "crypto",
}


@dataclass
class ResourceBudget:
    """Available functional units per class for one accelerator."""

    fadd: int = 4
    fmul: int = 4
    fdiv: int = 2
    special: int = 4
    crypto: int = 1
    memport: int = 2  # ports per memory bank; scaled by the memory plan

    def limit(self, resource: str) -> int:
        """Unit count for a class; unconstrained classes are unlimited."""
        return getattr(self, resource, 10**9)

    def scaled(self, factor: int) -> "ResourceBudget":
        """Budget with functional units multiplied (unrolled bodies).

        Memory ports are NOT scaled: they are a physical property of
        the banks; only the memory plan (banking) adds ports.
        """
        check_positive("factor", factor)
        return ResourceBudget(
            fadd=self.fadd * factor,
            fmul=self.fmul * factor,
            fdiv=self.fdiv * factor,
            special=self.special * factor,
            crypto=self.crypto,
            memport=self.memport,
        )


def latency_of(node: DFGNode) -> int:
    """Cycle latency of one operation (unknown ops take 1 cycle)."""
    return OP_LATENCY.get(node.op.name, 1)


@dataclass
class Schedule:
    """The schedule of one loop body."""

    loop: Optional[LoopNode]
    start_cycle: Dict[int, int] = field(default_factory=dict)  # id(node)
    depth: int = 0  # body latency (cycles for one iteration)
    ii: int = 1  # initiation interval when pipelined
    pipelined: bool = False
    unroll: int = 1
    resource_usage: Dict[str, int] = field(default_factory=dict)

    def cycles_for_trips(self, trips: int) -> int:
        """Total cycles to run ``trips`` iterations of this body."""
        if trips <= 0:
            return 0
        effective_trips = math.ceil(trips / self.unroll)
        if self.pipelined:
            return self.depth + (effective_trips - 1) * self.ii
        return effective_trips * (self.depth + 1)


def schedule_loop(
    loop: LoopNode,
    budget: Optional[ResourceBudget] = None,
    memory_ports: Optional[Dict[int, int]] = None,
) -> Schedule:
    """Schedule an innermost loop body.

    ``memory_ports`` maps ``id(buffer value)`` to the port count its
    memory plan grants; buffers not listed get ``budget.memport``.
    """
    budget = budget or ResourceBudget()
    unroll = loop.unroll
    body = loop.body
    if not body:
        return Schedule(loop=loop, depth=1, ii=1,
                        pipelined=loop.pipelined, unroll=1)

    # Depth comes from scheduling ONE body copy against the per-copy
    # budget; all unroll effects (replicated demand vs shared ports
    # and unit pools) are folded into the initiation interval — the
    # standard modulo-scheduling decomposition.
    effective_budget = budget.scaled(unroll) if unroll > 1 else budget

    start = _list_schedule(body, budget, memory_ports, 1)
    depth = 0
    for node in body:
        depth = max(depth, start[id(node)] + latency_of(node))

    usage = _resource_demand(body, unroll)
    schedule = Schedule(
        loop=loop,
        start_cycle=start,
        depth=max(depth, 1),
        pipelined=loop.pipelined,
        unroll=unroll,
        resource_usage=usage,
    )
    if loop.pipelined:
        schedule.ii = _initiation_interval(
            loop, effective_budget, memory_ports, usage
        )
    else:
        schedule.ii = schedule.depth
    interleave = max(1, int(loop.op.attr("interleave", 1)))
    if interleave > 1:
        # reduction-tree epilogue over the partial sums
        schedule.depth += int(
            math.ceil(math.log2(interleave))
        ) * OP_LATENCY["kernel.addf"]
    return schedule


def _resource_demand(body: List[DFGNode], unroll: int) -> Dict[str, int]:
    demand: Dict[str, int] = {}
    for node in body:
        resource = RESOURCE_CLASS.get(node.op.name)
        if resource is not None:
            demand[resource] = demand.get(resource, 0) + unroll
    return demand


def _ports_for(node: DFGNode, budget: ResourceBudget,
               memory_ports: Optional[Dict[int, int]]) -> int:
    buffer = node.buffer()
    if buffer is not None and memory_ports:
        ports = memory_ports.get(id(buffer))
        if ports is not None:
            return ports
    return budget.memport


def _list_schedule(
    body: List[DFGNode],
    budget: ResourceBudget,
    memory_ports: Optional[Dict[int, int]],
    unroll: int,
) -> Dict[int, int]:
    """Mobility-priority list scheduling; returns start cycles.

    Runs in O(n log n + E) with amortized O(1) resource placement,
    replacing the classical rescan-all-unscheduled sweep (kept as a
    reference implementation in the test suite) while producing
    byte-identical start cycles. Two invariants reproduce the sweep's
    placement order exactly:

    * Nodes are popped by ``(mobility, program index)`` priority from a
      *current-round* heap; a node whose readiness completes while the
      round is in flight joins the current round only if its priority
      is still ahead of the sweep cursor (i.e. greater than the
      just-scheduled node's priority), otherwise it waits in the
      *next-round* heap — exactly when the reference sweep would have
      reached it this pass vs. the next.
    * Resource placement asks a per-resource tracker for the first free
      cycle at or after the dependence-ready cycle, which is the fixed
      point the reference's ``cycle += 1`` probing converges to.
    """
    asap = _asap(body)
    alap = _alap(body, max(asap[id(n)] + latency_of(n) for n in body))
    mobility = {
        id(node): alap[id(node)] - asap[id(node)] for node in body
    }

    start: Dict[int, int] = {}
    tracker = _ResourceTracker(budget, memory_ports, unroll)
    remaining = {id(node): len(node.predecessors) for node in body}
    current: List[tuple] = [
        (mobility[id(node)], node.index, node)
        for node in body
        if not node.predecessors
    ]
    heapq.heapify(current)
    upcoming: List[tuple] = []
    while current or upcoming:
        if not current:
            current, upcoming = upcoming, current
        priority = heapq.heappop(current)
        mob, index, node = priority
        ready_at = 0
        for predecessor in node.predecessors:
            ready_at = max(
                ready_at, start[id(predecessor)] + latency_of(predecessor)
            )
        start[id(node)] = tracker.place(node, ready_at)
        for successor in node.successors:
            remaining[id(successor)] -= 1
            if remaining[id(successor)] == 0:
                entry = (
                    mobility[id(successor)], successor.index, successor
                )
                if entry[:2] > (mob, index):
                    heapq.heappush(current, entry)
                else:
                    heapq.heappush(upcoming, entry)
    if len(start) != len(body):
        raise SchedulingError("dependence cycle in loop body")
    return start


class _ResourceTracker:
    """Per-resource issue-slot occupancy with next-free-cycle jumping.

    :meth:`place` returns the earliest cycle at or after ``ready_at``
    where the node's resource has a free issue slot. Cycles that fill
    up are linked into a path-compressed jump chain, so a query lands
    on the next free cycle in amortized near-constant time instead of
    probing every occupied cycle one by one. A demand that can never
    fit (``unroll`` concurrent issues exceeding the per-cycle limit)
    raises :class:`SchedulingError` naming the oversubscribed resource
    immediately, rather than after exhausting a probe guard.
    """

    #: Defensive schedule-horizon ceiling (matches the old probe guard).
    MAX_CYCLE = 100_000

    def __init__(
        self,
        budget: ResourceBudget,
        memory_ports: Optional[Dict[int, int]],
        unroll: int,
    ):
        self.budget = budget
        self.memory_ports = memory_ports
        self.unroll = unroll
        # used[key][cycle] -> issue slots taken at that cycle
        self._used: Dict[str, Dict[int, int]] = {}
        # next_free[key][cycle] -> known-full cycle's forward pointer
        self._next_free: Dict[str, Dict[int, int]] = {}

    def _limit_for(self, node: DFGNode, key: str) -> int:
        if key.startswith("memport:"):
            return _ports_for(node, self.budget, self.memory_ports)
        return self.budget.limit(key)

    @staticmethod
    def _describe(node: DFGNode, key: str) -> str:
        """Human-readable resource name for error messages."""
        if key.startswith("memport:"):
            buffer = node.buffer()
            name = getattr(buffer, "name", None)
            return f"memport(%{name})" if name else "memport"
        return key

    def place(self, node: DFGNode, ready_at: int) -> int:
        key = _resource_key(node)
        if key is None:
            return ready_at
        limit = self._limit_for(node, key)
        if self.unroll > limit:
            raise SchedulingError(
                f"cannot place {node.op.name}: resource "
                f"{self._describe(node, key)!r} oversubscribed "
                f"({self.unroll} concurrent issues per cycle vs "
                f"limit {limit})"
            )
        used = self._used.setdefault(key, {})
        jump = self._next_free.setdefault(key, {})
        cycle = ready_at
        full_path: List[int] = []
        while True:
            target = jump.get(cycle)
            if target is not None:
                full_path.append(cycle)
                cycle = target
                continue
            if used.get(cycle, 0) + self.unroll <= limit:
                break
            full_path.append(cycle)
            cycle += 1
        for full in full_path:  # path compression
            jump[full] = cycle
        if cycle > self.MAX_CYCLE:
            raise SchedulingError(
                f"cannot place {node.op.name}: resource "
                f"{self._describe(node, key)!r} saturated past "
                f"cycle {self.MAX_CYCLE}"
            )
        used[cycle] = used.get(cycle, 0) + self.unroll
        if used[cycle] + self.unroll > limit:
            jump[cycle] = cycle + 1
        return cycle


def _resource_key(node: DFGNode) -> Optional[str]:
    resource = RESOURCE_CLASS.get(node.op.name)
    if resource is None:
        return None
    if resource == "memport":
        buffer = node.buffer()
        return f"memport:{id(buffer)}"
    return resource


def _asap(body: List[DFGNode]) -> Dict[int, int]:
    start: Dict[int, int] = {}
    for node in body:  # body is in topological (program) order
        ready = 0
        for predecessor in node.predecessors:
            ready = max(
                ready, start[id(predecessor)] + latency_of(predecessor)
            )
        start[id(node)] = ready
    return start


def _alap(body: List[DFGNode], horizon: int) -> Dict[int, int]:
    finish: Dict[int, int] = {}
    for node in reversed(body):
        latest = horizon
        for successor in node.successors:
            latest = min(latest, finish[id(successor)])
        finish[id(node)] = latest - latency_of(node)
    return finish


def _initiation_interval(
    loop: LoopNode,
    budget: ResourceBudget,
    memory_ports: Optional[Dict[int, int]],
    usage: Dict[str, int],
) -> int:
    target = max(1, int(loop.op.attr("pipeline_ii", 1)))

    res_mii = 1
    for resource, demand in usage.items():
        if resource == "memport":
            continue
        limit = budget.limit(resource)
        res_mii = max(res_mii, math.ceil(demand / limit))
    # memory ports: per-buffer demand
    per_buffer: Dict[int, int] = {}
    for node in loop.body:
        buffer = node.buffer()
        if buffer is not None:
            per_buffer[id(buffer)] = (
                per_buffer.get(id(buffer), 0) + loop.unroll
            )
    for buffer_id, demand in per_buffer.items():
        ports = budget.memport
        if memory_ports and buffer_id in memory_ports:
            ports = memory_ports[buffer_id]
        res_mii = max(res_mii, math.ceil(demand / ports))

    chain = loop_carried_chain(loop)
    rec_mii = sum(latency_of(node) for node in chain) if chain else 1
    # Accumulation interleaving (see passes/interleave.py): I partial
    # sums stretch the recurrence distance to I iterations.
    interleave = max(1, int(loop.op.attr("interleave", 1)))
    rec_mii = math.ceil(rec_mii / interleave)

    return max(target, res_mii, rec_mii)


def nest_cycles(loop: LoopNode, schedules: Dict[int, Schedule]) -> int:
    """Total cycles for a loop nest given innermost schedules.

    Non-innermost loops contribute trip-count multipliers plus 2 cycles
    of control overhead per iteration.
    """
    if loop.op is not None and loop.is_innermost:
        schedule = schedules[id(loop)]
        return schedule.cycles_for_trips(loop.trip_count)
    inner = 0
    for child in loop.children:
        inner += nest_cycles(child, schedules)
    # straight-line ops at this level
    inner += sum(latency_of(node) for node in loop.body)
    if loop.op is None:
        return inner
    return loop.trip_count * (inner + 2)
