"""Library of optimized cryptographic accelerator cores (paper §III-A).

EVEREST promises "a comprehensive library of optimized accelerators for
memory and near memory encryption, fitting the area, energy and
performance constraints of the platforms". Each :class:`CryptoCore`
models one such IP: area footprint, pipeline throughput, fixed latency
and power. The HLS driver instantiates the core matching the cipher the
security pass selected; the runtime data-protection layer uses the same
figures to cost in-transit encryption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SecurityError
from repro.platform.resources import FPGAResources
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CryptoCore:
    """One hardware crypto IP."""

    name: str
    area: FPGAResources
    bytes_per_cycle: float
    fixed_latency_cycles: int
    dynamic_watts: float
    authenticated: bool = True

    def cycles_for(self, num_bytes: int) -> int:
        """Cycles to process ``num_bytes`` (pipeline + fixed latency)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0
        import math

        return self.fixed_latency_cycles + math.ceil(
            num_bytes / self.bytes_per_cycle
        )

    def throughput_at(self, clock_hz: float) -> float:
        """Steady-state bytes/second at a clock frequency."""
        check_positive("clock_hz", clock_hz)
        return self.bytes_per_cycle * clock_hz


CRYPTO_LIBRARY: Dict[str, CryptoCore] = {
    "aes128-gcm": CryptoCore(
        name="aes128-gcm",
        area=FPGAResources(luts=6_500, ffs=5_200, bram_kb=18, dsps=0),
        bytes_per_cycle=16.0,
        fixed_latency_cycles=21,
        dynamic_watts=0.9,
    ),
    "aes256-gcm": CryptoCore(
        name="aes256-gcm",
        area=FPGAResources(luts=8_900, ffs=7_000, bram_kb=18, dsps=0),
        bytes_per_cycle=16.0,
        fixed_latency_cycles=29,
        dynamic_watts=1.2,
    ),
    "chacha20-poly1305": CryptoCore(
        name="chacha20-poly1305",
        area=FPGAResources(luts=4_800, ffs=3_900, bram_kb=0, dsps=0),
        bytes_per_cycle=8.0,
        fixed_latency_cycles=16,
        dynamic_watts=0.6,
    ),
    "ascon128": CryptoCore(
        name="ascon128",
        area=FPGAResources(luts=2_100, ffs=1_600, bram_kb=0, dsps=0),
        bytes_per_cycle=2.7,
        fixed_latency_cycles=12,
        dynamic_watts=0.25,
    ),
    "sha3-256": CryptoCore(
        name="sha3-256",
        area=FPGAResources(luts=5_400, ffs=4_300, bram_kb=0, dsps=0),
        bytes_per_cycle=4.5,
        fixed_latency_cycles=24,
        dynamic_watts=0.7,
        authenticated=False,
    ),
}


def core_for(cipher: str) -> CryptoCore:
    """Look up a crypto core; raises :class:`SecurityError` if unknown."""
    core = CRYPTO_LIBRARY.get(cipher)
    if core is None:
        raise SecurityError(
            f"no crypto core for cipher {cipher!r}; available: "
            f"{sorted(CRYPTO_LIBRARY)}"
        )
    return core


def lightest_core_fitting(capacity: FPGAResources) -> CryptoCore:
    """Smallest authenticated core fitting the given fabric budget."""
    candidates = [
        core for core in CRYPTO_LIBRARY.values()
        if core.authenticated and core.area.fits_in(capacity)
    ]
    if not candidates:
        raise SecurityError(
            "no authenticated crypto core fits the available fabric"
        )
    return min(candidates, key=lambda core: core.area.luts)
