"""High-level synthesis engine (paper §III-B; Bambu [27]).

Transforms kernel-form IR functions into accelerator designs:

* :mod:`repro.core.hls.cdfg` — control/data-flow graph extraction
  (loop tree + per-body dataflow with memory dependences);
* :mod:`repro.core.hls.scheduling` — resource-constrained list
  scheduling and modulo-scheduling-style pipelining (II computation);
* :mod:`repro.core.hls.allocation` — functional-unit allocation and
  binding, FPGA resource estimation;
* :mod:`repro.core.hls.memory` — on-chip memory mapping: banking /
  cyclic partitioning and port assignment (Wang et al. [28],
  multi-port local memories [29]);
* :mod:`repro.core.hls.fsmd` — FSMD (finite state machine + datapath)
  construction and pseudo-RTL emission;
* :mod:`repro.core.hls.taint` — TaintHLS-style dynamic information
  flow tracking insertion [18];
* :mod:`repro.core.hls.crypto` — the optimized crypto accelerator
  library (memory / near-memory encryption);
* :mod:`repro.core.hls.bambu` — the synthesis driver producing an
  :class:`AcceleratorDesign`.
"""

from repro.core.hls.bambu import AcceleratorDesign, HLSOptions, synthesize
from repro.core.hls.cdfg import CDFG, build_cdfg
from repro.core.hls.scheduling import Schedule, schedule_loop
from repro.core.hls.memory import MemoryPlan, plan_memories
from repro.core.hls.allocation import Allocation, allocate
from repro.core.hls.crypto import CRYPTO_LIBRARY, CryptoCore

__all__ = [
    "AcceleratorDesign",
    "HLSOptions",
    "synthesize",
    "CDFG",
    "build_cdfg",
    "Schedule",
    "schedule_loop",
    "MemoryPlan",
    "plan_memories",
    "Allocation",
    "allocate",
    "CRYPTO_LIBRARY",
    "CryptoCore",
]
