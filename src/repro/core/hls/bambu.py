"""The HLS driver: kernel-form function → accelerator design.

Named for Bambu [27], the open-source HLS tool EVEREST builds on. The
driver chains CDFG extraction, memory planning, scheduling, allocation,
optional DIFT and crypto insertion, and FSMD/RTL emission, producing an
:class:`AcceleratorDesign` that the DSE cost model and the backend
packaging consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hls.allocation import Allocation, allocate
from repro.core.hls.cdfg import CDFG, build_cdfg
from repro.core.hls.crypto import CryptoCore, core_for
from repro.core.hls.fsmd import FSMD, build_fsmd, emit_verilog
from repro.core.hls.memory import MemoryPlan, plan_memories
from repro.core.hls.scheduling import (
    ResourceBudget,
    Schedule,
    nest_cycles,
    schedule_loop,
)
from repro.core.hls.taint import TaintReport, apply_taint_tracking
from repro.core.ir.module import Function, Module
from repro.core.ir.types import MemRefType
from repro.errors import HLSError
from repro.platform.fpga import Bitstream
from repro.platform.resources import FPGAResources
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HLSOptions:
    """Synthesis knobs — the hardware-variant axes of the DSE."""

    clock_hz: float = 250e6
    budget: ResourceBudget = field(default_factory=ResourceBudget)
    memory_strategy: str = "auto"  # auto | cyclic | block | none
    enable_dift: Optional[bool] = None  # None = follow function attr
    cipher: Optional[str] = None  # None = follow function attr
    dynamic_watts_per_kilounit: float = 0.35

    def __post_init__(self):
        check_positive("clock_hz", self.clock_hz)


@dataclass
class AcceleratorDesign:
    """Result of synthesizing one kernel."""

    kernel_name: str
    options: HLSOptions
    cdfg: CDFG
    schedules: Dict[int, Schedule]
    memory_plan: MemoryPlan
    allocation: Allocation
    fsmd: FSMD
    latency_cycles: int
    resources: FPGAResources
    taint_report: Optional[TaintReport] = None
    crypto_core: Optional[CryptoCore] = None

    @property
    def latency_seconds(self) -> float:
        """Wall-clock latency of one invocation at the design clock."""
        return self.latency_cycles / self.options.clock_hz

    @property
    def dynamic_watts(self) -> float:
        """Dynamic power estimate from active cell count."""
        kilounits = (self.resources.luts + self.resources.ffs) / 1000.0
        watts = kilounits * self.options.dynamic_watts_per_kilounit / 10.0
        if self.crypto_core is not None:
            watts += self.crypto_core.dynamic_watts
        return watts

    @property
    def energy_per_invocation(self) -> float:
        """Joules per invocation (dynamic only)."""
        return self.dynamic_watts * self.latency_seconds

    def data_bytes(self) -> int:
        """Bytes of argument data moved per invocation."""
        total = 0
        for argument in self.cdfg.function.arguments:
            if isinstance(argument.type, MemRefType):
                total += argument.type.size_bytes
        return total

    def bitstream(self, partial: bool = True) -> Bitstream:
        """Package the design as a loadable bitstream image."""
        return Bitstream(
            name=f"{self.kernel_name}@{int(self.options.clock_hz / 1e6)}MHz",
            footprint=self.resources,
            clock_hz=self.options.clock_hz,
            dynamic_watts=self.dynamic_watts,
            partial=partial,
        )

    def rtl(self) -> str:
        """Pseudo-RTL text of the design."""
        return emit_verilog(self.fsmd)

    def report(self) -> str:
        """Multi-line synthesis report."""
        lines = [
            f"kernel           : {self.kernel_name}",
            f"clock            : {self.options.clock_hz / 1e6:.0f} MHz",
            f"latency          : {self.latency_cycles} cycles "
            f"({self.latency_seconds * 1e6:.2f} us)",
            f"units            : {self.allocation.describe()}",
            f"resources        : {self.resources}",
            f"memory banks     : "
            f"{sum(p.factor for p in self.memory_plan.buffers.values())}",
            f"dynamic power    : {self.dynamic_watts:.2f} W",
        ]
        if self.taint_report is not None:
            overhead = self.taint_report.area_overhead_fraction(
                self.resources - self.taint_report.extra
            )
            lines.append(
                f"DIFT             : {len(self.taint_report.tracked_labels)}"
                f" labels, +{overhead * 100:.1f}% cells"
            )
        if self.crypto_core is not None:
            lines.append(f"crypto core      : {self.crypto_core.name}")
        return "\n".join(lines)


def synthesize(
    module: Module,
    kernel_name: str,
    options: Optional[HLSOptions] = None,
) -> AcceleratorDesign:
    """Synthesize one kernel-form function into an accelerator."""
    options = options or HLSOptions()
    function = module.find_function(kernel_name)
    if function is None:
        raise HLSError(f"no function named {kernel_name!r}")
    return synthesize_function(function, options)


def synthesize_function(
    function: Function, options: Optional[HLSOptions] = None
) -> AcceleratorDesign:
    """Synthesize a function wrapper directly."""
    options = options or HLSOptions()
    cdfg = build_cdfg(function)

    max_unroll = max(
        [loop.unroll for loop in cdfg.innermost_loops()] or [1]
    )
    target_ii = 1
    memory_plan = plan_memories(
        cdfg,
        unroll=max_unroll,
        target_ii=target_ii,
        strategy=options.memory_strategy,
    )
    ports = memory_plan.ports_map()

    schedules: Dict[int, Schedule] = {}
    for loop in cdfg.innermost_loops():
        schedules[id(loop)] = schedule_loop(
            loop, budget=options.budget, memory_ports=ports
        )

    latency = nest_cycles(cdfg.root, schedules)
    allocation = allocate(cdfg, schedules, memory_plan)
    resources = allocation.resources

    taint_report = None
    wants_dift = options.enable_dift
    if wants_dift is None:
        wants_dift = bool(function.op.attr("dift"))
    if wants_dift:
        labels = sorted({
            op.attr("label")
            for op in function.walk()
            if op.name == "secure.taint"
        } or {"default"})
        inflight = sum(
            len(loop.body) for loop in cdfg.innermost_loops()
        )
        taint_report = apply_taint_tracking(
            allocation.unit_counts,
            inflight,
            memory_plan,
            labels,
            egress_count=max(
                1, len(function.type.results) + _out_param_count(function)
            ),
        )
        resources = resources + taint_report.extra
        latency += taint_report.extra_latency_cycles

    crypto_core = None
    cipher = options.cipher or function.op.attr("cipher")
    if cipher:
        crypto_core = core_for(cipher)
        resources = resources + crypto_core.area
        latency += crypto_core.cycles_for(_sensitive_bytes(function))

    fsmd = build_fsmd(cdfg, schedules, memory_plan)

    return AcceleratorDesign(
        kernel_name=function.name,
        options=options,
        cdfg=cdfg,
        schedules=schedules,
        memory_plan=memory_plan,
        allocation=allocation,
        fsmd=fsmd,
        latency_cycles=max(1, int(latency)),
        resources=resources,
        taint_report=taint_report,
        crypto_core=crypto_core,
    )


def _out_param_count(function: Function) -> int:
    lowered = function.op.attr("lowered_from") == "tensor"
    if not lowered:
        return 0
    return sum(
        1 for t in function.type.inputs if isinstance(t, MemRefType)
    )


def _sensitive_bytes(function: Function) -> int:
    """Bytes that transit the crypto core: sensitive memref arguments."""
    sensitive = function.op.attr("everest.sensitive_args", [])
    total = 0
    for index in sensitive:
        if index < len(function.type.inputs):
            declared = function.type.inputs[index]
            if isinstance(declared, MemRefType):
                total += declared.size_bytes
    if total == 0 and sensitive:
        total = 64  # scalar secrets still pay a block
    return total


def estimate_cpu_cycles(function: Function,
                        flops_per_cycle: float = 4.0) -> int:
    """Rough software-execution cycle count for the same kernel.

    Used by the DSE to compare against the hardware design without a
    full CPU microarchitecture model: operation count divided by a
    superscalar issue width, plus memory-traffic cycles.
    """
    from repro.core.ir.passes.partitioning import estimate_work

    work, data_bytes = estimate_work(function)
    compute_cycles = work / flops_per_cycle
    memory_cycles = data_bytes / 16.0  # ~16 B/cycle sustained
    return int(max(compute_cycles, memory_cycles, 1))
