"""Type checking for the kernel DSL.

Annotates every expression node with its :class:`~repro.core.ir.types`
type, enforcing the shape rules of the tensor language:

* elementwise ``+ - * /`` require identical tensor shapes, with scalars
  (literals or scalar-typed expressions) broadcast by splatting;
* ``@`` is rank-2 matrix multiplication with matching inner dims;
* builtins (``relu``, ``exp``, ``transpose``, ``sum`` …) have fixed
  arities and keyword integer-list parameters;
* ``return`` values must match the declared kernel result types.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.dsl import ast_nodes as ast
from repro.core.ir.types import ScalarType, TensorType, Type
from repro.errors import TypeCheckError

_UNARY_BUILTINS = ("relu", "exp", "sqrt", "tanh", "sigmoid", "neg")
_BINARY_BUILTINS = ("maximum", "minimum")
_REDUCE_BUILTINS = {"sum": "sum", "mean": "mean",
                    "rmax": "max", "rmin": "min"}


def _fail(node: ast.Node, message: str,
          code: str = "TY001") -> TypeCheckError:
    """TypeCheckError carrying its diagnostic code and source line."""
    error = TypeCheckError(f"line {node.line}: {message}")
    error.code = code
    error.line = node.line
    return error


class TypeChecker:
    """Checks one kernel; exposes the symbol table afterwards."""

    def __init__(self, kernel: ast.KernelDecl):
        self.kernel = kernel
        self.symbols: Dict[str, Type] = {}

    def check(self) -> None:
        """Run the checker; raises :class:`TypeCheckError` on error."""
        for param in self.kernel.params:
            if param.name in self.symbols:
                raise _fail(
                    param, f"duplicate parameter {param.name!r}",
                    code="TY002",
                )
            if param.declared_type is None:
                raise _fail(
                    param, f"parameter {param.name!r} lacks a type",
                    code="TY002",
                )
            self.symbols[param.name] = param.declared_type

        returned = False
        for statement in self.kernel.body:
            if returned:
                raise _fail(statement, "statement after return")
            if isinstance(statement, ast.Assignment):
                if statement.name in self.symbols:
                    raise _fail(
                        statement,
                        f"redefinition of {statement.name!r} "
                        f"(the DSL is single-assignment)",
                        code="TY002",
                    )
                value_type = self._check_expr(statement.value)
                self.symbols[statement.name] = value_type
            elif isinstance(statement, ast.Return):
                self._check_return(statement)
                returned = True
            else:
                raise _fail(statement, "unknown statement kind")

    def _check_return(self, statement: ast.Return) -> None:
        declared = self.kernel.result_types
        if len(statement.values) != len(declared):
            raise _fail(
                statement,
                f"kernel declares {len(declared)} results but returns "
                f"{len(statement.values)}",
            )
        for value, expected in zip(statement.values, declared):
            actual = self._check_expr(value)
            if actual != expected:
                raise _fail(
                    statement,
                    f"return type {actual} does not match declared "
                    f"{expected}",
                )

    # ------------------------------------------------------------------

    def _check_expr(self, expr: Optional[ast.Expr]) -> Type:
        if expr is None:
            raise TypeCheckError("internal: missing expression")
        if expr.type is not None:
            return expr.type
        if isinstance(expr, ast.NumberLiteral):
            expr.type = ScalarType("f32")
        elif isinstance(expr, ast.VarRef):
            if expr.name not in self.symbols:
                raise _fail(expr, f"undefined name {expr.name!r}")
            expr.type = self.symbols[expr.name]
        elif isinstance(expr, ast.UnaryOp):
            expr.type = self._check_expr(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            expr.type = self._check_binary(expr)
        elif isinstance(expr, ast.Call):
            expr.type = self._check_call(expr)
        else:
            raise _fail(expr, "unknown expression kind")
        return expr.type

    def _check_binary(self, expr: ast.BinaryOp) -> Type:
        lhs = self._check_expr(expr.lhs)
        rhs = self._check_expr(expr.rhs)
        if expr.op == "@":
            if not (isinstance(lhs, TensorType)
                    and isinstance(rhs, TensorType)):
                raise _fail(expr, "'@' requires tensor operands")
            if lhs.rank != 2 or rhs.rank != 2:
                raise _fail(expr, "'@' requires rank-2 tensors")
            if lhs.shape[1] != rhs.shape[0]:
                raise _fail(
                    expr,
                    f"'@' inner dimensions differ "
                    f"({lhs.shape[1]} vs {rhs.shape[0]})",
                )
            if lhs.element != rhs.element:
                raise _fail(expr, "'@' element types differ")
            return TensorType((lhs.shape[0], rhs.shape[1]), lhs.element)

        if isinstance(lhs, TensorType) and isinstance(rhs, TensorType):
            if lhs != rhs:
                raise _fail(
                    expr,
                    f"elementwise {expr.op!r} requires equal shapes "
                    f"({lhs} vs {rhs})",
                )
            return lhs
        if isinstance(lhs, TensorType) and isinstance(rhs, ScalarType):
            self._check_broadcast(expr, lhs.element, rhs)
            return lhs
        if isinstance(lhs, ScalarType) and isinstance(rhs, TensorType):
            self._check_broadcast(expr, rhs.element, lhs)
            return rhs
        if isinstance(lhs, ScalarType) and isinstance(rhs, ScalarType):
            if lhs != rhs:
                raise _fail(expr, f"scalar types differ ({lhs} vs {rhs})")
            return lhs
        raise _fail(expr, f"invalid operand types {lhs} and {rhs}")

    @staticmethod
    def _check_broadcast(expr: ast.BinaryOp, element: ScalarType,
                         scalar: ScalarType) -> None:
        if element != scalar and scalar.name != "f32":
            raise _fail(
                expr,
                f"cannot broadcast {scalar} against tensor of {element}",
            )

    # ------------------------------------------------------------------

    def _check_call(self, expr: ast.Call) -> Type:
        callee = expr.callee
        if callee in _UNARY_BUILTINS:
            return self._check_unary_call(expr)
        if callee in _BINARY_BUILTINS:
            return self._check_binary_call(expr)
        if callee in _REDUCE_BUILTINS:
            return self._check_reduce_call(expr)
        if callee == "transpose":
            return self._check_transpose(expr)
        if callee == "reshape":
            return self._check_reshape(expr)
        if callee == "fill":
            return self._check_fill(expr)
        raise _fail(expr, f"unknown builtin {callee!r}")

    def _one_tensor_arg(self, expr: ast.Call) -> TensorType:
        if len(expr.args) != 1:
            raise _fail(expr, f"{expr.callee} takes exactly one argument")
        arg_type = self._check_expr(expr.args[0])
        if not isinstance(arg_type, TensorType):
            raise _fail(expr, f"{expr.callee} requires a tensor argument")
        return arg_type

    def _check_unary_call(self, expr: ast.Call) -> Type:
        return self._one_tensor_arg(expr)

    def _check_binary_call(self, expr: ast.Call) -> Type:
        if len(expr.args) != 2:
            raise _fail(expr, f"{expr.callee} takes exactly two arguments")
        lhs = self._check_expr(expr.args[0])
        rhs = self._check_expr(expr.args[1])
        if lhs != rhs or not isinstance(lhs, TensorType):
            raise _fail(
                expr, f"{expr.callee} requires two equal-shaped tensors"
            )
        return lhs

    def _check_reduce_call(self, expr: ast.Call) -> Type:
        source = self._one_tensor_arg(expr)
        axes = expr.int_lists.get("axes")
        if axes is None:
            axes = list(range(source.rank))
            expr.int_lists["axes"] = axes
        for axis in axes:
            if not 0 <= axis < source.rank:
                raise _fail(expr, f"reduce axis {axis} out of range")
        if len(set(axes)) != len(axes):
            raise _fail(expr, "duplicate reduce axes")
        remaining = tuple(
            dim for axis, dim in enumerate(source.shape)
            if axis not in axes
        )
        return TensorType(remaining or (1,), source.element)

    def _check_transpose(self, expr: ast.Call) -> Type:
        source = self._one_tensor_arg(expr)
        perm = expr.int_lists.get("perm")
        if perm is None:
            perm = list(reversed(range(source.rank)))
            expr.int_lists["perm"] = perm
        if sorted(perm) != list(range(source.rank)):
            raise _fail(expr, f"invalid permutation {perm}")
        return TensorType(
            tuple(source.shape[axis] for axis in perm), source.element
        )

    def _check_reshape(self, expr: ast.Call) -> Type:
        source = self._one_tensor_arg(expr)
        shape = expr.int_lists.get("shape")
        if not shape:
            raise _fail(expr, "reshape requires shape=[...]")
        total = 1
        for dim in shape:
            if dim <= 0:
                raise _fail(expr, "reshape dims must be positive")
            total *= dim
        if total != source.num_elements:
            raise _fail(
                expr,
                f"reshape element count mismatch "
                f"({total} vs {source.num_elements})",
            )
        return TensorType(tuple(shape), source.element)

    def _check_fill(self, expr: ast.Call) -> Type:
        if len(expr.args) != 1 or not isinstance(
            expr.args[0], ast.NumberLiteral
        ):
            raise _fail(expr, "fill requires a literal value argument")
        self._check_expr(expr.args[0])
        shape = expr.int_lists.get("shape")
        if not shape:
            raise _fail(expr, "fill requires shape=[...]")
        for dim in shape:
            if dim <= 0:
                raise _fail(expr, "fill dims must be positive")
        return TensorType(tuple(shape), ScalarType("f32"))


def check_program(program: ast.Program) -> List[TypeChecker]:
    """Type check every kernel; returns the per-kernel checkers."""
    seen = set()
    checkers = []
    for kernel in program.kernels:
        if kernel.name in seen:
            error = TypeCheckError(
                f"duplicate kernel name {kernel.name!r}"
            )
            error.code = "TY002"
            raise error
        seen.add(kernel.name)
        checker = TypeChecker(kernel)
        checker.check()
        checkers.append(checker)
    return checkers


def check_program_diagnostics(
    program: ast.Program,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Collect type errors from *every* kernel instead of raising.

    Each kernel is checked independently so one broken kernel does not
    hide findings in the others; the per-error code (TY001/TY002)
    attached by :func:`_fail` becomes the diagnostic code.
    """
    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    seen = set()
    for kernel in program.kernels:
        if kernel.name in seen:
            diagnostics.error(
                "TY002",
                f"duplicate kernel name {kernel.name!r}",
                anchor=kernel.name,
                analysis="typecheck",
            )
            continue
        seen.add(kernel.name)
        try:
            TypeChecker(kernel).check()
        except TypeCheckError as exc:
            line = getattr(exc, "line", 0)
            diagnostics.error(
                getattr(exc, "code", "TY001"),
                str(exc),
                anchor=kernel.name,
                analysis="typecheck",
                loc=("<dsl>", line) if line else None,
            )
    return diagnostics
