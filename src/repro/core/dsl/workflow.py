"""Workflow-pipeline builder (HyperLoom-style, paper §III-A).

Applications are end-to-end dataflows of coarse tasks. The builder API
assembles sources, tasks (each bound to a DSL kernel) and sinks, then
emits a single IR module containing the kernels (tensor dialect) plus a
``workflow.pipeline`` operation describing the orchestration — the
"single MLIR" unification of Fig. 1.

Example::

    pipeline = Pipeline("demo")
    raw = pipeline.source("raw", TensorType((64, 32), F32))
    task = pipeline.task("score", KERNEL_SRC, inputs=[raw])
    pipeline.sink("out", task.output(0))
    module = pipeline.to_ir()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.dsl.annotations import (
    AnnotationSet,
    DataAnnotation,
    Requirement,
    SecurityAnnotation,
)
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir.builder import Builder
from repro.core.ir.module import Module
from repro.core.ir.ops import Operation, Value
from repro.core.ir.types import Type
from repro.core.ir.verifier import verify
from repro.errors import SpecificationError


@dataclass
class Source:
    """An external data input to the pipeline."""

    name: str
    type: Type
    annotation: Optional[DataAnnotation] = None
    security: Optional[SecurityAnnotation] = None


@dataclass
class TaskOutput:
    """Handle to one output of a task, usable as a downstream input."""

    task: "Task"
    index: int


@dataclass
class Task:
    """One computational task bound to a named DSL kernel."""

    name: str
    kernel: str
    inputs: List[Union[Source, "TaskOutput"]]
    requirements: List[Requirement] = field(default_factory=list)
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def output(self, index: int = 0) -> TaskOutput:
        """Handle to the ``index``-th output of this task."""
        return TaskOutput(self, index)


@dataclass
class Sink:
    """An external consumer of a pipeline value."""

    name: str
    value: Union[Source, TaskOutput]
    security: Optional[SecurityAnnotation] = None


class Pipeline:
    """Builder for a workflow pipeline over DSL kernels."""

    def __init__(self, name: str):
        self.name = name
        self.sources: List[Source] = []
        self.tasks: List[Task] = []
        self.sinks: List[Sink] = []
        self._kernel_sources: List[str] = []
        self.requirements: List[Requirement] = []

    # ------------------------------------------------------------------

    def source(
        self,
        name: str,
        type: Type,
        annotation: Optional[DataAnnotation] = None,
        security: Optional[SecurityAnnotation] = None,
    ) -> Source:
        """Declare an external input."""
        if any(existing.name == name for existing in self.sources):
            raise SpecificationError(f"duplicate source {name!r}")
        source = Source(name, type, annotation, security)
        self.sources.append(source)
        return source

    def task(
        self,
        name: str,
        kernel_source: str,
        inputs: Sequence[Union[Source, TaskOutput]],
        kernel: Optional[str] = None,
        requirements: Optional[List[Requirement]] = None,
    ) -> Task:
        """Add a task executing a DSL kernel.

        ``kernel_source`` is DSL text defining one or more kernels;
        ``kernel`` picks one by name (defaults to the task name).
        """
        if any(existing.name == name for existing in self.tasks):
            raise SpecificationError(f"duplicate task {name!r}")
        self._kernel_sources.append(kernel_source)
        task = Task(
            name=name,
            kernel=kernel or name,
            inputs=list(inputs),
            requirements=list(requirements or []),
        )
        self.tasks.append(task)
        return task

    def sink(
        self,
        name: str,
        value: Union[Source, TaskOutput],
        security: Optional[SecurityAnnotation] = None,
    ) -> Sink:
        """Declare an external output."""
        sink = Sink(name, value, security)
        self.sinks.append(sink)
        return sink

    def require(self, requirement: Requirement) -> None:
        """Attach a pipeline-wide non-functional requirement."""
        self.requirements.append(requirement)

    # ------------------------------------------------------------------

    def to_ir(self) -> Module:
        """Emit kernels + workflow.pipeline into one verified module."""
        if not self.tasks:
            raise SpecificationError(
                f"pipeline {self.name!r} has no tasks"
            )
        module = Module(self.name)
        for source_text in self._kernel_sources:
            compiled = compile_kernel(source_text)
            for function in compiled.functions():
                if module.find_function(function.name) is None:
                    clone = function.op.clone({})
                    module.body.append(clone)

        pipeline_attrs: Dict[str, object] = {"sym_name": self.name}
        if self.requirements:
            pipeline_attrs["requirements"] = [
                (req.kind.value, req.value, req.scope)
                for req in self.requirements
            ]
        pipeline_op = Operation(
            "workflow.pipeline", attributes=pipeline_attrs, num_regions=1
        )
        module.body.append(pipeline_op)
        block = pipeline_op.regions[0].add_block()
        builder = Builder(block)

        produced: Dict[int, Value] = {}
        for source in self.sources:
            attributes: Dict[str, object] = {"sym_name": source.name}
            if source.annotation is not None:
                attributes["locality"] = source.annotation.locality.value
                attributes["volume_bytes"] = source.annotation.volume_bytes
                attributes["velocity"] = (
                    source.annotation.velocity_bytes_per_s
                )
            if source.security is not None:
                attributes["sensitivity"] = (
                    source.security.sensitivity.value
                )
                attributes["encrypt_in_transit"] = (
                    source.security.encrypt_in_transit
                )
            op = builder.create(
                "workflow.source",
                result_types=[source.type],
                attributes=attributes,
            )
            produced[id(source)] = op.result

        for task in self.tasks:
            function = module.find_function(task.kernel)
            if function is None:
                raise SpecificationError(
                    f"task {task.name!r} references unknown kernel "
                    f"{task.kernel!r}"
                )
            operands = []
            for input_value in task.inputs:
                key = id(input_value)
                if isinstance(input_value, TaskOutput):
                    key = id(input_value.task), input_value.index
                if key not in produced:
                    raise SpecificationError(
                        f"task {task.name!r}: input not yet produced "
                        f"(tasks must be added in dataflow order)"
                    )
                operands.append(produced[key])
            expected = function.type.inputs
            if len(operands) != len(expected):
                raise SpecificationError(
                    f"task {task.name!r}: kernel {task.kernel!r} takes "
                    f"{len(expected)} inputs, got {len(operands)}"
                )
            for operand, expected_type in zip(operands, expected):
                if operand.type != expected_type:
                    raise SpecificationError(
                        f"task {task.name!r}: input type {operand.type} "
                        f"does not match kernel parameter "
                        f"{expected_type}"
                    )
            attributes = {"sym_name": task.name, "kernel": task.kernel}
            if task.requirements:
                attributes["requirements"] = [
                    (req.kind.value, req.value, req.scope)
                    for req in task.requirements
                ]
            op = builder.create(
                "workflow.task",
                operands=operands,
                result_types=list(function.type.results),
                attributes=attributes,
            )
            for index, result in enumerate(op.results):
                produced[(id(task), index)] = result

        for sink in self.sinks:
            key = id(sink.value)
            if isinstance(sink.value, TaskOutput):
                key = (id(sink.value.task), sink.value.index)
            if key not in produced:
                raise SpecificationError(
                    f"sink {sink.name!r} consumes an unknown value"
                )
            attributes = {"sym_name": sink.name}
            if sink.security is not None:
                attributes["sensitivity"] = sink.security.sensitivity.value
            builder.create(
                "workflow.sink",
                operands=[produced[key]],
                attributes=attributes,
            )

        builder.create("workflow.yield")
        verify(module)
        return module

    def dependency_edges(self) -> List[tuple]:
        """(producer task name, consumer task name) edges."""
        edges = []
        for task in self.tasks:
            for input_value in task.inputs:
                if isinstance(input_value, TaskOutput):
                    edges.append((input_value.task.name, task.name))
        return edges


def lint_pipeline_contracts(
    pipeline: Pipeline,
    diagnostics=None,
    module: Optional[Module] = None,
):
    """Collect every producer→consumer contract mismatch (WF010/WF011).

    :meth:`Pipeline.to_ir` fails fast on the first incompatible edge;
    this adapter instead propagates each object's declared type through
    the whole dataflow — source declarations forward through task
    kernels' signatures — and reports *all* shape (WF010) and dtype
    (WF011) disagreements as diagnostics, so the lint CLI and the
    compiler's static gate surface every contract bug at once.

    Pass the already-lowered ``module`` to resolve kernel signatures
    without recompiling the DSL sources (what the compiler does);
    without it the kernel sources are compiled here, and sources that
    fail to compile are skipped — broken DSL text is DSL001's concern,
    not this check's. Returns the diagnostics collection.
    """
    from repro.core.analysis.absint import _compare_types
    from repro.core.analysis.diagnostics import Diagnostics

    diagnostics = diagnostics if diagnostics is not None else Diagnostics()
    signatures: Dict[str, object] = {}
    if module is not None:
        for function in module.functions():
            signatures.setdefault(function.name, function.type)
    else:
        for source_text in pipeline._kernel_sources:
            try:
                compiled = compile_kernel(source_text)
            except SpecificationError:
                continue
            for function in compiled.functions():
                signatures.setdefault(function.name, function.type)

    value_types: Dict[object, Type] = {
        id(source): source.type for source in pipeline.sources
    }
    for task in pipeline.tasks:
        signature = signatures.get(task.kernel)
        if signature is None:
            continue  # unknown kernel: to_ir reports that, not us
        anchor = f"{task.kernel}/{task.name}"
        expected = signature.inputs
        if len(task.inputs) != len(expected):
            diagnostics.error(
                "WF010",
                f"task {task.name!r} wires {len(task.inputs)} inputs "
                f"but kernel {task.kernel!r} declares {len(expected)}",
                anchor=anchor, analysis="absint",
            )
        else:
            for position, (input_value, expected_type) in enumerate(
                zip(task.inputs, expected)
            ):
                if isinstance(input_value, TaskOutput):
                    key = (id(input_value.task), input_value.index)
                else:
                    key = id(input_value)
                actual = value_types.get(key)
                if actual is None:
                    continue  # producer signature unknown: skip edge
                _compare_types(
                    diagnostics, anchor,
                    f"input {position} of task {task.name!r}",
                    actual, expected_type,
                )
        for index, result_type in enumerate(signature.results):
            value_types[(id(task), index)] = result_type
    return diagnostics
