"""Application annotations: data characteristics, NFRs, security.

These carry the "extra characteristics of the algorithms and data"
(paper §I) from the application expert to the compiler and runtime:

* :class:`DataAnnotation` describes a dataset or stream — volume,
  velocity, locality — and drives placement and memory customization;
* :class:`Requirement` is a non-functional target (latency bound,
  throughput floor, energy budget) checked by the DSE and runtime;
* :class:`SecurityAnnotation` marks confidentiality/integrity needs
  that the security passes and the data-protection layer enforce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SpecificationError
from repro.utils.validation import check_positive


class Locality(enum.Enum):
    """Where the data naturally lives (paper Fig. 3 tiers)."""

    ENDPOINT = "endpoint"
    EDGE = "edge"
    CLOUD = "cloud"
    ANY = "any"


@dataclass(frozen=True)
class DataAnnotation:
    """Characteristics of a dataset or stream."""

    name: str
    volume_bytes: int = 0
    velocity_bytes_per_s: float = 0.0
    locality: Locality = Locality.ANY
    access_pattern: str = "sequential"  # sequential | strided | random
    record_layout: Optional[str] = None  # None | "aos" | "soa"

    def __post_init__(self):
        if self.volume_bytes < 0:
            raise SpecificationError("volume_bytes must be non-negative")
        if self.velocity_bytes_per_s < 0:
            raise SpecificationError("velocity must be non-negative")
        if self.access_pattern not in ("sequential", "strided", "random"):
            raise SpecificationError(
                f"unknown access pattern {self.access_pattern!r}"
            )
        if self.record_layout not in (None, "aos", "soa"):
            raise SpecificationError(
                f"unknown record layout {self.record_layout!r}"
            )

    @property
    def is_streaming(self) -> bool:
        """True when data arrives continuously rather than at rest."""
        return self.velocity_bytes_per_s > 0


class RequirementKind(enum.Enum):
    """What the requirement bounds."""

    LATENCY = "latency"  # seconds, upper bound
    THROUGHPUT = "throughput"  # items/second, lower bound
    ENERGY = "energy"  # joules per invocation, upper bound
    DEADLINE = "deadline"  # seconds for the whole pipeline, upper bound


@dataclass(frozen=True)
class Requirement:
    """A non-functional requirement with a numeric target."""

    kind: RequirementKind
    value: float
    scope: str = ""  # kernel or pipeline name; empty = whole application

    def __post_init__(self):
        check_positive("requirement value", self.value)

    def satisfied_by(self, measured: float) -> bool:
        """Check a measurement against the bound direction."""
        if self.kind is RequirementKind.THROUGHPUT:
            return measured >= self.value
        return measured <= self.value


class Sensitivity(enum.Enum):
    """Confidentiality level of a piece of data."""

    PUBLIC = "public"
    INTERNAL = "internal"
    CONFIDENTIAL = "confidential"
    SECRET = "secret"


@dataclass(frozen=True)
class SecurityAnnotation:
    """Protection needs for a dataset flowing through the pipeline."""

    sensitivity: Sensitivity = Sensitivity.PUBLIC
    integrity: bool = False
    encrypt_at_rest: bool = False
    encrypt_in_transit: bool = False
    cipher: str = "aes128-gcm"

    @property
    def needs_protection(self) -> bool:
        """True when any protection mechanism must be engaged."""
        return (
            self.sensitivity is not Sensitivity.PUBLIC
            or self.integrity
            or self.encrypt_at_rest
            or self.encrypt_in_transit
        )

    @property
    def needs_dift(self) -> bool:
        """True when information flow tracking is warranted."""
        return self.sensitivity in (
            Sensitivity.CONFIDENTIAL, Sensitivity.SECRET
        )


@dataclass
class AnnotationSet:
    """Bundle of annotations attached to a kernel or pipeline stage."""

    data: Dict[str, DataAnnotation] = field(default_factory=dict)
    requirements: list = field(default_factory=list)
    security: Dict[str, SecurityAnnotation] = field(default_factory=dict)

    def add_data(self, annotation: DataAnnotation) -> None:
        """Attach a data annotation keyed by its dataset name."""
        self.data[annotation.name] = annotation

    def add_requirement(self, requirement: Requirement) -> None:
        """Attach a non-functional requirement."""
        self.requirements.append(requirement)

    def add_security(self, name: str,
                     annotation: SecurityAnnotation) -> None:
        """Attach a security annotation for a named dataset."""
        self.security[name] = annotation

    def sensitive_names(self) -> list:
        """Dataset names that require information flow tracking."""
        return sorted(
            name for name, annotation in self.security.items()
            if annotation.needs_dift
        )
