"""Tokenizer for the kernel DSL.

Hand-written scanner producing a flat token stream. Tensor type
literals (``tensor<16x16xf32>``) are scanned as a single token so the
parser does not have to reassemble dimension lists from ``<``/``x``
fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

KEYWORDS = {"kernel", "return"}
SCALAR_TYPES = {"f32", "f64", "i32", "i64"}

# token kinds
ID = "ID"
NUMBER = "NUMBER"
TENSORTYPE = "TENSORTYPE"
KEYWORD = "KEYWORD"
SYMBOL = "SYMBOL"
EOF = "EOF"

_SYMBOLS = (
    "->", "@", "+", "-", "*", "/", "(", ")", "{", "}", "[", "]",
    ",", "=", ":", "<", ">",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class Lexer:
    """Scans DSL source into tokens."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position:self.position + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def tokens(self) -> List[Token]:
        """Scan the whole source."""
        result: List[Token] = []
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "#":
                while self._peek() not in ("", "\n"):
                    self._advance()
                continue
            line, column = self.line, self.column
            if char.isalpha() or char == "_":
                word = self._scan_word()
                if word == "tensor" and self._peek() == "<":
                    raw = self._scan_tensor_type()
                    result.append(
                        Token(TENSORTYPE, f"tensor{raw}", line, column)
                    )
                elif word in KEYWORDS:
                    result.append(Token(KEYWORD, word, line, column))
                else:
                    result.append(Token(ID, word, line, column))
                continue
            if char.isdigit() or (
                char == "." and self._peek(1).isdigit()
            ):
                result.append(Token(NUMBER, self._scan_number(),
                                    line, column))
                continue
            symbol = self._scan_symbol()
            result.append(Token(SYMBOL, symbol, line, column))
        result.append(Token(EOF, "", self.line, self.column))
        return result

    def _scan_word(self) -> str:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return self.source[start:self.position]

    def _scan_number(self) -> str:
        start = self.position
        seen_dot = False
        seen_exp = False
        while True:
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._advance()
            elif char in "eE" and not seen_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        return self.source[start:self.position]

    def _scan_tensor_type(self) -> str:
        if self._peek() != "<":
            raise self._error("expected '<' after 'tensor'")
        start = self.position
        depth = 0
        while self.position < len(self.source):
            char = self._peek()
            self._advance()
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
                if depth == 0:
                    return self.source[start:self.position]
        raise self._error("unterminated tensor type literal")

    def _scan_symbol(self) -> str:
        for symbol in _SYMBOLS:
            if self.source.startswith(symbol, self.position):
                self._advance(len(symbol))
                return symbol
        raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str) -> List[Token]:
    """Scan source into a token list ending in EOF."""
    return Lexer(source).tokens()
