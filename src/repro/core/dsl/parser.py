"""Recursive-descent parser for the kernel DSL.

Grammar (informal)::

    program    := kernel+
    kernel     := 'kernel' ID '(' [param {',' param}] ')'
                  '->' type {',' type} '{' stmt* '}'
    param      := ID ':' type {'@' ID}
    type       := TENSORTYPE | scalar-name
    stmt       := ID '=' expr | 'return' expr {',' expr}
    expr       := add
    add        := mul {('+'|'-') mul}
    mul        := mat {('*'|'/') mat}
    mat        := unary {'@' unary}
    unary      := '-' unary | primary
    primary    := NUMBER | ID ['(' call-args ')'] | '(' expr ')'
    call-args  := [expr {',' expr}] {',' ID '=' '[' INT {',' INT} ']'}
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.dsl import ast_nodes as ast
from repro.core.dsl.lexer import (
    EOF,
    ID,
    KEYWORD,
    NUMBER,
    SCALAR_TYPES,
    SYMBOL,
    TENSORTYPE,
    Token,
    tokenize,
)
from repro.core.ir.types import ScalarType, TensorType, Type
from repro.errors import ParseError

_TENSOR_RE = re.compile(r"^tensor<((?:\d+x)+)(f32|f64|i32|i64)>$")


def parse_tensor_type(text: str, line: int = 0) -> TensorType:
    """Parse a ``tensor<4x4xf32>`` literal."""
    match = _TENSOR_RE.match(text.replace(" ", ""))
    if match is None:
        raise ParseError(f"malformed tensor type {text!r}", line, 0)
    dims = tuple(int(d) for d in match.group(1).rstrip("x").split("x"))
    return TensorType(dims, ScalarType(match.group(2)))


class Parser:
    """Consumes a token stream into a :class:`Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None
               ) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise self._error(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}"
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None
                ) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole source."""
        program = ast.Program()
        while self._peek().kind != EOF:
            program.kernels.append(self.parse_kernel())
        if not program.kernels:
            raise self._error("empty program: expected 'kernel'")
        return program

    def parse_kernel(self) -> ast.KernelDecl:
        """Parse one kernel declaration."""
        keyword = self._expect(KEYWORD, "kernel")
        name = self._expect(ID).text
        self._expect(SYMBOL, "(")
        params: List[ast.Param] = []
        if not self._accept(SYMBOL, ")"):
            while True:
                params.append(self._parse_param())
                if self._accept(SYMBOL, ")"):
                    break
                self._expect(SYMBOL, ",")
        self._expect(SYMBOL, "->")
        result_types = [self._parse_type()]
        while self._accept(SYMBOL, ","):
            result_types.append(self._parse_type())
        self._expect(SYMBOL, "{")
        body: List[ast.Node] = []
        saw_return = False
        while not self._accept(SYMBOL, "}"):
            statement = self._parse_statement()
            body.append(statement)
            if isinstance(statement, ast.Return):
                saw_return = True
        if not saw_return:
            raise self._error(
                f"kernel {name!r} has no return statement", keyword
            )
        return ast.KernelDecl(
            line=keyword.line,
            name=name,
            params=params,
            result_types=result_types,
            body=body,
        )

    def _parse_param(self) -> ast.Param:
        name_token = self._expect(ID)
        self._expect(SYMBOL, ":")
        declared = self._parse_type()
        annotations = []
        while self._accept(SYMBOL, "@"):
            annotations.append(self._expect(ID).text)
        return ast.Param(
            line=name_token.line,
            name=name_token.text,
            declared_type=declared,
            annotations=tuple(annotations),
        )

    def _parse_type(self) -> Type:
        token = self._peek()
        if token.kind == TENSORTYPE:
            self._advance()
            return parse_tensor_type(token.text, token.line)
        if token.kind == ID and token.text in SCALAR_TYPES:
            self._advance()
            return ScalarType(token.text)
        raise self._error(
            f"expected a type, found {token.text or 'end of input'!r}"
        )

    # ------------------------------------------------------------------

    def _parse_statement(self) -> ast.Node:
        if self._peek().kind == KEYWORD and self._peek().text == "return":
            token = self._advance()
            values = [self._parse_expr()]
            while self._accept(SYMBOL, ","):
                values.append(self._parse_expr())
            return ast.Return(line=token.line, values=values)
        name_token = self._expect(ID)
        self._expect(SYMBOL, "=")
        value = self._parse_expr()
        return ast.Assignment(
            line=name_token.line, name=name_token.text, value=value
        )

    def _parse_expr(self) -> ast.Expr:
        return self._parse_add()

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while True:
            token = self._peek()
            if token.kind == SYMBOL and token.text in ("+", "-"):
                self._advance()
                right = self._parse_mul()
                left = ast.BinaryOp(
                    line=token.line, op=token.text, lhs=left, rhs=right
                )
            else:
                return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_mat()
        while True:
            token = self._peek()
            if token.kind == SYMBOL and token.text in ("*", "/"):
                self._advance()
                right = self._parse_mat()
                left = ast.BinaryOp(
                    line=token.line, op=token.text, lhs=left, rhs=right
                )
            else:
                return left

    def _parse_mat(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == SYMBOL and token.text == "@":
                self._advance()
                right = self._parse_unary()
                left = ast.BinaryOp(
                    line=token.line, op="@", lhs=left, rhs=right
                )
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == SYMBOL and token.text == "-":
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op="-", operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return ast.NumberLiteral(line=token.line,
                                     value=float(token.text))
        if token.kind == SYMBOL and token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(SYMBOL, ")")
            return inner
        if token.kind == ID:
            self._advance()
            if self._accept(SYMBOL, "("):
                return self._parse_call(token)
            return ast.VarRef(line=token.line, name=token.text)
        raise self._error(
            f"expected an expression, found "
            f"{token.text or 'end of input'!r}"
        )

    def _parse_call(self, name_token: Token) -> ast.Call:
        call = ast.Call(line=name_token.line, callee=name_token.text)
        if self._accept(SYMBOL, ")"):
            return call
        while True:
            token = self._peek()
            next_token = self.tokens[self.position + 1] \
                if self.position + 1 < len(self.tokens) else None
            if (
                token.kind == ID
                and next_token is not None
                and next_token.kind == SYMBOL
                and next_token.text == "="
            ):
                self._advance()
                self._advance()
                call.int_lists[token.text] = self._parse_int_list()
            else:
                call.args.append(self._parse_expr())
            if self._accept(SYMBOL, ")"):
                return call
            self._expect(SYMBOL, ",")

    def _parse_int_list(self) -> List[int]:
        self._expect(SYMBOL, "[")
        values: List[int] = []
        if self._accept(SYMBOL, "]"):
            return values
        while True:
            negative = bool(self._accept(SYMBOL, "-"))
            token = self._expect(NUMBER)
            value = int(float(token.text))
            values.append(-value if negative else value)
            if self._accept(SYMBOL, "]"):
                return values
            self._expect(SYMBOL, ",")


def parse(source: str) -> ast.Program:
    """Parse DSL source into an AST program."""
    return Parser(source).parse_program()
