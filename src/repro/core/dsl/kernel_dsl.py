"""Kernel DSL driver: parse, type check and emit tensor-dialect IR.

The public entry points:

* :func:`parse_kernel` — source → type-checked AST program;
* :func:`compile_kernel` — source → IR :class:`Module` with one
  tensor-form function per kernel, sensitive parameters recorded in the
  ``everest.sensitive_args`` attribute for the security pass.

Example::

    module = compile_kernel('''
        kernel dense(A: tensor<64x32xf32>, W: tensor<32x16xf32>,
                     B: tensor<64x16xf32> @sensitive) -> tensor<64x16xf32> {
            H = relu(A @ W + B)
            return H
        }
    ''')
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.dsl import ast_nodes as ast
from repro.core.dsl.parser import parse
from repro.core.dsl.typecheck import check_program
from repro.core.ir.builder import Builder
from repro.core.ir.module import Module
from repro.core.ir.ops import Value
from repro.core.ir.types import (
    FunctionType,
    ScalarType,
    TensorType,
)
from repro.core.ir.verifier import verify
from repro.errors import SpecificationError

_UNARY_OPS = {
    "relu": "relu", "exp": "exp", "sqrt": "sqrt",
    "tanh": "tanh", "sigmoid": "sigmoid", "neg": "neg",
}
_BINARY_OPS = {"maximum": "maximum", "minimum": "minimum"}
_REDUCE_OPS = {"sum": "sum", "mean": "mean", "rmax": "max", "rmin": "min"}
_INFIX_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
_SCALAR_INFIX = {"+": "addf", "-": "subf", "*": "mulf", "/": "divf"}


def parse_kernel(source: str) -> ast.Program:
    """Parse and type check DSL source."""
    program = parse(source)
    check_program(program)
    return program


def compile_kernel(source: str, module_name: str = "kernels") -> Module:
    """Compile DSL source into a verified tensor-form IR module."""
    program = parse_kernel(source)
    module = Module(module_name)
    for kernel in program.kernels:
        _KernelCodegen(module, kernel).emit()
    verify(module)
    return module


class _KernelCodegen:
    """Emits one kernel as a tensor-dialect function."""

    def __init__(self, module: Module, kernel: ast.KernelDecl):
        self.module = module
        self.kernel = kernel
        self.builder = Builder()
        self.values: Dict[str, Value] = {}

    def emit(self) -> None:
        kernel = self.kernel
        input_types = tuple(param.declared_type for param in kernel.params)
        function_type = FunctionType(
            input_types, tuple(kernel.result_types)
        )
        sensitive = [
            index for index, param in enumerate(kernel.params)
            if param.sensitive
        ]
        attributes = {}
        if sensitive:
            attributes["everest.sensitive_args"] = sensitive
        function = self.module.add_function(
            kernel.name, function_type, attributes=attributes
        )
        self.builder.set_insertion_point(function.entry_block)
        for param, argument in zip(kernel.params, function.arguments):
            self.values[param.name] = argument

        for statement in kernel.body:
            if isinstance(statement, ast.Assignment):
                self.values[statement.name] = self._emit_expr(
                    statement.value
                )
            elif isinstance(statement, ast.Return):
                results = [self._emit_expr(v) for v in statement.values]
                self.builder.ret(results)

    # ------------------------------------------------------------------

    def _emit_expr(self, expr: Optional[ast.Expr]) -> Value:
        if expr is None:
            raise SpecificationError("internal: missing expression")
        if isinstance(expr, ast.NumberLiteral):
            return self.builder.const(expr.value, ScalarType("f32"))
        if isinstance(expr, ast.VarRef):
            return self.values[expr.name]
        if isinstance(expr, ast.UnaryOp):
            operand = self._emit_expr(expr.operand)
            if isinstance(expr.type, TensorType):
                return self.builder.tensor_op("neg", [operand], expr.type)
            return self.builder.unary("negf", operand)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        raise SpecificationError(f"unknown expression node {expr!r}")

    def _broadcast(self, value: Value, target: TensorType) -> Value:
        """Splat a scalar value to a tensor type."""
        return self.builder.tensor_op("splat", [value], target)

    def _emit_binary(self, expr: ast.BinaryOp) -> Value:
        lhs = self._emit_expr(expr.lhs)
        rhs = self._emit_expr(expr.rhs)
        if expr.op == "@":
            return self.builder.matmul(lhs, rhs)
        result_type = expr.type
        if isinstance(result_type, TensorType):
            if isinstance(lhs.type, ScalarType):
                lhs = self._broadcast(lhs, result_type)
            if isinstance(rhs.type, ScalarType):
                rhs = self._broadcast(rhs, result_type)
            return self.builder.tensor_op(
                _INFIX_OPS[expr.op], [lhs, rhs], result_type
            )
        return self.builder._binary(
            f"kernel.{_SCALAR_INFIX[expr.op]}", lhs, rhs
        )

    def _emit_call(self, expr: ast.Call) -> Value:
        callee = expr.callee
        result_type = expr.type
        if callee in _UNARY_OPS:
            operand = self._emit_expr(expr.args[0])
            return self.builder.tensor_op(
                _UNARY_OPS[callee], [operand], result_type
            )
        if callee in _BINARY_OPS:
            lhs = self._emit_expr(expr.args[0])
            rhs = self._emit_expr(expr.args[1])
            return self.builder.tensor_op(
                _BINARY_OPS[callee], [lhs, rhs], result_type
            )
        if callee in _REDUCE_OPS:
            operand = self._emit_expr(expr.args[0])
            return self.builder.tensor_op(
                "reduce",
                [operand],
                result_type,
                attributes={
                    "axes": list(expr.int_lists["axes"]),
                    "kind": _REDUCE_OPS[callee],
                },
            )
        if callee == "transpose":
            operand = self._emit_expr(expr.args[0])
            return self.builder.tensor_op(
                "transpose",
                [operand],
                result_type,
                attributes={"permutation": list(expr.int_lists["perm"])},
            )
        if callee == "reshape":
            operand = self._emit_expr(expr.args[0])
            return self.builder.tensor_op(
                "reshape", [operand], result_type
            )
        if callee == "fill":
            literal = expr.args[0]
            assert isinstance(literal, ast.NumberLiteral)
            return self.builder.tensor_op(
                "constant",
                [],
                result_type,
                attributes={"value": literal.value},
            )
        raise SpecificationError(f"unknown builtin {callee!r}")


def kernel_names(source: str) -> List[str]:
    """Names of the kernels defined in a DSL source string."""
    return [kernel.name for kernel in parse(source).kernels]
