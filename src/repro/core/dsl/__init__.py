"""Embedded DSLs for application specification (paper §III-A).

* :mod:`repro.core.dsl.kernel_dsl` — a textual tensor-expression
  language for performance-critical kernels (in the spirit of CFDlang
  [12] and TeIL [15]); compiled to the tensor dialect.
* :mod:`repro.core.dsl.annotations` — data characteristics,
  non-functional requirements and security annotations attached to
  kernels and pipeline edges.
* :mod:`repro.core.dsl.workflow` — the Python workflow-pipeline builder
  (HyperLoom-style) that assembles kernels, sources and sinks into the
  application graph handed to the compiler.
"""

from repro.core.dsl.annotations import (
    DataAnnotation,
    Requirement,
    SecurityAnnotation,
)
from repro.core.dsl.kernel_dsl import compile_kernel, parse_kernel
from repro.core.dsl.workflow import Pipeline, Sink, Source, Task

__all__ = [
    "DataAnnotation",
    "Requirement",
    "SecurityAnnotation",
    "compile_kernel",
    "parse_kernel",
    "Pipeline",
    "Task",
    "Source",
    "Sink",
]
