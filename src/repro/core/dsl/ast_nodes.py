"""Abstract syntax tree for the kernel DSL.

Nodes carry an optional ``type`` slot filled in by the type checker
(:mod:`repro.core.dsl.typecheck`) before IR generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.ir.types import Type


@dataclass
class Node:
    """Base AST node with source position."""

    line: int = field(default=0, compare=False)


@dataclass
class Expr(Node):
    """Base expression; ``type`` is set by the type checker."""

    type: Optional[Type] = field(default=None, compare=False)


@dataclass
class NumberLiteral(Expr):
    """A numeric literal (broadcast against tensors when needed)."""

    value: float = 0.0


@dataclass
class VarRef(Expr):
    """Reference to a parameter or a previously assigned name."""

    name: str = ""


@dataclass
class BinaryOp(Expr):
    """Infix arithmetic: + - * / and @ (matmul)."""

    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnaryOp(Expr):
    """Prefix negation."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Call(Expr):
    """Builtin function call with optional keyword int-list arguments."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)
    int_lists: dict = field(default_factory=dict)  # kw -> List[int]


@dataclass
class Param(Node):
    """A kernel parameter with optional ``@annotation`` markers."""

    name: str = ""
    declared_type: Optional[Type] = None
    annotations: Tuple[str, ...] = ()

    @property
    def sensitive(self) -> bool:
        """True when the parameter carries ``@sensitive``."""
        return "sensitive" in self.annotations


@dataclass
class Assignment(Node):
    """``name = expr``."""

    name: str = ""
    value: Optional[Expr] = None


@dataclass
class Return(Node):
    """``return expr, ...``."""

    values: List[Expr] = field(default_factory=list)


@dataclass
class KernelDecl(Node):
    """A full kernel definition."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    result_types: List[Type] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class Program(Node):
    """A compilation unit: one or more kernels."""

    kernels: List[KernelDecl] = field(default_factory=list)
