"""Seeded, deterministic chaos schedules.

:func:`generate_schedule` draws a mix of faults from every class with a
``random.Random(seed)``; the same (graph, workers, seed, config) always
produces the identical :class:`ChaosSchedule`, which is what makes a
chaos run replayable from its seed pair alone.

Generated schedules are *survivable by construction*: crashes and
reconfiguration failures always come with a restart/repair, link faults
always heal, and stragglers always recover — so the liveness invariant
(every task eventually completes) is a property of the runtime, not of
schedule luck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.chaos.faults import (
    ANY_LINK,
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
)
from repro.errors import ChaosError
from repro.workflow.graph import TaskGraph

Fault = Union[WorkerCrash, LinkFault, ReconfigFault, StragglerFault,
              TaskFault]


@dataclass(frozen=True)
class ChaosConfig:
    """How many faults of each class to draw and their bounds."""

    crashes: int = 1
    link_faults: int = 1
    reconfig_faults: int = 1
    stragglers: int = 1
    task_faults: int = 1
    #: Fault times are drawn from [0, horizon_s); None estimates the
    #: horizon from the graph's serial work over the pool size.
    horizon_s: Optional[float] = None
    min_restart_s: float = 0.3
    max_restart_s: float = 1.5
    max_link_duration_s: float = 1.5
    max_repair_s: float = 1.0
    max_straggler_duration_s: float = 2.0
    max_straggler_slowdown: float = 6.0
    max_task_failures: int = 2
    partition_probability: float = 0.5


@dataclass
class ChaosSchedule:
    """An ordered list of faults plus the seed that produced it."""

    seed: int
    faults: List[Fault] = field(default_factory=list)

    def timed_faults(self) -> List[Fault]:
        """Faults with an injection time, in time order."""
        return sorted(
            (f for f in self.faults if not isinstance(f, TaskFault)),
            key=lambda f: f.at_time,
        )

    def task_faults(self) -> List[TaskFault]:
        """Faults that manifest on task attempts."""
        return [f for f in self.faults if isinstance(f, TaskFault)]

    def counts_by_kind(self) -> dict:
        """Scheduled fault count per fault class."""
        counts: dict = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    #: Total number of fault *events* this schedule will inject: each
    #: TaskFault fires once per scheduled failure.
    def total_events(self) -> int:
        return sum(
            f.failures if isinstance(f, TaskFault) else 1
            for f in self.faults
        )

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        counts = self.counts_by_kind()
        parts = [f"{counts[kind]} {kind}" for kind in sorted(counts)]
        return f"seed={self.seed}: " + (", ".join(parts) or "no faults")


def generate_schedule(
    graph: TaskGraph,
    workers: Sequence[str],
    seed: int,
    config: Optional[ChaosConfig] = None,
    link_pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> ChaosSchedule:
    """Draw a deterministic fault schedule for a run.

    ``workers`` are worker names eligible for crash/reconfig/straggler
    faults; ``link_pairs`` are (node_a, node_b) edges eligible for link
    faults — when omitted, link faults target the server's default
    staging path (:data:`~repro.chaos.faults.ANY_LINK`).
    """
    config = config or ChaosConfig()
    if not workers:
        raise ChaosError("cannot generate a schedule for zero workers")
    rng = random.Random(seed)
    horizon = config.horizon_s
    if horizon is None:
        horizon = max(1.0, graph.total_work() / max(1, len(workers)))
    worker_names = list(workers)
    faults: List[Fault] = []

    for _ in range(config.crashes):
        faults.append(WorkerCrash(
            worker=rng.choice(worker_names),
            at_time=rng.uniform(0.0, horizon),
            restart_after=rng.uniform(
                config.min_restart_s, config.max_restart_s
            ),
        ))

    pairs = list(link_pairs) if link_pairs else [(ANY_LINK, ANY_LINK)]
    for _ in range(config.link_faults):
        node_a, node_b = rng.choice(pairs)
        partition = rng.random() < config.partition_probability
        faults.append(LinkFault(
            node_a=node_a,
            node_b=node_b,
            at_time=rng.uniform(0.0, horizon),
            duration_s=rng.uniform(0.2, config.max_link_duration_s),
            bandwidth_factor=1.0 if partition
            else rng.uniform(0.01, 0.25),
            latency_add_s=0.0 if partition else rng.uniform(0.0, 0.05),
            partition=partition,
        ))

    for _ in range(config.reconfig_faults):
        faults.append(ReconfigFault(
            worker=rng.choice(worker_names),
            at_time=rng.uniform(0.0, horizon),
            repair_s=rng.uniform(0.1, config.max_repair_s),
        ))

    for _ in range(config.stragglers):
        faults.append(StragglerFault(
            worker=rng.choice(worker_names),
            at_time=rng.uniform(0.0, horizon),
            duration_s=rng.uniform(
                0.3, config.max_straggler_duration_s
            ),
            slowdown=rng.uniform(2.0, config.max_straggler_slowdown),
        ))

    task_names = sorted(graph.tasks)
    picked = rng.sample(
        task_names, min(config.task_faults, len(task_names))
    )
    for task_name in picked:
        faults.append(TaskFault(
            task=task_name,
            failures=rng.randint(1, config.max_task_failures),
        ))

    return ChaosSchedule(seed=seed, faults=faults)
