"""The fault vocabulary of the chaos layer.

Each fault class is a frozen dataclass with an ``at_time`` (simulated
seconds) and a ``kind`` tag matching the
:class:`~repro.workflow.tracing.FaultRecord` entries the resilient
server writes when the fault is applied. Faults are plain data: the
server interprets them, so schedules serialize and replay trivially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ChaosError

#: Wildcard target for link faults when no ecosystem topology is in
#: play: the fault then applies to the default inter-worker staging
#: path of the server.
ANY_LINK = "*"


@dataclass(frozen=True)
class WorkerCrash:
    """Crash ``worker`` at ``at_time``; its store and slots are lost.

    With ``restart_after`` set, the worker process is restarted that
    many seconds later and re-admitted to the pool with an empty store.
    ``restart_after=None`` is a permanent failure.
    """

    worker: str
    at_time: float
    restart_after: Optional[float] = None

    kind = "worker-crash"

    def __post_init__(self):
        _check_time(self.kind, self.at_time)
        if self.restart_after is not None and self.restart_after < 0:
            raise ChaosError(
                f"{self.kind}: restart_after must be >= 0, "
                f"got {self.restart_after}"
            )


@dataclass(frozen=True)
class LinkFault:
    """Degrade or sever the link between two nodes for a while.

    With ``partition=True`` the link is cut entirely (routing treats it
    as absent); otherwise bandwidth is multiplied by
    ``bandwidth_factor`` and ``latency_add_s`` is added per hop. The
    link heals ``duration_s`` seconds after ``at_time``. Node names of
    :data:`ANY_LINK` target the server's default staging path.
    """

    node_a: str
    node_b: str
    at_time: float
    duration_s: float
    bandwidth_factor: float = 1.0
    latency_add_s: float = 0.0
    partition: bool = False

    @property
    def kind(self) -> str:
        return "link-partition" if self.partition else "link-degradation"

    @property
    def target(self) -> str:
        return f"{self.node_a}<->{self.node_b}"

    def __post_init__(self):
        _check_time("link fault", self.at_time)
        if self.duration_s <= 0:
            raise ChaosError(
                f"link fault: duration_s must be > 0, got {self.duration_s}"
            )
        if not self.partition and not 0.0 < self.bandwidth_factor <= 1.0:
            raise ChaosError(
                f"link fault: bandwidth_factor must be in (0, 1], "
                f"got {self.bandwidth_factor}"
            )
        if self.latency_add_s < 0:
            raise ChaosError(
                f"link fault: latency_add_s must be >= 0, "
                f"got {self.latency_add_s}"
            )


@dataclass(frozen=True)
class ReconfigFault:
    """A vFPGA partial-reconfiguration failure on ``worker``'s role.

    The worker cannot accept or finish tasks while its role is being
    re-flashed; unlike a crash its object store survives. Repair takes
    ``repair_s`` seconds, after which the worker is re-admitted.
    """

    worker: str
    at_time: float
    repair_s: float = 0.5

    kind = "reconfig-failure"

    def __post_init__(self):
        _check_time(self.kind, self.at_time)
        if self.repair_s <= 0:
            raise ChaosError(
                f"{self.kind}: repair_s must be > 0, got {self.repair_s}"
            )


@dataclass(frozen=True)
class StragglerFault:
    """Slow ``worker`` down by ``slowdown``x for ``duration_s`` seconds."""

    worker: str
    at_time: float
    duration_s: float
    slowdown: float = 4.0

    kind = "straggler"

    def __post_init__(self):
        _check_time(self.kind, self.at_time)
        if self.duration_s <= 0:
            raise ChaosError(
                f"{self.kind}: duration_s must be > 0, got {self.duration_s}"
            )
        if self.slowdown <= 1.0:
            raise ChaosError(
                f"{self.kind}: slowdown must be > 1.0, got {self.slowdown}"
            )


@dataclass(frozen=True)
class TaskFault:
    """Make the first ``failures`` attempts of ``task`` fail transiently.

    Models flaky kernels / corrupted transfers: the attempt aborts
    mid-execution and the server retries with backoff. The fault has no
    ``at_time``: it manifests whenever the task is attempted.
    """

    task: str
    failures: int = 1

    kind = "task-fault"

    def __post_init__(self):
        if self.failures <= 0:
            raise ChaosError(
                f"{self.kind}: failures must be > 0, got {self.failures}"
            )


def _check_time(kind: str, at_time: float) -> None:
    if at_time < 0:
        raise ChaosError(f"{kind}: at_time must be >= 0, got {at_time}")
