"""Chaos fault injection for the simulated EVEREST platform.

The SDK papers stress that a heterogeneous runtime must tolerate much
more than a single worker crash: links degrade and partition, partial
reconfiguration of vFPGA roles fails transiently, nodes straggle, and
tasks hit transient faults. This package provides the fault vocabulary
(:mod:`faults`), a seeded deterministic schedule generator
(:mod:`schedule`), and a seeded random workflow generator
(:mod:`graphgen`) so chaos runs are property tests: any
(graph seed, fault seed) pair replays bit-identically.
"""

from repro.chaos.faults import (
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
)
from repro.chaos.graphgen import random_task_graph
from repro.chaos.schedule import (
    ChaosConfig,
    ChaosSchedule,
    generate_schedule,
)

__all__ = [
    "WorkerCrash",
    "LinkFault",
    "ReconfigFault",
    "StragglerFault",
    "TaskFault",
    "ChaosConfig",
    "ChaosSchedule",
    "generate_schedule",
    "random_task_graph",
]
