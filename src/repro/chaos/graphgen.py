"""Seeded random workflow generator for chaos property tests.

Builds layered-DAG task graphs whose shape, durations and object sizes
are fully determined by an integer seed, so a chaos test case is just a
(graph seed, fault seed) pair.
"""

from __future__ import annotations

import random

from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask


def random_task_graph(
    seed: int,
    num_tasks: int = 12,
    num_inputs: int = 2,
    max_fan_in: int = 3,
    max_cpus: int = 2,
    min_duration_s: float = 0.2,
    max_duration_s: float = 1.5,
    max_object_bytes: int = 2_000_000,
) -> TaskGraph:
    """A random DAG of ``num_tasks`` tasks, deterministic in ``seed``.

    Tasks consume objects produced earlier (or external inputs), so the
    result is acyclic by construction; every earlier object remains a
    candidate input, producing the mix of chains, fans and diamonds the
    chaos invariants should hold over.
    """
    rng = random.Random(seed)
    graph = TaskGraph(f"chaos-graph-{seed}")
    available = []
    for index in range(num_inputs):
        name = f"in{index}"
        graph.add_object(DataObject(
            name, size_bytes=rng.randrange(10_000, max_object_bytes)
        ))
        available.append(name)
    for index in range(num_tasks):
        fan_in = rng.randint(1, min(max_fan_in, len(available)))
        inputs = rng.sample(available, fan_in)
        output = f"o{index}"
        graph.add_task(WorkflowTask(
            f"t{index}",
            inputs=inputs,
            outputs=[output],
            duration_s=rng.uniform(min_duration_s, max_duration_s),
            cpus=rng.randint(1, max_cpus),
        ))
        graph.set_object_size(
            output, rng.randrange(10_000, max_object_bytes)
        )
        available.append(output)
    return graph
