"""Experiment ben-resilience — fault injection on benchmark workflows.

Paper §IV claims the runtime "allows runtime migration of both data
and computations" and can adapt when parts of the platform degrade.
This experiment drives the use-case pipeline through every individual
fault class of the chaos layer — worker crash + restart, link
degradation, link partition, vFPGA reconfiguration failure, straggler,
transient task fault — and reports makespan inflation and the recovery
work (retries, backoff, lineage) each one costs. A final row combines
all classes under a seeded schedule.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import (
    ANY_LINK,
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
)
from repro.chaos.schedule import ChaosConfig, ChaosSchedule, generate_schedule
from repro.utils.tables import Table
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.recovery import ResilientServer
from repro.workflow.worker import Worker


def pipeline_graph(members=8) -> TaskGraph:
    """The energy use-case shape: fan-out, per-member chain, reduce."""
    graph = TaskGraph("pipeline")
    graph.add_object(DataObject(
        "ensemble", size_bytes=5_000_000, locality="w0",
    ))
    for member in range(members):
        graph.add_task(WorkflowTask(
            f"downscale{member}", inputs=["ensemble"],
            outputs=[f"fine{member}"], duration_s=0.8,
        ))
        graph.set_object_size(f"fine{member}", 20_000_000)
        graph.add_task(WorkflowTask(
            f"power{member}", inputs=[f"fine{member}"],
            outputs=[f"mw{member}"], duration_s=0.3,
        ))
        graph.set_object_size(f"mw{member}", 1_000)
    graph.add_task(WorkflowTask(
        "aggregate", inputs=[f"mw{m}" for m in range(members)],
        outputs=["schedule"], duration_s=0.2,
    ))
    return graph


def pool(count=4, cpus=2):
    return [
        Worker(f"w{index}", node_name=f"n{index}", cpus=cpus)
        for index in range(count)
    ]


SCENARIOS = [
    ("worker crash+restart", [
        WorkerCrash("w1", at_time=0.5, restart_after=0.6),
    ]),
    ("link degradation 10x", [
        LinkFault(ANY_LINK, ANY_LINK, at_time=0.2, duration_s=1.0,
                  bandwidth_factor=0.1),
    ]),
    ("link partition", [
        # severed from t=0: the initial fan-out staging must back off
        LinkFault(ANY_LINK, ANY_LINK, at_time=0.0, duration_s=0.8,
                  partition=True),
    ]),
    ("vFPGA reconfig failure", [
        ReconfigFault("w2", at_time=0.5, repair_s=0.7),
    ]),
    ("straggler 4x", [
        StragglerFault("w0", at_time=0.3, duration_s=1.5,
                       slowdown=4.0),
    ]),
    ("transient task faults", [
        TaskFault("downscale0", failures=2),
        TaskFault("aggregate", failures=1),
    ]),
]


def test_resilience_per_fault_class(benchmark):
    graph_tasks = set(pipeline_graph().tasks)
    table = Table(
        "ben-resilience: fault classes on the use-case pipeline "
        "(4 workers x 2 slots)",
        ["scenario", "makespan s", "inflation", "requeued",
         "retries", "backoff s", "relineaged", "refetched"],
    )
    clean, _ = ResilientServer(pool()).run(pipeline_graph())
    table.add_row("no faults", clean.makespan, 1.0, 0, 0, 0.0, 0, 0)

    results = {}
    for label, faults in SCENARIOS:
        schedule = ChaosSchedule(seed=0, faults=list(faults))
        trace, stats = ResilientServer(pool()).run(
            pipeline_graph(), chaos=schedule,
        )
        results[label] = (trace, stats)
        table.add_row(
            label, trace.makespan, trace.makespan / clean.makespan,
            stats.tasks_requeued, stats.retries,
            stats.backoff_seconds, stats.tasks_relineaged,
            stats.inputs_refetched,
        )
    table.show()

    for label, (trace, stats) in results.items():
        # the workflow completed under every individual fault class
        assert {r.task for r in trace.records} == graph_tasks, label
        # faults never make the run faster, and degradation stays
        # bounded far below a serial re-run of all work
        assert trace.makespan >= clean.makespan - 1e-9, label
        assert trace.makespan < 2 * pipeline_graph().total_work(), label
        # every injected fault is visible in the trace
        assert trace.faults, label

    # the disruptive classes show their recovery machinery in the trace
    for label in ("worker crash+restart", "link partition",
                  "transient task faults"):
        trace, stats = results[label]
        actions = trace.recoveries_by_action()
        assert stats.retries >= 1, label
        assert stats.backoff_seconds > 0.0, label
        assert actions.get("backoff", 0) >= 1, label
        assert actions.get("retry", 0) >= 1, label

    crash_trace, crash_stats = results["worker crash+restart"]
    assert crash_stats.restarts == 1
    assert crash_trace.recoveries_by_action().get("worker-restart") == 1

    reconf_trace, reconf_stats = results["vFPGA reconfig failure"]
    assert reconf_stats.objects_lost == 0  # shell keeps the store
    assert reconf_trace.recoveries_by_action().get("worker-readmit") == 1

    benchmark(lambda: ResilientServer(pool()).run(
        pipeline_graph(),
        chaos=ChaosSchedule(seed=0, faults=[
            WorkerCrash("w1", at_time=0.5, restart_after=0.6),
        ]),
    ))


def test_resilience_combined_seeded_chaos(benchmark):
    """All fault classes at once from a seeded generator: the run
    still completes and replays identically."""
    config = ChaosConfig(crashes=2, link_faults=2, reconfig_faults=1,
                         stragglers=1, task_faults=2)

    def run_once():
        workers = pool()
        graph = pipeline_graph()
        schedule = generate_schedule(
            graph, [w.name for w in workers], seed=7, config=config,
        )
        return ResilientServer(workers).run(graph, chaos=schedule)

    trace, stats = run_once()
    table = Table(
        "ben-resilience: combined seeded chaos (fault-seed 7)",
        ["metric", "value"],
    )
    table.add_row("tasks completed",
                  len({r.task for r in trace.records}))
    table.add_row("makespan s", trace.makespan)
    for kind, count in sorted(trace.faults_by_kind().items()):
        table.add_row(f"fault: {kind}", count)
    table.add_row("retries", stats.retries)
    table.add_row("trace digest", trace.digest())
    table.show()

    assert {r.task for r in trace.records} == set(pipeline_graph().tasks)
    replay, _ = run_once()
    assert replay.to_json() == trace.to_json()

    benchmark(lambda: run_once())
