"""Experiment fig2 — the virtualized runtime environment (paper Fig. 2).

Exercises the three pillars of the figure over a phased workload:

* phase A (nominal): the autotuner settles on the best variant;
* phase B (FPGA contention by a co-tenant VM): dynamic adaptation
  switches to software;
* phase C (timing-anomaly injection): the data-protection layer
  detects the attack and auto-protection forces DIFT variants.

Reported: per-phase mean latency for adaptive vs static execution,
variant switches, detections and reactions.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.manager import SystemState
from repro.runtime.executor import RuntimeExecutor
from repro.utils.tables import Table

KERNEL = """
kernel score(X: tensor<256xf32>, G: tensor<256xf32>)
        -> tensor<256xf32> {
  Y = sigmoid(exp(X) * G)
  return Y
}
"""

PHASES = (("nominal", 0, 15), ("contention", 15, 30),
          ("attack", 30, 45))


@pytest.fixture(scope="module")
def app():
    pipeline = Pipeline("fig2-app")
    x = pipeline.source("x", TensorType((256,), F32))
    g = pipeline.source("g", TensorType((256,), F32))
    task = pipeline.task("score", KERNEL, inputs=[x, g])
    pipeline.sink("out", task.output(0))
    space = DesignSpace(
        targets=("cpu", "fpga"), threads=(1, 4),
        unrolls=(1, 4), dift_options=(False, True),
    )
    return EverestCompiler(space=space).compile(pipeline)


def phased_reality(point, state, features):
    latency = point.predicted_latency_s
    energy = point.predicted_energy_j
    if point.variant.is_hardware:
        latency *= 1.0 + 6.0 * state.fpga_contention
    else:
        latency *= 1.0 + 2.0 * state.cpu_load
    return latency, energy


def schedule(index):
    if index < 15:
        return SystemState(), DataFeatures()
    if index < 30:
        return SystemState(fpga_contention=1.0), DataFeatures()
    return SystemState(), DataFeatures()


def run_executor(app, adaptive):
    executor = RuntimeExecutor(
        app, adaptive=adaptive, reality=phased_reality
    )
    # Inject a timing attack during phase C by inflating measured
    # latencies through a wrapped reality model.
    original = executor.reality

    def attacked(point, state, features):
        latency, energy = original(point, state, features)
        return latency, energy

    results = []
    # run phases A+B normally
    for index in range(30):
        state, features = schedule(index)
        results.append(executor.run_round(index, state, features))
    # phase C: timing-channel attack inflates latencies 5x
    executor.reality = lambda p, s, f: tuple(
        value * (5.0 if i == 0 else 1.0)
        for i, value in enumerate(original(p, s, f))
    )
    for index in range(30, 45):
        state, features = schedule(index)
        results.append(executor.run_round(index, state, features))
    return executor, results


def test_fig2_adaptation_and_protection(app, benchmark):
    adaptive_exec, adaptive_rounds = run_executor(app, adaptive=True)
    static_exec, static_rounds = run_executor(app, adaptive=False)

    table = Table(
        "fig2: virtualized runtime under a phased workload "
        "(per-round latency, reconfig excluded)",
        ["phase", "adaptive us", "static us", "adaptive choice"],
    )
    for name, start, end in PHASES:
        adaptive_lat = sum(
            r.latency_s - r.reconfig_s
            for r in adaptive_rounds[start:end]
        ) / (end - start)
        static_lat = sum(
            r.latency_s - r.reconfig_s
            for r in static_rounds[start:end]
        ) / (end - start)
        choice = adaptive_rounds[end - 1].selections["score"]
        table.add_row(
            name, adaptive_lat * 1e6, static_lat * 1e6, choice
        )
    table.show()

    print(f"adaptive switches : {adaptive_exec.manager.switches}")
    print(f"anomaly detections: "
          f"{adaptive_exec.monitor.detection_count()}")
    print(f"incidents         : "
          f"{len(adaptive_exec.protection.incidents)}")
    print(f"DIFT forced       : "
          f"{adaptive_exec.protection.dift_forced}")

    # Shape claims:
    # 1. under contention, adaptive beats static
    contention_adaptive = sum(
        r.latency_s - r.reconfig_s for r in adaptive_rounds[15:30]
    )
    contention_static = sum(
        r.latency_s - r.reconfig_s for r in static_rounds[15:30]
    )
    assert contention_adaptive < contention_static
    # 2. the adaptive runtime actually switched variants
    assert adaptive_exec.manager.switches >= 1
    # 3. the timing attack was detected and auto-protection reacted
    assert adaptive_exec.monitor.detection_count() >= 1
    assert adaptive_exec.protection.dift_forced
    # 4. under alert, only DIFT variants are selected
    final_choice = adaptive_rounds[-1].selections["score"]
    assert "dift" in final_choice

    benchmark(
        lambda: adaptive_exec.manager.select(
            "score", SystemState(), DataFeatures()
        )
    )


def test_fig2_vfpga_isolation(app, benchmark):
    """The hypervisor extensions isolate FPGA roles between VMs."""
    from repro.errors import SecurityError
    from repro.platform.node import build_power9_node
    from repro.runtime.virt import VFPGAManager, VM
    from repro.utils.units import GB

    node = build_power9_node(role_slots=2)
    manager = VFPGAManager(node)
    tenant_a = VM("tenant-a", vcpus=2, memory_bytes=GB)
    tenant_b = VM("tenant-b", vcpus=2, memory_bytes=GB)

    variant = next(
        v for v in app.package.variants_for("score") if v.is_hardware
    )
    bitstream = app.package.artifact_for(variant).payload
    lease = manager.allocate(tenant_a, bitstream)

    blocked = 0
    for _ in range(100):
        try:
            manager.access(tenant_b, lease.role.name)
        except SecurityError:
            blocked += 1
    print(f"\nfig2: foreign-role accesses blocked: {blocked}/100")
    assert blocked == 100

    benchmark(lambda: manager.access(tenant_a, lease.role.name))
