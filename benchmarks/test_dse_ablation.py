"""Experiment ben-dse — exploration-strategy ablation (paper §III-B).

The middle-end "explores code variants" over a large knob space; the
choice of search strategy trades evaluations for front quality. The
hypervolume of the discovered Pareto front (against a fixed reference)
is compared across exhaustive, random and evolutionary search at equal
budgets.
"""

from __future__ import annotations

import pytest

from repro.core.dse.explorer import Explorer
from repro.core.dse.pareto import hypervolume_2d, knee_point
from repro.core.dse.space import DesignSpace
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.utils.tables import Table

KERNEL = """
kernel score(X: tensor<1024xf32>, G: tensor<1024xf32>)
        -> tensor<1024xf32> {
  Y = sigmoid(exp(X) * G + X)
  return Y
}
"""

SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 2, 4, 8, 16),
    unrolls=(1, 2, 4, 8, 16),
    memory_strategies=("auto", "none"),
    clocks_hz=(150e6, 250e6, 350e6),
)


@pytest.fixture(scope="module")
def module():
    return compile_kernel(KERNEL)


def test_dse_strategy_ablation(module, benchmark):
    explorer = Explorer(module, "score", SPACE)

    exhaustive = explorer.exhaustive()
    reference = (
        2 * max(v.cost.latency_s for v in exhaustive.feasible),
        2 * max(v.cost.energy_j for v in exhaustive.feasible),
    )
    full_volume = hypervolume_2d(exhaustive.evaluated, reference)

    budget = max(8, exhaustive.evaluations // 4)
    random_result = explorer.random(budget=budget, seed="abl")
    evolutionary_result = explorer.evolutionary(
        budget=budget, population=4, seed="abl"
    )

    table = Table(
        f"ben-dse: search strategies (space size "
        f"{SPACE.size()}, budget {budget})",
        ["strategy", "evaluations", "front size",
         "hypervolume % of exhaustive"],
    )
    for name, result in (
        ("exhaustive", exhaustive),
        ("random", random_result),
        ("evolutionary", evolutionary_result),
    ):
        volume = hypervolume_2d(result.evaluated, reference)
        table.add_row(
            name, result.evaluations, len(result.front),
            100.0 * volume / full_volume if full_volume else 0.0,
        )
    table.show()

    random_volume = hypervolume_2d(random_result.evaluated, reference)
    evolutionary_volume = hypervolume_2d(
        evolutionary_result.evaluated, reference
    )
    # budgeted searches recover most of the front at ~25% of the cost
    assert random_volume > 0.5 * full_volume
    assert evolutionary_volume > 0.5 * full_volume
    # exhaustive is the upper bound
    assert full_volume >= random_volume - 1e-18
    assert full_volume >= evolutionary_volume - 1e-18

    knee = knee_point(exhaustive.evaluated)
    print(f"knee variant: {knee.knobs.describe()} "
          f"({knee.cost.latency_s * 1e6:.2f} us, "
          f"{knee.cost.energy_j * 1e6:.2f} uJ)")

    small = DesignSpace.small()
    quick = Explorer(module, "score", small)
    benchmark(lambda: quick.exhaustive())
