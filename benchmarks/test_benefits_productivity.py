"""Experiment ben-productivity — §VI-D "design productivity" and
"programmability support".

"Non-expert programmers will use domain-specific extensions to
express the semantics ... the EVEREST SDK will hide the platform
details to the application, enabling the porting across target
platforms." One application specification is compiled, unchanged, for
three very different nodes; the table reports what the SDK generates
from how little input.
"""

from __future__ import annotations

import pytest

from repro.core.backend.sycl_gen import generate_sycl
from repro.core.compiler import EverestCompiler
from repro.core.dse.cost_model import (
    ArchitectureModel,
    prepare_variant_module,
)
from repro.core.dse.space import DesignSpace
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.platform.interconnect import EthernetLink, PCIeLink
from repro.platform.resources import CPUDescription, FPGAResources
from repro.utils.tables import Table

APP_SRC = """
kernel score(X: tensor<512xf32>, G: tensor<512xf32>)
        -> tensor<512xf32> {
  Y = sigmoid(exp(X) * G)
  return Y
}
"""

TARGET_NODES = {
    "power9+capi": ArchitectureModel(),
    "edge-arm+fpga": ArchitectureModel(
        name="edge",
        cpu=CPUDescription("ARM", cores=4, frequency_hz=1.5e9,
                           flops_per_cycle=2.0, tdp_watts=8.0,
                           idle_watts=1.5),
        fpga_role_capacity=FPGAResources(
            luts=97_000, ffs=204_000, bram_kb=4_500, dsps=1_238
        ),
        fpga_link=PCIeLink(lanes=4),
        host_memory_bandwidth=12.8e9,
        base_clock_hz=250e6,
    ),
    "cloudfpga": ArchitectureModel(
        name="cloudfpga",
        cpu=CPUDescription("x86-host", cores=8,
                           frequency_hz=2.8e9,
                           flops_per_cycle=8.0),
        fpga_role_capacity=FPGAResources(
            luts=271_000, ffs=573_000, bram_kb=35_500, dsps=2_720
        ),
        fpga_link=EthernetLink(gbps=10.0, protocol="udp"),
        base_clock_hz=300e6,
    ),
}


def build_pipeline() -> Pipeline:
    pipeline = Pipeline("portable-app")
    x = pipeline.source("x", TensorType((512,), F32))
    g = pipeline.source("g", TensorType((512,), F32))
    task = pipeline.task("score", APP_SRC, inputs=[x, g])
    pipeline.sink("out", task.output(0))
    return pipeline


def test_productivity_one_spec_three_targets(benchmark):
    spec_lines = len([
        line for line in APP_SRC.strip().splitlines()
        if line.strip() and not line.strip().startswith("#")
    ])

    table = Table(
        "ben-productivity: one DSL spec "
        f"({spec_lines} lines) compiled per target",
        ["target", "variants", "hw", "sw", "best lat us",
         "best energy uJ", "chosen"],
    )
    results = {}
    for target_name, model in TARGET_NODES.items():
        compiler = EverestCompiler(
            space=DesignSpace(
                targets=("cpu", "fpga"), threads=(1, 4),
                unrolls=(1, 4, 8),
                clocks_hz=(150e6, 250e6),
            ),
            model=model,
            emit_artifacts=False,
        )
        app = compiler.compile(build_pipeline())
        result = app.exploration["score"]
        best = result.best_latency()
        results[target_name] = (app, result, best)
        table.add_row(
            target_name,
            len(result.feasible),
            sum(1 for v in result.feasible if v.is_hardware),
            sum(1 for v in result.feasible if not v.is_hardware),
            best.cost.latency_s * 1e6,
            result.best_energy().cost.energy_j * 1e6,
            best.knobs.describe(),
        )
    table.show()

    # the same unchanged spec compiles everywhere with feasible
    # variants of both classes
    for target_name, (_app, result, _best) in results.items():
        assert result.feasible, target_name
        assert any(v.is_hardware for v in result.feasible), target_name
        assert any(not v.is_hardware for v in result.feasible), \
            target_name
    # targets genuinely differ: the chosen best differs in knobs or cost
    latencies = {
        round(best.cost.latency_s * 1e9)
        for _t, (_a, _r, best) in results.items()
    }
    assert len(latencies) >= 2

    pipeline = build_pipeline()
    compiler = EverestCompiler(
        space=DesignSpace.small(), emit_artifacts=False
    )
    benchmark(lambda: compiler.compile(pipeline))


def test_productivity_generated_artifacts(benchmark):
    """Lines of input vs lines of generated implementation."""
    from repro.core.hls.bambu import HLSOptions, synthesize
    from repro.core.variants import VariantKnobs

    module_src_lines = len([
        line for line in APP_SRC.strip().splitlines()
        if line.strip() and not line.strip().startswith("#")
    ])
    from repro.core.dsl.kernel_dsl import compile_kernel

    module = compile_kernel(APP_SRC)
    knobs = VariantKnobs(target="cpu", threads=4)
    prepared = prepare_variant_module(module, "score", knobs)
    sycl_text = generate_sycl(prepared, "score")

    hw_knobs = VariantKnobs(target="fpga", unroll=4)
    hw_prepared = prepare_variant_module(module, "score", hw_knobs)
    design = synthesize(hw_prepared, "score", HLSOptions())
    rtl_text = design.rtl()

    table = Table(
        "ben-productivity: generated artifacts from the one spec",
        ["artifact", "lines"],
    )
    table.add_row("DSL input", module_src_lines)
    table.add_row("generated SYCL C++", len(sycl_text.splitlines()))
    table.add_row("generated pseudo-RTL", len(rtl_text.splitlines()))
    table.show()

    assert len(sycl_text.splitlines()) > 3 * module_src_lines
    assert len(rtl_text.splitlines()) > 5 * module_src_lines
    assert "parallel_for" in sycl_text
    assert "module score" in rtl_text

    benchmark(lambda: generate_sycl(prepared, "score"))
