"""Shared fixtures and helpers for the benchmark harness.

Every ``test_*`` module regenerates one figure or claim of the paper
(see DESIGN.md's per-experiment index): it prints the rows the paper's
evaluation would contain and times a representative kernel of the
experiment with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print result tables; -s is implied by convention, but
    # ensure capture shows output on demand.
    pass


@pytest.fixture(scope="session")
def show():
    """Print helper that survives output capture (uses terminal writer)."""

    def _show(text: str) -> None:
        print(text)

    return _show
