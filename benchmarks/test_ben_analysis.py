"""Experiment ben-analysis — the static-analysis gate is cheap.

The pre-DSE analyses (structural verification, static IFT, partition
legality, lints) run on every compilation; their value proposition
only holds if they cost a small fraction of the compile+DSE work they
gate. This benchmark runs both over the fig1 three-kernel suite and
asserts the analysis wall time stays under 20% of the compile+DSE
time.
"""

from __future__ import annotations

import time

from repro.core.analysis import analyze_module
from repro.core.compiler import EverestCompiler
from repro.core.ir.verifier import verify_diagnostics
from repro.utils.tables import Table

from benchmarks.test_fig1_compilation_flow import SPACE, build_application

ANALYSIS_BUDGET_FRACTION = 0.20


def _time(callable_, repeat=3):
    """Best-of-N wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_ben_analysis_overhead(benchmark):
    """Static analysis < 20% of compile+DSE on the fig1 suite."""
    pipeline = build_application()
    compiler = EverestCompiler(
        space=SPACE, emit_artifacts=False, static_checks=False,
    )
    compile_seconds, app = _time(
        lambda: compiler.compile(build_application()), repeat=1
    )
    module = app.module

    def run_analyses():
        diagnostics = verify_diagnostics(module)
        return analyze_module(module, diagnostics)

    analysis_seconds, diagnostics = _time(run_analyses)
    benchmark(run_analyses)

    table = Table(
        "ben-analysis: static-analysis cost vs compile+DSE (fig1 suite)",
        ["phase", "seconds", "fraction"],
    )
    table.add_row("compile + DSE", f"{compile_seconds:.4f}", "1.00")
    table.add_row(
        "verify + analyses",
        f"{analysis_seconds:.4f}",
        f"{analysis_seconds / compile_seconds:.3f}",
    )
    table.show()

    assert not diagnostics.has_errors, diagnostics.render_text()
    assert analysis_seconds < ANALYSIS_BUDGET_FRACTION * compile_seconds, (
        f"analysis took {analysis_seconds:.4f}s, more than "
        f"{ANALYSIS_BUDGET_FRACTION:.0%} of the "
        f"{compile_seconds:.4f}s compile+DSE time"
    )
    assert pipeline.tasks  # the suite really has kernels


def test_ben_analysis_scales_with_kernels(benchmark):
    """Per-kernel analysis cost stays flat across the suite."""
    app = EverestCompiler(
        space=SPACE, emit_artifacts=False,
    ).compile(build_application())
    module = app.module

    seconds, _ = _time(lambda: analyze_module(module))
    benchmark(lambda: analyze_module(module))
    kernels = max(1, len(list(module.functions())))
    per_kernel = seconds / kernels
    # sanity ceiling: milliseconds per kernel, not seconds
    assert per_kernel < 0.25, (
        f"{per_kernel:.4f}s per kernel is too slow for a gate"
    )
