"""Experiment ben-durability — what crash-safety costs, what it saves.

The durability layer must be cheap enough to leave on (a write-ahead
journal in the execution path) and snapshots must actually buy O(tail)
resume. Two claims, each pinned with a hard bound:

* **journaling overhead** — running the ben-resilience combined-chaos
  workload with a journal attached costs < 10 % wall time over the
  identical un-journaled run (best-of-N to shed scheduler noise).
  Tasks carry real compute payloads (hashing the data volumes the
  pipeline models) — the denominator is a run doing actual work, as
  in production, not the bare discrete-event simulation. The hard
  bound is pinned on ``fsync="never"`` — every record is still
  written and flushed before execution proceeds, which is exactly the
  process-crash model the crash-everywhere resume matrix proves; the
  fsync-bearing modes (``snapshot``, ``always``) buy OS-crash
  durability with latency that depends on the host's disk, so they
  are reported and sanity-bounded, not held to the 10 % budget;
* **snapshot leverage** — resuming from the newest snapshot folds
  < 20 % of the journal records a full replay would, on a journal
  with the default snapshot cadence scaled to the workload.
"""

from __future__ import annotations

import gc
import hashlib
import time

from repro.chaos.schedule import ChaosConfig, generate_schedule
from repro.utils.tables import Table
from repro.workflow.journal import RunJournal, replay_journal
from repro.workflow.recovery import ResilientServer

from benchmarks.test_benefits_resilience import pipeline_graph, pool

CONFIG = ChaosConfig(crashes=2, link_faults=2, reconfig_faults=1,
                     stragglers=1, task_faults=2)

#: Bytes each task payload hashes — a stand-in for the per-member
#: processing the pipeline models (its data objects are 5-20 MB).
_PAYLOAD_BYTES = 14_000_000
_PAYLOAD_BUFFER = b"\xa5" * _PAYLOAD_BYTES


def _compute_payload() -> str:
    return hashlib.sha256(_PAYLOAD_BUFFER).hexdigest()


def run_workload(journal=None, payloads=False):
    """One combined-chaos run of the ben-resilience pipeline."""
    workers = pool()
    graph = pipeline_graph()
    if payloads:
        for task in graph.tasks.values():
            task.payload = _compute_payload
    schedule = generate_schedule(
        graph, [w.name for w in workers], seed=7, config=CONFIG,
    )
    return ResilientServer(workers).run(
        graph, chaos=schedule, journal=journal,
    )


def best_of(repeats, action):
    """Minimum wall time of ``repeats`` runs of ``action``.

    Collects garbage before every rep so a GC pause triggered by the
    previous variant's garbage never lands inside this measurement.
    """
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


def test_journaling_overhead_under_10_percent(tmp_path, benchmark):
    repeats = 9

    def plain():
        run_workload(payloads=True)

    def journaled(fsync):
        directory = tmp_path / f"run-{time.monotonic_ns()}"
        with RunJournal(directory, snapshot_every=100,
                        fsync=fsync) as journal:
            run_workload(journal=journal, payloads=True)

    # warm imports, caches and the journal write path out of the
    # measurement
    plain()
    journaled("never")

    base = best_of(repeats, plain)
    overheads = {}
    table = Table(
        "ben-durability: journal cost on the combined-chaos workload",
        ["variant", f"best-of-{repeats} s", "overhead"],
    )
    table.add_row("no journal", f"{base:.4f}", "-")
    for fsync in ("never", "snapshot", "always"):
        durable = best_of(repeats, lambda: journaled(fsync))
        overheads[fsync] = durable / base - 1.0
        table.add_row(f"journal fsync={fsync}", f"{durable:.4f}",
                      f"{overheads[fsync]:+.1%}")
    table.show()

    assert overheads["never"] < 0.10, (
        f"journaling costs {overheads['never']:.1%} wall time "
        f"(budget: 10%)"
    )
    # the fsync-bearing modes pay host-dependent disk latency on a
    # handful of syncs (header, snapshots, checkpoints, finish /
    # every record) — keep them sane, not to the 10% budget
    assert overheads["snapshot"] < 1.0
    assert overheads["always"] < 3.0
    benchmark(lambda: journaled("never"))


def test_snapshot_resume_replays_under_20_percent(tmp_path, benchmark):
    directory = tmp_path / "run"
    trace, _stats = None, None
    with RunJournal(directory, snapshot_every=40) as journal:
        trace, _stats = run_workload(journal=journal)

    state, info = replay_journal(directory, use_snapshots=True)
    full, full_info = replay_journal(directory, use_snapshots=False)
    fraction = info.records_replayed / info.records_total

    table = Table(
        "ben-durability: snapshot leverage at resume",
        ["metric", "value"],
    )
    table.add_row("journal records", info.records_total)
    table.add_row("snapshot covers seq", info.snapshot_seq)
    table.add_row("records folded at resume", info.records_replayed)
    table.add_row("fraction of full replay", f"{fraction:.1%}")
    table.show()

    assert state.finished and state.digest == trace.digest()
    assert state.to_dict() == full.to_dict()
    assert full_info.records_replayed == info.records_total
    assert fraction < 0.20, (
        f"snapshot resume folded {fraction:.1%} of the journal "
        f"(budget: 20%)"
    )
    benchmark(lambda: replay_journal(directory, use_snapshots=True))
