"""Experiment ben-workflow — the HyperLoom-style engine (paper §III-A).

"The envisioned platform aims to improve resource utilization and
reduces the overall workflow processing time." Scheduler-policy
comparison over three DAG families (wide fan-out, deep chains with
decoys, the use-case pipeline shape), reporting makespan, utilization
and data movement; plus strong-scaling of the worker pool.
"""

from __future__ import annotations

import pytest

from repro.utils.rng import deterministic_rng
from repro.utils.tables import Table
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.scheduler import make_policy
from repro.workflow.server import WorkflowServer
from repro.workflow.worker import Worker


def wide_graph(width=24) -> TaskGraph:
    graph = TaskGraph("wide")
    graph.add_object(DataObject("in", size_bytes=10_000))
    rng = deterministic_rng("wide")
    for index in range(width):
        graph.add_task(WorkflowTask(
            f"map{index}", inputs=["in"], outputs=[f"m{index}"],
            duration_s=float(rng.uniform(0.2, 1.5)),
        ))
    graph.add_task(WorkflowTask(
        "reduce", inputs=[f"m{index}" for index in range(width)],
        outputs=["out"], duration_s=0.5,
    ))
    return graph


def adversarial_graph() -> TaskGraph:
    """Short decoys listed first; a long chain carries the critical
    path — FIFO starts the decoys, b-level starts the chain."""
    graph = TaskGraph("adversarial")
    graph.add_object(DataObject("in", size_bytes=10_000))
    for index in range(8):
        graph.add_task(WorkflowTask(
            f"decoy{index}", inputs=["in"], outputs=[f"d{index}"],
            duration_s=1.0,
        ))
    previous = "in"
    for index in range(5):
        graph.add_task(WorkflowTask(
            f"chain{index}", inputs=[previous],
            outputs=[f"c{index}"], duration_s=1.6,
        ))
        previous = f"c{index}"
    return graph


def usecase_graph() -> TaskGraph:
    """The energy pipeline shape: ensemble fan-out, downscale,
    per-member model, reduce, market step."""
    graph = TaskGraph("usecase")
    graph.add_object(DataObject("ensemble", size_bytes=5_000_000))
    members = 8
    for member in range(members):
        graph.add_task(WorkflowTask(
            f"downscale{member}", inputs=["ensemble"],
            outputs=[f"fine{member}"], duration_s=0.8,
        ))
        graph.set_object_size(f"fine{member}", 20_000_000)
        graph.add_task(WorkflowTask(
            f"power{member}", inputs=[f"fine{member}"],
            outputs=[f"mw{member}"], duration_s=0.3,
        ))
        graph.set_object_size(f"mw{member}", 1_000)
    graph.add_task(WorkflowTask(
        "aggregate", inputs=[f"mw{m}" for m in range(members)],
        outputs=["schedule"], duration_s=0.2,
    ))
    graph.add_task(WorkflowTask(
        "market", inputs=["schedule"], outputs=["bid"],
        duration_s=0.1,
    ))
    return graph


GRAPHS = {
    "wide-24": wide_graph,
    "adversarial": adversarial_graph,
    "usecase-energy": usecase_graph,
}


def pool(count=4, cpus=2):
    return [
        Worker(f"w{index}", node_name=f"n{index}", cpus=cpus)
        for index in range(count)
    ]


def test_workflow_policy_comparison(benchmark):
    table = Table(
        "ben-workflow: scheduling policy x DAG family "
        "(4 workers x 2 slots)",
        ["graph", "policy", "makespan s", "utilization %",
         "bytes moved MB", "avg wait s"],
    )
    makespans = {}
    for graph_name, builder in GRAPHS.items():
        for policy_name in ("fifo", "b-level", "locality"):
            server = WorkflowServer(
                pool(), policy=make_policy(policy_name)
            )
            trace = server.run(builder())
            makespans[(graph_name, policy_name)] = trace.makespan
            table.add_row(
                graph_name,
                policy_name,
                trace.makespan,
                trace.utilization(server.total_slots()) * 100,
                trace.bytes_moved / 1e6,
                trace.average_wait(),
            )
    table.show()

    # b-level at least matches FIFO everywhere and wins on the
    # adversarial family
    for graph_name in GRAPHS:
        assert makespans[(graph_name, "b-level")] <= \
            makespans[(graph_name, "fifo")] + 1e-9, graph_name
    assert makespans[("adversarial", "b-level")] < \
        makespans[("adversarial", "fifo")]

    server = WorkflowServer(pool(), policy=make_policy("b-level"))
    benchmark(lambda: server.run(adversarial_graph()))


def test_workflow_fault_tolerance(benchmark):
    """§IV migration claim: the engine survives worker crashes with
    bounded makespan inflation via lineage re-execution."""
    from repro.workflow.recovery import (
        FailureInjection,
        ResilientServer,
    )

    graph_builder = usecase_graph

    table = Table(
        "ben-workflow: crash recovery on the use-case pipeline "
        "(4 workers)",
        ["scenario", "makespan s", "requeued", "relineaged",
         "refetched"],
    )
    clean_trace, clean_stats = ResilientServer(pool()).run(
        graph_builder()
    )
    table.add_row("no failure", clean_trace.makespan, 0, 0, 0)
    results = {}
    for label, failures in (
        ("1 crash @0.5s", [FailureInjection("w1", 0.5)]),
        ("2 crashes", [FailureInjection("w1", 0.4),
                       FailureInjection("w2", 0.9)]),
    ):
        trace, stats = ResilientServer(pool()).run(
            graph_builder(), failures=failures
        )
        results[label] = (trace, stats)
        table.add_row(
            label, trace.makespan, stats.tasks_requeued,
            stats.tasks_relineaged, stats.inputs_refetched,
        )
    table.show()

    graph = graph_builder()
    for label, (trace, stats) in results.items():
        # every task still completed
        assert {r.task for r in trace.records} >= set(graph.tasks)
        # bounded degradation: better than a full serial re-run
        assert trace.makespan < 2 * graph.total_work(), label
        assert trace.makespan >= clean_trace.makespan - 1e-9

    benchmark(lambda: ResilientServer(pool()).run(
        graph_builder(),
        failures=[FailureInjection("w1", 0.5)],
    ))


def test_workflow_strong_scaling(benchmark):
    table = Table(
        "ben-workflow: strong scaling of the wide-24 graph "
        "(b-level policy)",
        ["workers", "makespan s", "speedup", "utilization %"],
    )
    base = None
    results = {}
    for workers in (1, 2, 4, 8):
        server = WorkflowServer(
            pool(count=workers, cpus=1),
            policy=make_policy("b-level"),
        )
        trace = server.run(wide_graph())
        if base is None:
            base = trace.makespan
        results[workers] = trace.makespan
        table.add_row(
            workers,
            trace.makespan,
            base / trace.makespan,
            trace.utilization(server.total_slots()) * 100,
        )
    table.show()

    # near-linear until the reduce barrier limits it
    assert results[4] < 0.35 * results[1]
    assert results[8] < results[4]
    # bounded below by the critical path
    graph = wide_graph()
    assert results[8] >= graph.critical_path_length() - 1e-9

    server = WorkflowServer(pool(count=8, cpus=1))
    benchmark(lambda: server.run(wide_graph()))
