"""Experiment ben-speedup — §VI-D "performance and energy efficiency".

"The efficient use of heterogeneous resources and, in particular,
hardware acceleration will reduce the time and the energy spent for
obtaining the results." A kernel suite spanning the workload classes
of the use cases (streaming transcendental chains, GEMM, reductions)
is evaluated across software and hardware variants; the table reports
who wins latency, who wins energy, and by what factor.

Expected shape: FPGA variants win energy across the board (an order of
magnitude or more); they win latency on high-intensity streaming
kernels and lose it on link-bandwidth-bound or tiny kernels — which is
exactly why EVEREST generates *both* and selects at run time.
"""

from __future__ import annotations

import pytest

from repro.core.dse.cost_model import evaluate_variant
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.variants import VariantKnobs
from repro.utils.tables import Table

SUITE = {
    "plume-chain": """
    kernel plume_chain(X: tensor<4096xf32>, S: tensor<4096xf32>)
            -> tensor<4096xf32> {
      L = exp(-(X * X) * S)
      Y = L * 2.0 + tanh(L * 0.5) + sigmoid(L)
      return Y
    }
    """,
    "mc-sampling": """
    kernel mc_sampling(U: tensor<8192xf32>, M: tensor<8192xf32>)
            -> tensor<8192xf32> {
      S = M + U * M * 0.3
      T = maximum(S, M * 0.15)
      Y = tanh(T * 0.01)
      return Y
    }
    """,
    "gemm-32": """
    kernel gemm32(A: tensor<32x32xf32>, B: tensor<32x32xf32>)
            -> tensor<32x32xf32> {
      C = A @ B
      return C
    }
    """,
    "stats-reduce": """
    kernel stats(X: tensor<128x64xf32>) -> tensor<64xf32> {
      M = mean(X, axes=[0])
      return M
    }
    """,
}

VARIANTS = {
    "cpu x1": VariantKnobs(target="cpu", threads=1),
    "cpu x8": VariantKnobs(target="cpu", threads=8),
    "fpga u1": VariantKnobs(target="fpga", unroll=1),
    "fpga u8": VariantKnobs(target="fpga", unroll=8),
}


@pytest.fixture(scope="module")
def results():
    data = {}
    for kernel_name, src in SUITE.items():
        module = compile_kernel(src)
        symbol = module.functions()[0].name
        data[kernel_name] = {
            variant_name: evaluate_variant(module, symbol, knobs)
            for variant_name, knobs in VARIANTS.items()
        }
    return data


def test_benefits_speedup_table(results, benchmark):
    table = Table(
        "ben-speedup: kernel suite across variants "
        "(latency us / energy uJ)",
        ["kernel", "variant", "latency us", "energy uJ", "feasible"],
    )
    for kernel_name, costs in results.items():
        for variant_name, cost in costs.items():
            table.add_row(
                kernel_name, variant_name,
                cost.latency_s * 1e6, cost.energy_j * 1e6,
                cost.feasible,
            )
    table.show()

    summary = Table(
        "ben-speedup: best-hardware vs best-software factors",
        ["kernel", "hw/sw latency factor", "hw/sw energy factor"],
    )
    energy_wins = 0
    latency_wins = 0
    for kernel_name, costs in results.items():
        best_sw_lat = min(
            costs[v].latency_s for v in ("cpu x1", "cpu x8")
        )
        best_hw_lat = min(
            costs[v].latency_s for v in ("fpga u1", "fpga u8")
            if costs[v].feasible
        )
        best_sw_energy = min(
            costs[v].energy_j for v in ("cpu x1", "cpu x8")
        )
        best_hw_energy = min(
            costs[v].energy_j for v in ("fpga u1", "fpga u8")
            if costs[v].feasible
        )
        summary.add_row(
            kernel_name,
            best_sw_lat / best_hw_lat,
            best_sw_energy / best_hw_energy,
        )
        if best_hw_energy < best_sw_energy:
            energy_wins += 1
        if best_hw_lat < best_sw_lat:
            latency_wins += 1
    summary.show()

    # the paper's claim: energy efficiency across the board...
    assert energy_wins == len(SUITE), \
        "FPGA should win energy on every kernel"
    # ...with large factors on at least some kernels
    factors = [
        min(results[k][v].energy_j for v in ("cpu x1", "cpu x8"))
        / min(results[k][v].energy_j for v in ("fpga u1", "fpga u8"))
        for k in SUITE
    ]
    assert max(factors) > 10.0
    # latency: the streaming kernels favor hardware, GEMM-32 does not
    # (too small, recurrence-bound) — heterogeneity is the point
    assert latency_wins >= 1
    plume = results["plume-chain"]
    assert min(plume["fpga u8"].latency_s, plume["fpga u1"].latency_s) \
        < min(plume["cpu x1"].latency_s, plume["cpu x8"].latency_s)

    module = compile_kernel(SUITE["plume-chain"])
    benchmark(lambda: evaluate_variant(
        module, "plume_chain", VariantKnobs(target="cpu")
    ))
