"""Experiment ben-dse-cache — the content-hashed cost cache pays off.

The evaluation engine memoizes ``(module digest, kernel, knobs, model)``
→ cost in a persistent on-disk store, so a second exploration of the
same kernel — here modeled as a fresh invocation: reconfigured caches,
empty memory, same cache directory — skips every HLS re-synthesis. The
claim quantified: a warm re-exploration is at least 5x faster than the
cold one and serves at least 90% of its lookups from the cache, while
producing byte-identical results.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dse.cache import (
    DEFAULT_PREPARED_CAPACITY,
    clear_caches,
    configure,
    cost_cache,
)
from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.utils.tables import Table

KERNEL = """
kernel score(X: tensor<1024xf32>, G: tensor<1024xf32>)
        -> tensor<1024xf32> {
  Y = sigmoid(exp(X) * G + X)
  return Y
}
"""

#: FPGA-heavy space: most points run the pass pipeline + HLS, which is
#: exactly the work the cache is supposed to amortize.
SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 2, 4, 8),
    unrolls=(1, 2, 4, 8, 16),
    tiles=(0, 8),
    memory_strategies=("auto", "cyclic", "none"),
    clocks_hz=(150e6, 250e6),
)

MIN_SPEEDUP = 5.0
MIN_HIT_RATIO = 0.90


@pytest.fixture
def cache_dir(tmp_path):
    """A throwaway persistent cache directory; the library default
    (memory-only) is restored afterwards."""
    yield tmp_path / "repro-dse"
    configure(cache_dir=None)
    clear_caches()


def _explore(module):
    return Explorer(module, "score", space=SPACE).run("exhaustive")


def test_ben_dse_cache_warm_speedup(cache_dir, benchmark):
    """Warm re-exploration: >= 5x faster, >= 90% cache hits."""
    module = compile_kernel(KERNEL)

    # Cold invocation: configured cache directory, nothing in it.
    configure(cache_dir=cache_dir,
              prepared_capacity=DEFAULT_PREPARED_CAPACITY)
    clear_caches()
    start = time.perf_counter()
    cold_result = _explore(module)
    cold_seconds = time.perf_counter() - start

    # Warm invocation: fresh in-memory state (as a new process would
    # have), same directory on disk.
    configure(cache_dir=cache_dir,
              prepared_capacity=DEFAULT_PREPARED_CAPACITY)
    start = time.perf_counter()
    warm_result = _explore(module)
    warm_seconds = time.perf_counter() - start
    stats = cost_cache().stats.snapshot()

    benchmark(lambda: _explore(module))

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    table = Table(
        f"ben-dse-cache: cold vs warm exploration "
        f"({cold_result.evaluations} points)",
        ["invocation", "seconds", "cache hits", "hit ratio"],
    )
    table.add_row("cold", f"{cold_seconds:.4f}", 0, "0%")
    table.add_row(
        "warm", f"{warm_seconds:.4f}", stats.hits,
        f"{100.0 * stats.hit_ratio:.1f}%",
    )
    table.add_row("speedup", f"{speedup:.1f}x", "", "")
    table.show()

    assert warm_result.to_json() == cold_result.to_json()
    assert stats.hit_ratio >= MIN_HIT_RATIO, (
        f"warm run served only {stats.hit_ratio:.1%} of lookups from "
        f"the cache (need >= {MIN_HIT_RATIO:.0%})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm exploration only {speedup:.1f}x faster than cold "
        f"(need >= {MIN_SPEEDUP:.0f}x)"
    )


def test_ben_dse_cache_zero_resynthesis(cache_dir):
    """The warm run never reaches HLS: every point is a cost-cache
    hit, so re-synthesis count is exactly zero."""
    module = compile_kernel(KERNEL)
    configure(cache_dir=cache_dir,
              prepared_capacity=DEFAULT_PREPARED_CAPACITY)
    clear_caches()
    _explore(module)

    configure(cache_dir=cache_dir,
              prepared_capacity=DEFAULT_PREPARED_CAPACITY)
    import repro.core.dse.cost_model as cost_model
    real_synthesize = cost_model.synthesize
    calls = []

    def counting_synthesize(*args, **kwargs):
        calls.append(args)
        return real_synthesize(*args, **kwargs)

    cost_model.synthesize = counting_synthesize
    try:
        result = _explore(module)
    finally:
        cost_model.synthesize = real_synthesize

    stats = cost_cache().stats
    assert calls == [], f"warm run re-synthesized {len(calls)} designs"
    assert stats.misses == 0
    assert stats.hits == result.evaluations
