"""Experiment fig1 — the data-driven compilation flow (paper Fig. 1).

Regenerates the figure's claim as numbers: one application
specification (DSL kernels + workflow + annotations) enters the flow;
multiple hardware and software variants per kernel come out, with
artifacts (SYCL binaries, bitstreams) and runtime metadata. The table
reports, per kernel, the explored points, the feasible subset, the
Pareto front and the artifact mix — i.e. the flow of Fig. 1 actually
produces what the figure promises.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.utils.tables import Table

GEMM = """
kernel gemm(A: tensor<32x32xf32>, B: tensor<32x32xf32>)
        -> tensor<32x32xf32> {
  C = A @ B
  return C
}
"""
STREAM = """
kernel stream(X: tensor<512xf32>, G: tensor<512xf32>)
        -> tensor<512xf32> {
  Y = sigmoid(exp(X) * G)
  return Y
}
"""
REDUCE = """
kernel stats(X: tensor<64x16xf32>) -> tensor<16xf32> {
  M = mean(X, axes=[0])
  return M
}
"""


def build_application():
    pipeline = Pipeline("fig1-app")
    a = pipeline.source("a", TensorType((32, 32), F32))
    b = pipeline.source("b", TensorType((32, 32), F32))
    x = pipeline.source("x", TensorType((512,), F32))
    g = pipeline.source("g", TensorType((512,), F32))
    m = pipeline.source("m", TensorType((64, 16), F32))
    gemm = pipeline.task("gemm", GEMM, inputs=[a, b])
    stream = pipeline.task("stream", STREAM, inputs=[x, g])
    stats = pipeline.task("stats", REDUCE, inputs=[m])
    pipeline.sink("out1", gemm.output(0))
    pipeline.sink("out2", stream.output(0))
    pipeline.sink("out3", stats.output(0))
    return pipeline


SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 4, 8),
    unrolls=(1, 4, 8),
    tiles=(0, 8),
    memory_strategies=("auto", "none"),
    clocks_hz=(200e6, 300e6),
)


@pytest.fixture(scope="module")
def compiled_app():
    return EverestCompiler(space=SPACE).compile(build_application())


def test_fig1_variant_generation(compiled_app, benchmark):
    """One spec in -> many variants per kernel out."""
    from repro.core.dse.cost_model import evaluate_variant
    from repro.core.variants import VariantKnobs

    benchmark(lambda: evaluate_variant(
        compiled_app.module, "stream",
        VariantKnobs(target="fpga", unroll=4),
    ))
    table = Table(
        "fig1: data-driven compilation flow "
        "(one spec -> variants + artifacts)",
        ["kernel", "points", "feasible", "front", "sw variants",
         "hw variants", "binaries", "bitstreams"],
    )
    for kernel, result in compiled_app.exploration.items():
        variants = compiled_app.package.variants_for(kernel)
        artifacts = [
            compiled_app.package.artifact_for(v) for v in variants
        ]
        table.add_row(
            kernel,
            result.evaluations,
            len(result.feasible),
            len(result.front),
            sum(1 for v in variants if not v.is_hardware),
            sum(1 for v in variants if v.is_hardware),
            sum(1 for a in artifacts if a and a.kind == "binary"),
            sum(1 for a in artifacts if a and a.kind == "bitstream"),
        )
    table.show()

    for kernel, result in compiled_app.exploration.items():
        assert result.evaluations >= 10, kernel
        assert len(result.feasible) >= 2, kernel
        variants = compiled_app.package.variants_for(kernel)
        assert any(v.is_hardware for v in variants), \
            f"{kernel}: no hardware variant survived"
        assert any(not v.is_hardware for v in variants), \
            f"{kernel}: no software variant survived"
    assert compiled_app.package.verify_integrity()


def test_fig1_pareto_fronts(compiled_app, benchmark):
    """The variants expose genuine latency/energy trade-offs."""
    from repro.core.dse.pareto import pareto_front

    all_variants = [
        variant
        for result in compiled_app.exploration.values()
        for variant in result.evaluated
    ]
    benchmark(lambda: pareto_front(all_variants))
    table = Table(
        "fig1: Pareto fronts per kernel (latency us / energy uJ)",
        ["kernel", "variant", "latency us", "energy uJ"],
    )
    for kernel, result in compiled_app.exploration.items():
        for variant in result.front:
            table.add_row(
                kernel,
                variant.knobs.describe(),
                variant.cost.latency_s * 1e6,
                variant.cost.energy_j * 1e6,
            )
    table.show()
    # at least one kernel has a real trade-off (front size > 1)
    assert any(
        len(result.front) > 1
        for result in compiled_app.exploration.values()
    )


def test_fig1_compile_throughput(benchmark):
    """Time the end-to-end compilation of one pipeline."""
    pipeline = build_application()
    compiler = EverestCompiler(space=DesignSpace.small())
    result = benchmark(lambda: compiler.compile(pipeline))
    assert result.package.kernels()
