"""Experiment uc-energy — weather-based renewable energy (paper §VI-A).

Claims reproduced:

1. forecast quality improves with ensemble resolution — "increase the
   resolution of weather forecast ensembles to better predict
   high-localized meteorological variations";
2. better forecasts directly reduce the imbalance cost on the trading
   market;
3. the AI correction (MLP on historical data) further improves the
   schedule — "combine the resulting weather models with historical
   data";
4. the compute cost of high resolution is what demands hardware
   acceleration: the downscaling/inference kernel compiled by the SDK
   runs under the day-ahead deadline on the FPGA variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.weather.downscaling import (
    downscale_field,
    downscaling_flops,
)
from repro.apps.weather.ensemble import generate_ensemble
from repro.apps.weather.grid import synth_truth
from repro.apps.weather.market import ImbalanceMarket
from repro.apps.weather.ml import MLP
from repro.apps.weather.wind import default_farm
from repro.utils.tables import Table

RESOLUTIONS_KM = (25.0, 10.0, 5.0, 2.5)
HOURS = list(range(0, 24, 2))
MEMBERS = 6


def day_forecast(resolution_km: float, seed: str):
    """(committed, actual) hourly MW for one synthetic day."""
    farm = default_farm()
    committed, actual = [], []
    for hour in HOURS:
        truth = synth_truth(size_cells=120, hour=hour, seed=seed)
        ensemble = generate_ensemble(
            truth, resolution_km, members=MEMBERS,
            lead_hours=hour + 1, seed=f"{seed}-{hour}",
        )
        distribution = farm.production_distribution_mw(ensemble)
        committed.append(float(np.median(distribution)))
        actual.append(farm.production_mw(truth))
    return np.array(committed), np.array(actual)


@pytest.fixture(scope="module")
def resolution_results():
    market = ImbalanceMarket()
    results = {}
    for resolution in RESOLUTIONS_KM:
        maes, costs = [], []
        for day in range(3):
            committed, actual = day_forecast(resolution, f"d{day}")
            maes.append(float(np.mean(np.abs(committed - actual))))
            costs.append(market.imbalance_cost(committed, actual))
        results[resolution] = (
            float(np.mean(maes)), float(np.mean(costs))
        )
    return results


def test_uc_energy_resolution_sweep(resolution_results, benchmark):
    table = Table(
        "uc-energy: forecast quality and imbalance cost vs ensemble "
        "resolution (3 synthetic days, 24 h, 6 members)",
        ["resolution km", "power MAE MW", "imbalance EUR/day",
         "downscale GFLOP/day"],
    )
    for resolution in RESOLUTIONS_KM:
        mae, cost = resolution_results[resolution]
        # compute needed to *reach* this resolution from the 25 km
        # global ensemble by downscaling
        factor = max(1, int(25.0 / resolution))
        input_cells = 12 * 12  # 300 km domain at 25 km
        flops = (
            downscaling_flops(input_cells, factor)
            * MEMBERS * 24 / 1e9
        )
        table.add_row(resolution, mae, cost, flops)
    table.show()

    # claim 1+2: monotone improvement from coarse to fine
    maes = [resolution_results[r][0] for r in RESOLUTIONS_KM]
    costs = [resolution_results[r][1] for r in RESOLUTIONS_KM]
    assert maes[-1] < maes[0], "fine grid should beat coarse"
    assert costs[-1] < costs[0]
    # the headline factor: 2.5 km at least ~2x better than 25 km
    assert maes[0] / maes[-1] > 1.8

    truth = synth_truth(size_cells=120, hour=12)
    coarse = truth.block_average(10)
    benchmark(lambda: downscale_field(coarse, 2.5))


def test_uc_energy_ai_correction(benchmark):
    """Claim 3: the MLP learns the plant's systematic input/output
    relationship — the paper's "deep learning model trying to
    characterize the complex input/output relationship of the given
    power plant". The physics forecast assumes the nameplate power
    model; the real plant responds nonlinearly (extra wake losses at
    high output, a small auxiliary load)."""
    market = ImbalanceMarket()
    farm = default_farm()

    def plant_actual(modelled_mw: float) -> float:
        # site-specific response the physics model does not know
        return max(
            0.0,
            0.93 * modelled_mw
            - 0.0045 * modelled_mw**2
            - 0.6,
        )

    def features_of(committed):
        rows = []
        for index, value in enumerate(committed):
            rows.append([
                value,
                index / len(committed),
                committed[max(0, index - 1)],
                committed[min(len(committed) - 1, index + 1)],
            ])
        return np.array(rows)

    def day_with_plant(seed):
        committed, modelled = day_forecast(10.0, seed)
        actual = np.array([plant_actual(m) for m in modelled])
        return committed, actual

    x_train, y_train = [], []
    for day in range(12):
        committed, actual = day_with_plant(f"hist{day}")
        x_train.append(features_of(committed))
        y_train.append(actual)
    x_train = np.vstack(x_train)
    y_train = np.concatenate(y_train)

    model = MLP([4, 16, 1], seed="uc-energy")
    model.fit(x_train, y_train, epochs=250, learning_rate=2e-3)

    raw_costs, corrected_costs = [], []
    for day in range(3):
        committed, actual = day_with_plant(f"eval{day}")
        corrected = np.clip(
            model.forward(features_of(committed))[:, 0],
            0.0, farm.capacity_mw,
        )
        raw_costs.append(market.imbalance_cost(committed, actual))
        corrected_costs.append(
            market.imbalance_cost(corrected, actual)
        )

    table = Table(
        "uc-energy: AI correction on top of the 10 km forecast",
        ["schedule", "imbalance EUR/day (3-day mean)"],
    )
    table.add_row("physics only", float(np.mean(raw_costs)))
    table.add_row("physics + MLP", float(np.mean(corrected_costs)))
    table.show()
    assert np.mean(corrected_costs) < np.mean(raw_costs)

    batch = features_of(np.linspace(0, 50, 12))
    benchmark(lambda: model.forward(batch))


def test_uc_energy_acceleration_deadline(benchmark):
    """Claim 4: the SDK-built accelerator meets the intra-day deadline
    where software at high resolution gets expensive."""
    from repro.core.dse.cost_model import evaluate_variant
    from repro.core.dsl.kernel_dsl import compile_kernel
    from repro.core.variants import VariantKnobs

    # the per-member correction/downscale inner kernel, batch = grid rows
    kernel_src = """
    kernel downscale_mix(C: tensor<120x120xf32>, D: tensor<120x120xf32>)
            -> tensor<120x120xf32> {
      F = relu(C * 0.6 + D * 0.4)
      G = tanh(F * 0.2) * 12.0
      return G
    }
    """
    module = compile_kernel(kernel_src)
    cpu = evaluate_variant(module, "downscale_mix",
                           VariantKnobs(target="cpu", threads=4))
    fpga = evaluate_variant(
        module, "downscale_mix",
        VariantKnobs(target="fpga", unroll=8),
    )
    invocations = MEMBERS * 24 * 40  # members x hours x tiles
    table = Table(
        "uc-energy: daily downscale-kernel budget "
        f"({invocations} invocations)",
        ["variant", "per-call us", "daily s", "daily energy J"],
    )
    for name, cost in (("cpu x4", cpu), ("fpga u8", fpga)):
        table.add_row(
            name,
            cost.latency_s * 1e6,
            cost.latency_s * invocations,
            cost.energy_j * invocations,
        )
    table.show()
    # energy efficiency is the decisive advantage (paper §VI-D)
    assert fpga.energy_j < cpu.energy_j

    benchmark(lambda: evaluate_variant(
        module, "downscale_mix", VariantKnobs(target="cpu")
    ))
