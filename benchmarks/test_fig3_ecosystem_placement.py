"""Experiment fig3 — the EVEREST ecosystem hierarchy (paper Fig. 3).

The figure's claim: processing is staged across end-point devices, an
inner edge and the cloud, with data reduced close to its source. We
sweep the raw sensor volume and compare three placements of a
filter -> analyze pipeline:

* everything in the cloud (today's default),
* everything at the edge (no cloud),
* tier-aware placement (EVEREST: filter at the edge, heavy analysis
  in the cloud).

Reported: end-to-end time, bytes over the WAN uplink, transfer energy.
The crossover — cloud fine for small data, tier-aware winning as
volume grows — is the figure's story.
"""

from __future__ import annotations

import pytest

from repro.platform.topology import build_reference_ecosystem
from repro.runtime.scheduler import TierPlacer
from repro.utils.tables import Table
from repro.utils.units import MB
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask


def sensor_pipeline(volume_bytes: int) -> TaskGraph:
    """filter (data-heavy, 10:1 reduction) -> analyze (compute-heavy)."""
    graph = TaskGraph("sensor-pipeline")
    graph.add_object(DataObject(
        "raw", size_bytes=volume_bytes, locality="edge-0"
    ))
    graph.add_task(WorkflowTask(
        "filter", inputs=["raw"], outputs=["features"],
        duration_s=volume_bytes / 4e9,  # streaming pass over the data
    ))
    graph.set_object_size("features", volume_bytes // 10)
    graph.add_task(WorkflowTask(
        "analyze", inputs=["features"], outputs=["insight"],
        duration_s=2.0,  # model building: compute-bound
    ))
    graph.set_object_size("insight", 10_000)
    return graph


VOLUMES_MB = (1, 10, 50, 200)


def test_fig3_placement_sweep(benchmark):
    eco = build_reference_ecosystem(uplink_mbps=100.0)
    placer = TierPlacer(eco)

    table = Table(
        "fig3: placement across the ecosystem hierarchy "
        "(filter->analyze, 10:1 reduction, 100 Mbps uplink)",
        ["raw MB", "strategy", "total s", "WAN MB moved",
         "filter node", "analyze node"],
    )
    results = {}
    for volume_mb in VOLUMES_MB:
        graph = sensor_pipeline(volume_mb * MB)
        tiered = placer.place(graph)
        all_cloud = placer.place_fixed(graph, "power9-0")
        all_edge = placer.place_fixed(graph, "edge-0")
        results[volume_mb] = (tiered, all_cloud, all_edge)
        for strategy, placement in (
            ("tier-aware", tiered),
            ("all-cloud", all_cloud),
            ("all-edge", all_edge),
        ):
            table.add_row(
                volume_mb,
                strategy,
                placement.total_seconds,
                placement.bytes_moved / MB,
                placement.assignments["filter"],
                placement.assignments["analyze"],
            )
    table.show()

    # Shape claims:
    for volume_mb in VOLUMES_MB:
        tiered, all_cloud, all_edge = results[volume_mb]
        # tier-aware never loses to either fixed strategy
        assert tiered.total_seconds <= all_cloud.total_seconds + 1e-9
        assert tiered.total_seconds <= all_edge.total_seconds + 1e-9
    # at large volume, shipping raw data to the cloud clearly loses
    tiered_big, cloud_big, _edge_big = results[VOLUMES_MB[-1]]
    assert cloud_big.total_seconds > 1.5 * tiered_big.total_seconds
    # tier-aware moves less over the WAN than all-cloud
    assert tiered_big.bytes_moved < cloud_big.bytes_moved
    # the data-heavy filter lands at the edge for big volumes
    assert tiered_big.assignments["filter"].startswith("edge")
    # the compute-heavy analysis does not end up on an end-point
    assert not tiered_big.assignments["analyze"].startswith("endpoint")

    graph = sensor_pipeline(50 * MB)
    benchmark(lambda: placer.place(graph))


def test_fig3_workflow_engine_on_ecosystem(benchmark):
    """Run the same pipeline through the distributed workflow engine
    with workers on both tiers: locality scheduling cuts WAN traffic.
    """
    from repro.workflow.scheduler import (
        FIFOScheduler,
        LocalityScheduler,
    )
    from repro.workflow.server import WorkflowServer
    from repro.workflow.worker import Worker

    eco = build_reference_ecosystem(uplink_mbps=100.0)
    graph = sensor_pipeline(50 * MB)

    def workers():
        # cloud worker listed first: a locality-blind policy grabs it
        # and pays the WAN transfer for the edge-resident raw data
        return [
            Worker("cloud-w", node_name="power9-0", cpus=8,
                   speed_factor=1.0),
            Worker("edge-w", node_name="edge-0", cpus=2,
                   speed_factor=0.3),
        ]

    fifo = WorkflowServer(
        workers(), ecosystem=eco, policy=FIFOScheduler()
    ).run(graph)
    locality = WorkflowServer(
        workers(), ecosystem=eco, policy=LocalityScheduler()
    ).run(graph)

    table = Table(
        "fig3: workflow engine across tiers (50 MB raw)",
        ["policy", "makespan s", "bytes moved MB", "transfer s"],
    )
    for name, trace in (("fifo", fifo), ("locality", locality)):
        table.add_row(
            name,
            trace.makespan,
            trace.bytes_moved / MB,
            trace.total_transfer_seconds(),
        )
    table.show()
    assert locality.bytes_moved <= fifo.bytes_moved

    server = WorkflowServer(workers(), ecosystem=eco,
                            policy=LocalityScheduler())
    benchmark(lambda: server.run(sensor_pipeline(MB)))
