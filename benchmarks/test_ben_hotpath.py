"""Experiment ben-hotpath — the compile hot path fixes pay off.

Three fixes share this experiment: the version-counter digest memo
(an unmutated module is printed and hashed once per process instead of
once per consumer), the heap-based list scheduler (next-free-cycle
jumps instead of probing every cycle under memport contention), and
digest threading through the packaging path (no re-digest per feasible
variant). The baseline below restores the pre-fix behavior exactly —
memoization disabled, the O(n²·cycles) sweep scheduler monkeypatched
back in, and ``digest=None`` at every entry point so each consumer
re-hashes — and the claim quantified is that a cold compile+DSE run is
at least 3x faster with the fixes on a port-contended kernel, while
producing byte-identical exploration results. Two more properties ride
along: repeated digest lookups on an unmutated module never re-print,
and process-pool evaluation reproduces the serial front byte for byte
at every worker count.
"""

from __future__ import annotations

import time

import pytest

import repro.core.ir  # noqa: F401  (import cycle guard: ir before hls)
from repro.core.dse import cost_model
from repro.core.dse.cache import clear_caches
from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls import scheduling
from repro.core.hls.scheduling import latency_of
from repro.core.ir.digest import (
    digest_memoization,
    digest_stats,
    module_digest,
    reset_digest_stats,
)
from repro.errors import SchedulingError
from repro.obs import Observation, observe
from repro.utils.tables import Table

MIN_SPEEDUP = 3.0


def _hotpath_kernel(depth: int = 600) -> str:
    """A long fused elementwise chain that re-loads its two input
    buffers in every statement. After fusion this is one loop body of
    ~1800 operations whose loads all fight for the same memory ports —
    the access pattern that made the old cycle-by-cycle probing
    scheduler quadratic."""
    lines = []
    previous = "X"
    for index in range(depth):
        activation = ("exp", "tanh", "sigmoid")[index % 3]
        lines.append(
            f"  T{index} = {activation}({previous}) * X + G"
        )
        previous = f"T{index}"
    body = "\n".join(lines)
    return (
        "kernel hot(X: tensor<512xf32>, G: tensor<512xf32>)\n"
        "        -> tensor<512xf32> {\n"
        f"{body}\n"
        f"  Y = {previous} + X\n"
        "  return Y\n"
        "}\n"
    )


#: The "none" memory strategy keeps every buffer on a single bank, so
#: high unrolls oversubscribe the ports — exactly where the old
#: scheduler burned its probe budget (up to 100k probed cycles per
#: node before giving up).
SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1,),
    unrolls=(1, 2, 4, 8, 16),
    tiles=(0,),
    memory_strategies=("auto", "none"),
    clocks_hz=(150e6, 250e6),
)


# -- the pre-fix scheduler, restored for the baseline ------------------


def _legacy_list_schedule(body, budget, memory_ports, unroll):
    """The O(n²·cycles) sweep scheduler this PR replaced, verbatim."""
    asap = scheduling._asap(body)
    alap = scheduling._alap(
        body, max(asap[id(n)] + latency_of(n) for n in body)
    )
    mobility = {id(n): alap[id(n)] - asap[id(n)] for n in body}
    start = {}
    unscheduled = sorted(
        body, key=lambda node: (mobility[id(node)], node.index)
    )
    usage = {}

    def fits(node, cycle):
        key = scheduling._resource_key(node)
        if key is None:
            return True
        if key.startswith("memport:"):
            limit = scheduling._ports_for(node, budget, memory_ports)
        else:
            limit = budget.limit(key)
        return usage.get(cycle, {}).get(key, 0) + unroll <= limit

    guard = 0
    while unscheduled:
        guard += 1
        if guard > 100_000:
            raise SchedulingError("list scheduling did not converge")
        progressed = False
        for node in list(unscheduled):
            ready_at = 0
            ready = True
            for predecessor in node.predecessors:
                if id(predecessor) not in start:
                    ready = False
                    break
                ready_at = max(
                    ready_at,
                    start[id(predecessor)] + latency_of(predecessor),
                )
            if not ready:
                continue
            cycle = ready_at
            while not fits(node, cycle):
                cycle += 1
                if cycle > 100_000:
                    raise SchedulingError(
                        f"cannot place {node.op.name}: resource "
                        f"limits too tight"
                    )
            start[id(node)] = cycle
            key = scheduling._resource_key(node)
            if key is not None:
                cycle_usage = usage.setdefault(cycle, {})
                cycle_usage[key] = cycle_usage.get(key, 0) + unroll
            unscheduled.remove(node)
            progressed = True
        if not progressed:
            raise SchedulingError("dependence cycle in loop body")
    return start


def _explore_and_package(module, digest):
    """Cold compile+DSE: exhaustive exploration plus the packaging
    re-preparation the compiler does for every feasible variant.
    ``digest=None`` reproduces the pre-fix call shape (each consumer
    re-digests the module)."""
    kwargs = {"digest": digest} if digest is not None else {}
    explorer = Explorer(module, "hot", space=SPACE, **kwargs)
    result = explorer.run("exhaustive")
    for variant in result.feasible:
        with observe(Observation()):
            cost_model.prepare_variant_module(
                module, "hot", variant.knobs, digest
            )
    return result


def run_cold(module, baseline: bool):
    """One fully cold run; ``baseline`` restores pre-fix behavior."""
    clear_caches()
    if not baseline:
        return _explore_and_package(module, module_digest(module))
    real_scheduler = scheduling._list_schedule
    scheduling._list_schedule = _legacy_list_schedule
    try:
        with digest_memoization(False):
            return _explore_and_package(module, None)
    finally:
        scheduling._list_schedule = real_scheduler


def test_ben_hotpath_cold_speedup(benchmark):
    """Cold compile+DSE: >= 3x faster than the pre-fix hot path,
    byte-identical results."""
    module = compile_kernel(_hotpath_kernel())

    start = time.perf_counter()
    fixed = run_cold(module, baseline=False)
    fixed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    legacy = run_cold(module, baseline=True)
    legacy_seconds = time.perf_counter() - start

    # The per-lookup hot path the digest memo buys: pytest-benchmark
    # timings for a memoized digest of a large, unmutated module.
    benchmark(lambda: module_digest(module))

    speedup = legacy_seconds / max(fixed_seconds, 1e-9)
    table = Table(
        f"ben-hotpath: cold compile+DSE "
        f"({fixed.evaluations} points, {len(fixed.feasible)} feasible)",
        ["configuration", "seconds"],
    )
    table.add_row("pre-fix (no memo, probing scheduler)",
                  f"{legacy_seconds:.3f}")
    table.add_row("fixed (memo, heap scheduler)",
                  f"{fixed_seconds:.3f}")
    table.add_row("speedup", f"{speedup:.1f}x")
    table.show()

    assert legacy.to_json() == fixed.to_json()
    assert speedup >= MIN_SPEEDUP, (
        f"cold compile+DSE only {speedup:.1f}x faster than the "
        f"pre-fix baseline (need >= {MIN_SPEEDUP:.0f}x)"
    )


def test_ben_hotpath_digest_printed_once():
    """Counter-instrumented memo check: any number of digest lookups
    on an unmutated module serializes it exactly once."""
    module = compile_kernel(_hotpath_kernel(depth=40))
    reset_digest_stats()
    first = module_digest(module)
    for _ in range(200):
        assert module_digest(module) == first
    stats = digest_stats()
    assert stats.prints == 1, (
        f"{stats.prints} serializations for 201 lookups of an "
        f"unmutated module (memo must print exactly once)"
    )
    assert stats.hits == 200


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_ben_hotpath_process_pool_byte_identical(workers):
    """Process-pool fronts match serial byte for byte at every worker
    count (the pool prices cache misses in forked children; the parent
    owns the cost cache)."""
    module = compile_kernel(_hotpath_kernel(depth=8))
    space = DesignSpace(
        targets=("cpu", "fpga"),
        threads=(1, 2),
        unrolls=(1, 2, 4),
        tiles=(0, 8),
    )
    clear_caches()
    serial = Explorer(module, "hot", space=space,
                      workers=1).run("exhaustive")
    clear_caches()
    pooled = Explorer(module, "hot", space=space, workers=workers,
                      workers_mode="process").run("exhaustive")
    assert pooled.to_json() == serial.to_json()
    assert [v.knobs for v in pooled.front] == \
        [v.knobs for v in serial.front]
