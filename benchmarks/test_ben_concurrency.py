"""Experiment ben-concurrency — race/deadlock hunting is cheap.

The concurrency analyzer joins the pre-DSE gate and `repro lint`, and
the happens-before sanitizer replays every traced chaos run; both only
earn their keep if they cost a small fraction of the work they check.
This benchmark times the static analyzer over growing synthetic
workloads and the sanitizer over a traced chaos run, and pins the
sanitizer's byte-identical replay report.
"""

from __future__ import annotations

import time

from repro.chaos import ChaosConfig, generate_schedule
from repro.chaos.graphgen import random_task_graph
from repro.core.analysis import (
    ConcurrencyTask,
    ResourceSpec,
    analyze_concurrency,
    check_task_graph_concurrency,
)
from repro.obs import observe, session
from repro.sanitize import sanitize_tracer
from repro.utils.tables import Table
from repro.workflow.recovery import ResilientServer
from repro.workflow.worker import Worker

SANITIZE_BUDGET_FRACTION = 0.25


def _time(callable_, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def synthetic_tasks(width: int):
    """`width` racy fan-out groups plus resource claimants."""
    tasks = []
    resources = [ResourceSpec(f"r{i}", 2) for i in range(width)]
    for group in range(width):
        obj = f"acc{group}"
        tasks.append(ConcurrencyTask(f"p{group}", writes=[obj]))
        tasks.append(ConcurrencyTask(f"ua{group}", updates=[obj]))
        tasks.append(ConcurrencyTask(f"ub{group}", updates=[obj],
                                     acquires=[(f"r{group}", 2)]))
        tasks.append(ConcurrencyTask(f"c{group}", reads=[obj],
                                     acquires=[(f"r{group}", 2)]))
    return tasks, resources


def chaos_run(graph_seed: int, fault_seed: int):
    graph = random_task_graph(graph_seed, num_tasks=24)
    pool = [Worker(f"w{i}", node_name=f"n{i}", cpus=2)
            for i in range(3)]
    schedule = generate_schedule(
        graph, [w.name for w in pool], fault_seed,
        ChaosConfig(crashes=1, link_faults=0, reconfig_faults=1,
                    stragglers=1, task_faults=1),
    )
    obs = session(deterministic=True)
    with observe(obs):
        ResilientServer(pool).run(graph, chaos=schedule)
    return obs.tracer


def test_ben_concurrency_static_scales(benchmark):
    """Static analyzer stays near-linear across workload widths."""
    table = Table(
        "ben-concurrency: static analyzer cost vs workload size",
        ["tasks", "findings", "seconds"],
    )
    per_task = []
    for width in (8, 32, 128):
        tasks, resources = synthetic_tasks(width)
        seconds, diags = _time(
            lambda t=tasks, r=resources: analyze_concurrency(t, r)
        )
        table.add_row(str(len(tasks)), str(len(diags)),
                      f"{seconds:.4f}")
        per_task.append(seconds / len(tasks))
        # each group ships one WW race, one RW race, one DL003
        assert len(diags) >= 3 * width
    table.show()
    tasks, resources = synthetic_tasks(32)
    benchmark(lambda: analyze_concurrency(tasks, resources))
    # near-linear: cost per task must not explode with width
    assert per_task[-1] < 20 * per_task[0] + 1e-3, per_task


def test_ben_concurrency_sanitizer_overhead(benchmark):
    """Sanitize pass < 25% of the chaos run it audits; replay-stable."""
    run_seconds, tracer = _time(lambda: chaos_run(5, 7), repeat=1)
    sanitize_seconds, findings = _time(
        lambda: sanitize_tracer(tracer)
    )
    benchmark(lambda: sanitize_tracer(tracer))

    table = Table(
        "ben-concurrency: sanitizer cost vs chaos run (24 tasks)",
        ["phase", "seconds", "fraction"],
    )
    table.add_row("chaos run", f"{run_seconds:.4f}", "1.00")
    table.add_row(
        "hb sanitize", f"{sanitize_seconds:.4f}",
        f"{sanitize_seconds / run_seconds:.3f}",
    )
    table.show()

    assert len(findings) == 0, findings.render_text()
    assert sanitize_seconds < SANITIZE_BUDGET_FRACTION * run_seconds, (
        f"sanitize took {sanitize_seconds:.4f}s, more than "
        f"{SANITIZE_BUDGET_FRACTION:.0%} of the {run_seconds:.4f}s run"
    )

    # byte-identical report across a full re-run of the same seeds
    replay = sanitize_tracer(chaos_run(5, 7))
    assert findings.to_json(indent=2) == replay.to_json(indent=2)

    # and the static layer agrees seeded graphs are hazard-free
    static = check_task_graph_concurrency(random_task_graph(5, num_tasks=24))
    assert len(static) == 0, static.render_text()
