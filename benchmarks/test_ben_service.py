"""Experiment ben-service — the job store at multi-tenant scale.

The service split only earns its keep if the shared store stays fast
when many sessions pile work into it. Two claims, each pinned with a
hard floor:

* **bulk-submit throughput** — a client batch-inserting 10k tagged
  jobs lands them in one transaction at >= 5k jobs/s (the batched
  ``executemany`` + single-fsync path; a per-job transaction would be
  two orders of magnitude slower);
* **lease round-trip latency** — against a store holding 100k+ job
  records, one lease claim (the ``BEGIN IMMEDIATE`` select-and-mark
  transaction launchers issue continuously) plus the matching
  completions round-trips in < 50 ms, and the indexed status queries
  operators hammer (`counts`, tag-filtered listings) answer in
  < 250 ms.

Floors are deliberately conservative (CI machines vary); the printed
table carries the measured numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.utils.tables import Table
from repro.workflow.jobstore import JobSpec, JobStore

BULK_JOBS = 10_000
SCALE_ROWS = 100_000
LEASE_SIZE = 16


def specs(start, count, kind="noop"):
    return [
        JobSpec(name=f"job-{index}", kind=kind,
                spec={"index": index})
        for index in range(start, start + count)
    ]


def test_bulk_submit_throughput(tmp_path, benchmark):
    db = tmp_path / "jobs.db"
    with JobStore(db) as store:
        start = time.perf_counter()
        result = store.submit(specs(0, BULK_JOBS),
                              owner="alice", tags=("bulk",))
        elapsed = time.perf_counter() - start
        assert len(result.inserted) == BULK_JOBS

        # the idempotent path re-checks every key without inserting
        start = time.perf_counter()
        dup = store.submit(specs(0, BULK_JOBS),
                           owner="alice", tags=("bulk",))
        dup_elapsed = time.perf_counter() - start
        assert len(dup.duplicates) == BULK_JOBS

    rate = BULK_JOBS / elapsed
    table = Table(
        "ben-service: bulk submission (one batched transaction)",
        ["path", "jobs", "seconds", "jobs/s"],
    )
    table.add_row("insert", BULK_JOBS, f"{elapsed:.3f}",
                  f"{rate:,.0f}")
    table.add_row("duplicate re-submit", BULK_JOBS,
                  f"{dup_elapsed:.3f}",
                  f"{BULK_JOBS / dup_elapsed:,.0f}")
    table.show()

    assert rate >= 5_000, (
        f"bulk submission ran at {rate:,.0f} jobs/s "
        f"(floor: 5,000/s)"
    )

    counter = [BULK_JOBS]

    def next_batch():
        with JobStore(tmp_path / "bench.db") as bench_store:
            bench_store.submit(specs(counter[0], 1_000))
        counter[0] += 1_000

    benchmark(next_batch)


def test_lease_round_trip_latency_at_100k_records(tmp_path,
                                                  benchmark):
    db = tmp_path / "jobs.db"
    with JobStore(db) as store:
        for start in range(0, SCALE_ROWS, BULK_JOBS):
            store.submit(specs(start, BULK_JOBS), owner="alice",
                         tags=("scale",))
        assert store.counts()["ready"] == SCALE_ROWS

        # one launcher round trip: claim a batch, report it done
        def round_trip():
            lease = store.lease("bench", LEASE_SIZE)
            for job in lease.jobs:
                store.complete(job.id, lease.lease_id,
                               {"digest": "bench"})
            return lease

        round_trip()  # warm the page cache out of the measurement
        repeats = 20
        start = time.perf_counter()
        for _ in range(repeats):
            round_trip()
        lease_ms = ((time.perf_counter() - start) / repeats) * 1e3

        start = time.perf_counter()
        counts = store.counts(owner="alice")
        counts_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        listed = store.list_jobs(state="ready", tag="scale",
                                 limit=50)
        list_ms = (time.perf_counter() - start) * 1e3

        table = Table(
            f"ben-service: store operations at {SCALE_ROWS:,} rows",
            ["operation", "latency"],
        )
        table.add_row(
            f"lease+complete round trip ({LEASE_SIZE} jobs)",
            f"{lease_ms:.2f} ms",
        )
        table.add_row("counts(owner=...)", f"{counts_ms:.2f} ms")
        table.add_row("list_jobs(state, tag, limit=50)",
                      f"{list_ms:.2f} ms")
        table.show()

        assert counts["ready"] + counts["done"] == SCALE_ROWS
        assert len(listed) == 50
        assert lease_ms < 50.0, (
            f"lease round trip took {lease_ms:.2f} ms at "
            f"{SCALE_ROWS:,} rows (floor: 50 ms)"
        )
        assert counts_ms < 250.0
        assert list_ms < 250.0

        benchmark(round_trip)
