"""Experiment ben-observability — tracing is cheap enough to leave on.

The observability layer (``repro.obs``) instruments the compiler, the
DSE loop, the orchestrator and the workflow servers. Its value
proposition only holds if an instrumented run costs almost the same as
an uninstrumented one: this benchmark compiles the full fig1
three-kernel suite with tracing off and with a live observation
session installed, interleaving the two modes, and asserts the best
traced CPU time stays within 5% of the best baseline. A second test
reports what the trace of one end-to-end compile actually contains,
per category.
"""

from __future__ import annotations

import time

from repro.core.compiler import EverestCompiler
from repro.obs import observe, session
from repro.utils.tables import Table

from benchmarks.test_fig1_compilation_flow import SPACE, build_application

OVERHEAD_BUDGET = 0.05  # traced <= (1 + budget) * baseline
ROUNDS = 5


def _compile_once():
    EverestCompiler(
        space=SPACE, emit_artifacts=False,
    ).compile(build_application())


def _compile_traced():
    with observe(session()):
        _compile_once()


def test_ben_observability_overhead(benchmark):
    """Default tracing on the fig1 compile costs < 5% wall time."""
    _compile_once()  # warm parser/IR caches for both modes
    # CPU time, not wall time: the claim is about work the tracer
    # adds, and process_time is blind to co-tenant scheduler noise.
    # Interleave the modes, keep the best of each; mins only fall, so
    # extra batches (taken while the check still fails) converge both
    # numbers to the true cost.
    baseline = traced = float("inf")
    for _ in range(4):
        for _ in range(ROUNDS):
            start = time.process_time()
            _compile_once()
            baseline = min(baseline, time.process_time() - start)
            start = time.process_time()
            _compile_traced()
            traced = min(traced, time.process_time() - start)
        if traced <= (1.0 + OVERHEAD_BUDGET) * baseline:
            break
    benchmark(_compile_traced)

    overhead = traced / baseline - 1.0
    table = Table(
        "ben-observability: tracing overhead on the fig1 compile "
        f"(CPU time, interleaved best of >= {ROUNDS})",
        ["mode", "seconds", "vs baseline"],
    )
    table.add_row("tracing off", f"{baseline:.4f}", "1.000")
    table.add_row("tracing on", f"{traced:.4f}", f"{traced / baseline:.3f}")
    table.show()

    assert traced <= (1.0 + OVERHEAD_BUDGET) * baseline, (
        f"traced compile took {traced:.4f}s, {overhead:.1%} over the "
        f"{baseline:.4f}s baseline (budget {OVERHEAD_BUDGET:.0%})"
    )


def test_ben_observability_trace_content(benchmark):
    """One traced compile covers every compiler-side category."""
    obs = session()
    with observe(obs):
        _compile_once()
    benchmark(obs.tracer.to_chrome)

    table = Table(
        "ben-observability: events per category (fig1 compile)",
        ["category", "events", "total span seconds"],
    )
    categories = sorted({e.category for e in obs.tracer.events})
    for category in categories:
        events = [
            e for e in obs.tracer.events if e.category == category
        ]
        span_seconds = sum(e.dur or 0.0 for e in events)
        table.add_row(category, len(events), f"{span_seconds:.4f}")
    table.show()

    assert "compiler.phase" in categories
    assert "dse.explore" in categories
