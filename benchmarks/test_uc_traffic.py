"""Experiment uc-traffic — intelligent transportation (paper §VI-C).

Claims reproduced:

1. the traffic simulator "boosts the raw sensory data dataset into
   rich training sequences": training the speed model on simulated
   FCD cuts its prediction error;
2. PTDR tail estimates converge with Monte Carlo samples — accuracy
   costs compute, which bounds the requests/second a routing server
   can answer;
3. risk-aware (p90) routing picks different, safer routes than
   mean-fastest routing under congestion uncertainty;
4. the per-request sampling kernel offloaded to the FPGA raises the
   sustainable request rate ("improve the key processing components").
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.traffic.fcd import FCDGenerator
from repro.apps.traffic.od_matrix import gravity_demand
from repro.apps.traffic.prediction import SpeedModel
from repro.apps.traffic.road_graph import build_city
from repro.apps.traffic.routing import PTDRRouter, ptdr_flops
from repro.apps.traffic.simulator import TrafficSimulator
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def setup():
    city = build_city(grid=8)
    demand = gravity_demand(city, zones=10, seed="bench")
    simulator = TrafficSimulator(city, demand, increments=3)
    rush = simulator.simulate_hour(8)
    generator = FCDGenerator(city, seed="bench")
    model = SpeedModel(city)
    return city, simulator, rush, generator, model


def test_uc_traffic_training_sequences(setup, benchmark):
    city, _simulator, rush, generator, model = setup
    true_speeds = {
        edge: rush.speed_ms(city, edge)
        for edge in list(rush.times_s)[:80]
    }

    table = Table(
        "uc-traffic: speed-model error vs simulated FCD volume",
        ["training vehicles", "probe points", "MAE m/s"],
    )
    errors = []
    cumulative_points = 0
    table.add_row(0, 0, model.mean_absolute_error(8, true_speeds))
    errors.append(model.mean_absolute_error(8, true_speeds))
    for step, vehicles in enumerate((40, 80, 160)):
        points = generator.generate_hour(
            rush, vehicles=vehicles, seed_offset=step * 10_000
        )
        cumulative_points += len(points)
        model.train(8, points)
        error = model.mean_absolute_error(8, true_speeds)
        errors.append(error)
        table.add_row(vehicles, cumulative_points, error)
    table.show()

    assert errors[-1] < 0.5 * errors[0], \
        "training on simulator output should halve the error"

    benchmark(
        lambda: generator.generate_hour(rush, vehicles=10,
                                        seed_offset=99_999)
    )


def test_uc_traffic_ptdr_convergence_and_rate(setup, benchmark):
    city, _simulator, rush, generator, model = setup
    model.train(8, generator.generate_hour(rush, vehicles=100))
    router = PTDRRouter(city, model, percentile=0.9, seed="conv")
    path = city.shortest_path((0, 0), (7, 7))
    segments = len(path) - 1

    counts = [50, 200, 1000, 5000]
    errors = router.percentile_convergence(
        path, 8.0, counts, reference_samples=20_000
    )

    # measured software sampling rate on this machine
    start = time.perf_counter()
    router.sample_path_times(path, 8.0, 2000, seed_key="rate")
    sw_seconds_per_sample = (time.perf_counter() - start) / 2000

    # FPGA sampling-engine estimate: one sample-segment per lane-cycle
    lanes, clock = 16, 250e6
    fpga_seconds_per_sample = segments / (lanes * clock)

    table = Table(
        "uc-traffic: PTDR accuracy vs samples, and server capacity "
        f"({segments}-segment route)",
        ["samples", "p90 error s", "MFLOP/req",
         "sw req/s", "fpga req/s"],
    )
    for count in counts:
        table.add_row(
            count,
            errors[count],
            ptdr_flops(count, segments) / 1e6,
            1.0 / (sw_seconds_per_sample * count),
            1.0 / (fpga_seconds_per_sample * count),
        )
    table.show()

    # claim 2: convergence with samples
    assert errors[5000] < errors[50]
    # claim 4: the accelerated engine sustains >100x the request rate
    assert fpga_seconds_per_sample * 200 < \
        sw_seconds_per_sample * 200 / 100

    benchmark(
        lambda: router.sample_path_times(path, 8.0, 200,
                                         seed_key="bench")
    )


def test_uc_traffic_approximate_autotuning(setup, benchmark):
    """mARGOt approximate computing [11] on the PTDR service: sample
    count becomes an accuracy/latency knob; the decision maker serves
    the cheapest variant meeting each client's quality floor."""
    from repro.core.variants import (
        CostEstimate,
        Variant,
        VariantKnobs,
    )
    from repro.runtime.autotuner.goals import Goal, GoalKind
    from repro.runtime.autotuner.knowledge import KnowledgeBase
    from repro.runtime.autotuner.manager import ApplicationManager

    city, _simulator, rush, generator, model = setup
    model.train(8, generator.generate_hour(rush, vehicles=100,
                                           seed_offset=42))
    router = PTDRRouter(city, model, percentile=0.9, seed="approx")
    path = city.shortest_path((0, 0), (7, 7))
    segments = len(path) - 1

    counts = [50, 200, 1000, 5000]
    errors = router.percentile_convergence(
        path, 8.0, counts, reference_samples=20_000, repeats=9
    )
    # quality scale: estimate error relative to the travel-time
    # spread (the tail is what the estimate is *for*)
    spread = max(
        float(router.sample_path_times(
            path, 8.0, 20_000, seed_key="ref").std()),
        1e-9,
    )

    knowledge = KnowledgeBase()
    lanes, clock = 16, 250e6
    for count in counts:
        latency = count * segments / (lanes * clock)
        accuracy = max(0.0, 1.0 - errors[count] / spread)
        knowledge.add_variant(Variant(
            kernel="ptdr",
            knobs=VariantKnobs(target="fpga", unroll=count),
            cost=CostEstimate(
                latency_s=latency,
                energy_j=latency * 2.0,
                accuracy=accuracy,
            ),
        ))

    table = Table(
        "uc-traffic: approximate PTDR service (accuracy floor -> "
        "selected samples, request rate)",
        ["accuracy floor", "samples served", "accuracy", "req/s"],
    )
    selections = {}
    floors = (0.5, 0.9, 0.95)
    for floor in floors:
        manager = ApplicationManager(knowledge, goal=Goal(
            GoalKind.PERFORMANCE, min_accuracy=floor))
        point = manager.select("ptdr")
        samples = point.variant.knobs.unroll
        selections[floor] = samples
        table.add_row(floor, samples, point.accuracy,
                      1.0 / point.predicted_latency_s)
    table.show()

    # stricter quality floors demand more samples (lower throughput)
    assert selections[floors[0]] <= selections[floors[1]] <= \
        selections[floors[2]]
    assert selections[floors[2]] > selections[floors[0]]

    benchmark(lambda: ApplicationManager(
        knowledge, goal=Goal(min_accuracy=0.95)).select("ptdr"))


def test_uc_traffic_risk_aware_choice(setup, benchmark):
    city, _simulator, rush, _generator, _model = setup
    # fresh model with a fixed training history so the experiment is
    # self-contained and reproducible
    generator = FCDGenerator(city, seed="bench")
    model = SpeedModel(city)
    for offset in range(3):
        model.train(8, generator.generate_hour(
            rush, vehicles=120, seed_offset=offset * 1000
        ))
    router = PTDRRouter(city, model, percentile=0.95, seed="probe")

    differing = 0
    queries = [
        ((0, 0), (7, 4)), ((0, 0), (5, 5)), ((0, 0), (4, 7)),
        ((3, 0), (7, 4)), ((0, 0), (2, 5)), ((0, 0), (7, 0)),
    ]
    table = Table(
        "uc-traffic: mean-fastest vs p95-safest route per query",
        ["query", "mean-best p95 s", "p95-best p95 s", "same route"],
    )
    for origin, destination in queries:
        choices = router.route(origin, destination, 8.0,
                               k_alternatives=5, samples=400)
        by_mean = min(choices, key=lambda c: c.mean_s)
        by_p95 = choices[0]
        same = by_mean.path == by_p95.path
        if not same:
            differing += 1
        table.add_row(
            f"{origin}->{destination}",
            by_mean.percentile_s,
            by_p95.percentile_s,
            same,
        )
        # the p95 choice never has a worse p95 than the mean choice
        assert by_p95.percentile_s <= by_mean.percentile_s + 1e-9
    table.show()
    print(f"queries where risk-aware differs from mean-fastest: "
          f"{differing}/{len(queries)}")
    # risk-aware routing makes a real difference under congestion
    assert differing >= 2

    benchmark(lambda: router.best_route((0, 0), (7, 7), 8.0,
                                        samples=100))
