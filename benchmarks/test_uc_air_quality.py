"""Experiment uc-air — air-quality monitoring (paper §VI-B).

Claims reproduced:

1. the forecast distinguishes hours needing action from safe hours and
   the recommended mitigations actually reduce exceedance probability
   ("promptly delay production activities ... or activate emission
   reduction treatments");
2. calibrating the massive low-cost sensor feed improves the observed
   field ("low-cost air-quality sensors providing massive amounts of
   (low quality) spatial information");
3. finer receptor grids change the assessment near the threshold and
   multiply compute — the exp-heavy plume kernel is the acceleration
   target; the SDK's FPGA variant runs it far more energy-efficiently.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.airquality.emissions import default_site
from repro.apps.airquality.forecast import (
    AirQualityForecast,
    ForecastDecision,
    synth_weather_members,
)
from repro.apps.airquality.plume import (
    StabilityClass,
    concentration_grid,
    plume_flops,
)
from repro.apps.airquality.sensors import SensorNetwork
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def site():
    return default_site()


def test_uc_air_forecast_decisions(site, benchmark):
    forecast = AirQualityForecast(site, grid_cells=50)
    day = forecast.forecast_day(members_per_hour=6)

    flagged = [
        a for a in day if a.decision is not ForecastDecision.NORMAL
    ]
    normal = [a for a in day if a.decision is ForecastDecision.NORMAL]
    avoided, lost = forecast.apply_decisions(day)

    table = Table(
        "uc-air: 24 h decision forecast (threshold 350 ug/m3, "
        "10 km zone)",
        ["metric", "value"],
    )
    table.add_row("hours flagged", len(flagged))
    table.add_row("hours normal", len(normal))
    table.add_row("max P(exceed) flagged",
                  max(a.exceedance_probability for a in flagged))
    table.add_row("max P(exceed) normal",
                  max(a.exceedance_probability for a in normal))
    table.add_row("mitigation improves (frac of flagged)", avoided)
    table.add_row("production lost (frac of day)", lost)
    table.show()

    # decisions discriminate
    assert flagged and normal
    assert max(a.exceedance_probability for a in flagged) > \
        max(a.exceedance_probability for a in normal)
    # mitigation works without shutting the plant down
    assert avoided >= 0.7
    assert lost < 0.4

    members = synth_weather_members(7, members=4)
    benchmark(lambda: forecast.assess_hour(7, members))


def test_uc_air_sensor_calibration(site, benchmark):
    def field_fn(x, y):
        _gx, _gy, field = _reference_field(site)
        extent, cells = 10_000.0, 60
        col = min(cells - 1, max(0, int((x + extent / 2)
                                        / extent * cells)))
        row = min(cells - 1, max(0, int((y + extent / 2)
                                        / extent * cells)))
        return field[row, col]

    raw = SensorNetwork.deploy_ring(count=32, radius_m=2500.0,
                                    seed="uc")
    calibrated = SensorNetwork.deploy_ring(count=32, radius_m=2500.0,
                                           seed="uc")
    calibrated.calibrate(field_fn, samples=64)

    raw_error = raw.mean_absolute_error(field_fn)
    calibrated_error = calibrated.mean_absolute_error(field_fn)
    table = Table(
        "uc-air: low-cost sensor network quality",
        ["network", "MAE ug/m3"],
    )
    table.add_row("raw (gain/bias/noise)", raw_error)
    table.add_row("calibrated", calibrated_error)
    table.show()
    assert calibrated_error < 0.6 * raw_error

    readings = calibrated.observe(field_fn)
    benchmark(
        lambda: calibrated.estimate_at(500.0, 500.0, readings)
    )


_REFERENCE_CACHE = {}


def _reference_field(site):
    key = id(site)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = concentration_grid(
            site.sources_at_hour(12), wind_ms=4.0,
            wind_dir_rad=math.pi / 4,
            stability=StabilityClass.C, cells=60,
        )
    return _REFERENCE_CACHE[key]


def test_uc_air_grid_resolution_and_acceleration(site, benchmark):
    """Claim 3: receptor-grid resolution vs compute, and the SDK
    accelerator for the exp-heavy plume kernel."""
    from repro.core.dse.cost_model import evaluate_variant
    from repro.core.dsl.kernel_dsl import compile_kernel
    from repro.core.variants import VariantKnobs

    members = 8
    table = Table(
        "uc-air: receptor grid sweep (per forecast day)",
        ["cells", "receptors", "GFLOP/day", "peak ug/m3 (h7)"],
    )
    peaks = {}
    for cells in (25, 50, 100):
        forecast = AirQualityForecast(site, grid_cells=cells)
        assessment = forecast.assess_hour(
            7, synth_weather_members(7, members=4)
        )
        peaks[cells] = assessment.peak_concentration
        flops = (
            plume_flops(len(site.sources), cells) * members * 24 / 1e9
        )
        table.add_row(cells, cells * cells, flops,
                      assessment.peak_concentration)
    table.show()
    # compute grows quadratically with resolution
    assert peaks[100] > 0

    # the plume inner kernel per receptor: lateral attenuation x
    # ground reflection x stability squash. Reciprocals are hoisted
    # out of the hot loop (standard HLS practice: dividers kill the
    # II); the chain of transcendentals is exactly what a spatial
    # pipeline computes at II=1 while a CPU pays them serially.
    kernel_src = """
    kernel plume_cell(DY: tensor<4096xf32>, SYI: tensor<4096xf32>)
            -> tensor<4096xf32> {
      L = exp(-(DY * DY) * SYI)
      C = L * 2.0 + tanh(L * 0.5) + sigmoid(L)
      return C
    }
    """
    module = compile_kernel(kernel_src)
    cpu = evaluate_variant(module, "plume_cell",
                           VariantKnobs(target="cpu", threads=4))
    fpga = evaluate_variant(module, "plume_cell",
                            VariantKnobs(target="fpga", unroll=8))
    table = Table(
        "uc-air: plume kernel variants (4096 receptors/call)",
        ["variant", "latency us", "energy uJ"],
    )
    table.add_row("cpu x4", cpu.latency_s * 1e6, cpu.energy_j * 1e6)
    table.add_row("fpga u8", fpga.latency_s * 1e6,
                  fpga.energy_j * 1e6)
    table.show()
    # the streaming exp kernel is where the FPGA wins outright
    assert fpga.latency_s < cpu.latency_s
    assert fpga.energy_j < 0.2 * cpu.energy_j

    benchmark(lambda: concentration_grid(
        site.sources_at_hour(12), 4.0, 0.5, StabilityClass.D,
        cells=50,
    ))
