"""Experiment ben-hls — HLS memory-subsystem ablation (paper §III-B).

"We will use a fully automated and transparent memory management ...
with a combination of polyhedral-based transformations, multi-port
memories and dedicated micro-architectures to schedule the memory
accesses." Ablations:

* banking strategy (none / cyclic / block / auto) x unroll factor:
  initiation interval and total cycles of a multi-access streaming
  kernel — banking is what lets unrolling actually pay off;
* complete partitioning of small local buffers into registers;
* the recurrence wall: no amount of banking fixes a loop-carried
  accumulation (RecMII), motivating the dataflow-rewrite variants.
"""

from __future__ import annotations

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.bambu import HLSOptions, synthesize
from repro.core.hls.cdfg import build_cdfg, loop_carried_chain
from repro.core.hls.scheduling import ResourceBudget, schedule_loop
from repro.core.ir.passes import (
    CanonicalizePass,
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)
from repro.utils.tables import Table

STENCIL = """
kernel saxpy3(A: tensor<2048xf32>, B: tensor<2048xf32>,
              C: tensor<2048xf32>) -> tensor<2048xf32> {
  Y = A * 1.5 + B * 0.25 + C
  return Y
}
"""

GEMM = """
kernel gemm(A: tensor<16x16xf32>, B: tensor<16x16xf32>)
        -> tensor<16x16xf32> {
  C = A @ B
  return C
}
"""


def prepare(src, name, unroll):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=unroll))
    manager.add(CanonicalizePass())
    manager.run(module)
    return module


def test_hls_banking_ablation(benchmark):
    table = Table(
        "ben-hls: banking strategy x unroll "
        "(saxpy3, 2048 elements, 4 buffers)",
        ["strategy", "unroll", "total cycles", "BRAM blocks",
         "banks"],
    )
    cycles = {}
    for strategy in ("none", "cyclic", "block", "auto"):
        for unroll in (1, 4, 16):
            module = prepare(STENCIL, "saxpy3", unroll)
            design = synthesize(
                module, "saxpy3",
                HLSOptions(
                    memory_strategy=strategy,
                    budget=ResourceBudget(fadd=64, fmul=64),
                ),
            )
            cycles[(strategy, unroll)] = design.latency_cycles
            table.add_row(
                strategy, unroll, design.latency_cycles,
                design.memory_plan.total_bram_blocks,
                sum(p.factor
                    for p in design.memory_plan.buffers.values()),
            )
    table.show()

    # without banking, unrolling is wasted (port-starved): the only
    # gain is the dual port, never more than ~2x
    assert cycles[("none", 16)] > 0.45 * cycles[("none", 1)]
    # with banking, unroll 16 gives close-to-linear gains
    assert cycles[("auto", 16)] < 0.15 * cycles[("auto", 1)]
    # banked-unrolled beats unbanked-unrolled by a wide margin
    assert cycles[("auto", 16)] < 0.3 * cycles[("none", 16)]

    module = prepare(STENCIL, "saxpy3", 4)
    benchmark(lambda: synthesize(module, "saxpy3", HLSOptions()))


def test_hls_complete_partitioning(benchmark):
    """Small local scratch becomes registers: zero BRAM, full ports."""
    src = """
    kernel window(A: tensor<1024xf32>) -> tensor<1024xf32> {
      W = reshape(A, shape=[32, 32])
      S = sum(W, axes=[1])
      T = reshape(S, shape=[32])
      B = exp(T)
      R = reshape(B, shape=[32])
      Y = A * 0.5
      return Y
    }
    """
    module = prepare(src, "window", 4)
    design = synthesize(module, "window", HLSOptions())
    register_buffers = [
        plan for plan in design.memory_plan.buffers.values()
        if plan.scheme == "complete"
    ]
    print(f"\nben-hls: {len(register_buffers)} buffers promoted to "
          f"registers, {design.memory_plan.total_register_bits} bits")
    assert register_buffers
    assert design.memory_plan.total_register_bits > 0

    benchmark(lambda: build_cdfg(module.find_function("window")))


def test_hls_dataflow_chaining(benchmark):
    """§III-B: 'a chain of tensor operations directly on the FPGA
    logic before writing back to main memory' — on-chip FIFOs vs DDR
    round-trips between stages."""
    from repro.core.hls.dataflow import (
        chain_designs,
        staged_total_time_s,
    )
    from repro.platform.interconnect import OpenCAPILink

    stage_sources = {
        "normalize": """
        kernel normalize(X: tensor<4096xf32>) -> tensor<4096xf32> {
          Y = X * 0.001 - 1.0
          return Y
        }
        """,
        "transform": """
        kernel transform(X: tensor<4096xf32>) -> tensor<4096xf32> {
          Y = exp(X) * 0.5
          return Y
        }
        """,
        "squash": """
        kernel squash(X: tensor<4096xf32>) -> tensor<4096xf32> {
          Y = tanh(X) + 1.0
          return Y
        }
        """,
    }
    designs = [
        synthesize(prepare(src, name, 4), name, HLSOptions())
        for name, src in stage_sources.items()
    ]
    chain = chain_designs(designs)
    link = OpenCAPILink()

    table = Table(
        "ben-hls: dataflow chain vs per-stage DDR round-trips "
        "(3 stages, 16 KiB batches)",
        ["batches", "chained ms", "staged ms", "speedup",
         "DDR bytes/batch chained", "staged"],
    )
    staged_bytes = sum(d.data_bytes() for d in designs)
    for batches in (1, 16, 128):
        chained = chain.total_time_s(batches)
        staged = staged_total_time_s(designs, link, batches)
        table.add_row(
            batches, chained * 1e3, staged * 1e3,
            staged / chained,
            chain.external_bytes_per_batch(), staged_bytes,
        )
    table.show()

    assert chain.external_bytes_per_batch() < 0.5 * staged_bytes
    assert chain.total_time_s(128) < 0.6 * staged_total_time_s(
        designs, link, 128
    )

    benchmark(lambda: chain_designs(designs))


def test_hls_flexible_memory_manager(benchmark):
    """§II 'flexible memory managers': intensity-aware placement
    across BRAM / card DDR / host DDR beats host-only residency."""
    from repro.platform.interconnect import OpenCAPILink
    from repro.platform.memory import MemoryModel, MemoryTechnology
    from repro.runtime.memory_manager import (
        BufferRequest,
        MemoryManager,
    )
    from repro.utils.units import GB, KB, MB

    memories = [
        MemoryModel("bram", MemoryTechnology.BRAM,
                    capacity_bytes=4 * MB, channels=8),
        MemoryModel("card-ddr", MemoryTechnology.DDR4,
                    capacity_bytes=8 * GB, channels=2),
        MemoryModel("host-ddr", MemoryTechnology.HOST_DDR,
                    capacity_bytes=256 * GB, channels=8),
    ]
    manager = MemoryManager(memories, host_link=OpenCAPILink())
    requests = [
        BufferRequest("weights", size_bytes=2 * MB,
                      accesses_per_invocation=800, resident=True),
        BufferRequest("lut-tables", size_bytes=256 * KB,
                      accesses_per_invocation=1200, resident=True),
        BufferRequest("activations", size_bytes=1 * MB,
                      accesses_per_invocation=64),
        BufferRequest("raw-stream", size_bytes=32 * MB,
                      accesses_per_invocation=2),
    ]
    smart = manager.place(requests)
    host_only = manager.place_all_in(
        requests, MemoryTechnology.HOST_DDR
    )

    table = Table(
        "ben-hls: flexible memory manager vs host-only placement",
        ["buffer", "smart placement", "host-only"],
    )
    for request in requests:
        table.add_row(
            request.name,
            smart.memory_of(request.name),
            host_only.memory_of(request.name),
        )
    table.show()
    print(f"smart: {smart.total_seconds * 1e3:.3f} ms / "
          f"{smart.energy_j * 1e3:.3f} mJ;  host-only: "
          f"{host_only.total_seconds * 1e3:.3f} ms / "
          f"{host_only.energy_j * 1e3:.3f} mJ")

    assert smart.memory_of("lut-tables") == "bram"
    assert smart.total_seconds < host_only.total_seconds
    assert smart.energy_j < host_only.energy_j

    benchmark(lambda: manager.place(requests))


def test_hls_recurrence_wall(benchmark):
    """Banking cannot beat RecMII: the accumulation chain pins II."""
    module = prepare(GEMM, "gemm", 4)
    cdfg = build_cdfg(module.find_function("gemm"))
    accumulating = [
        loop for loop in cdfg.innermost_loops()
        if loop_carried_chain(loop)
    ]
    assert accumulating, "gemm should have an accumulation loop"
    loop = accumulating[0]

    table = Table(
        "ben-hls: II of the gemm accumulation loop vs memory ports",
        ["ports per buffer", "II"],
    )
    iis = {}
    for ports in (2, 8, 32):
        schedule = schedule_loop(
            loop,
            budget=ResourceBudget(fadd=32, fmul=32),
            memory_ports={
                id(node.buffer()): ports
                for node in loop.body if node.buffer() is not None
            },
        )
        iis[ports] = schedule.ii
        table.add_row(ports, schedule.ii)
    table.show()

    # more ports do not help: the recurrence is the wall
    assert iis[2] == iis[32]
    assert iis[32] >= 6  # load + addf + store chain latency

    # ...but the accumulation-interleave rewrite breaks it
    from repro.core.ir.passes import AccumulationInterleavePass

    interleave_table = Table(
        "ben-hls: accumulation interleaving vs the recurrence "
        "(gemm k-loop)",
        ["partial sums", "II", "loop cycles"],
    )
    results = {}
    for factor in (1, 2, 4, 8):
        module_i = prepare(GEMM, "gemm", 1)
        if factor > 1:
            AccumulationInterleavePass(factor=factor).run(module_i)
        cdfg_i = build_cdfg(module_i.find_function("gemm"))
        loop_i = next(
            l for l in cdfg_i.innermost_loops()
            if loop_carried_chain(l)
        )
        schedule = schedule_loop(loop_i)
        cycles_i = schedule.cycles_for_trips(loop_i.trip_count)
        results[factor] = (schedule.ii, cycles_i)
        interleave_table.add_row(factor, schedule.ii, cycles_i)
    interleave_table.show()
    assert results[8][0] < results[1][0]
    assert results[8][1] < results[1][1]

    # ...and the loop-interchange variant (ikj) removes it entirely
    from repro.core.hls.scheduling import nest_cycles
    from repro.core.ir.passes import MatmulLoopOrderPass

    order_table = Table(
        "ben-hls: matmul loop order (polyhedral interchange)",
        ["order", "recurrence", "worst II", "total cycles"],
    )
    totals = {}
    for order in ("ijk", "ikj"):
        module_o = compile_kernel(GEMM)
        pm = PassManager()
        pm.add(MatmulLoopOrderPass(order))
        pm.add(LowerTensorPass())
        pm.add(LoopDirectivesPass())
        pm.run(module_o)
        cdfg_o = build_cdfg(module_o.find_function("gemm"))
        schedules = {
            id(l): schedule_loop(l)
            for l in cdfg_o.innermost_loops()
        }
        has_recurrence = any(
            loop_carried_chain(l) for l in cdfg_o.innermost_loops()
        )
        total = nest_cycles(cdfg_o.root, schedules)
        totals[order] = total
        order_table.add_row(
            order, has_recurrence,
            max(s.ii for s in schedules.values()), total,
        )
    order_table.show()
    assert totals["ikj"] < 0.5 * totals["ijk"]

    benchmark(lambda: schedule_loop(loop))
