"""Experiment ben-secure — the data-protection stack (paper §III-A/IV).

Claims examined:

1. hardware DIFT (TaintHLS [18]) costs single-digit-percent area and
   ~no latency, while software shadow tracking costs ~2x runtime —
   the motivation for doing it in hardware;
2. the crypto accelerator library encrypts at line rate where software
   encryption eats CPU time;
3. the anomaly monitors detect injected attacks (timing channel,
   access-pattern scan, exfiltration-sized transfers) at high rate
   with zero false positives on clean traffic;
4. end-to-end flow tracking blocks unencrypted egress of tainted data.
"""

from __future__ import annotations

import pytest

from repro.core.dse.cost_model import evaluate_variant
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.crypto import CRYPTO_LIBRARY
from repro.core.variants import VariantKnobs
from repro.runtime.dataprotection.anomaly import HardwareMonitor
from repro.runtime.dataprotection.crypto import (
    SOFTWARE_CYCLES_PER_BYTE,
    SoftwareAEAD,
    derive_key,
)
from repro.utils.rng import deterministic_rng
from repro.utils.tables import Table

SENSITIVE_KERNEL = """
kernel score(X: tensor<1024xf32> @sensitive, G: tensor<1024xf32>)
        -> tensor<1024xf32> {
  Y = sigmoid(exp(X) * G)
  return Y
}
"""


def test_secure_dift_overhead(benchmark):
    module = compile_kernel(SENSITIVE_KERNEL)
    plain_hw = evaluate_variant(
        module, "score", VariantKnobs(target="fpga", unroll=4)
    )
    dift_hw = evaluate_variant(
        module, "score",
        VariantKnobs(target="fpga", unroll=4, dift=True),
    )
    plain_sw = evaluate_variant(
        module, "score", VariantKnobs(target="cpu", threads=4)
    )
    dift_sw = evaluate_variant(
        module, "score",
        VariantKnobs(target="cpu", threads=4, dift=True),
    )

    hw_area_overhead = (
        (dift_hw.resources.luts + dift_hw.resources.ffs)
        / (plain_hw.resources.luts + plain_hw.resources.ffs) - 1.0
    )
    hw_latency_overhead = dift_hw.latency_s / plain_hw.latency_s - 1.0
    sw_latency_overhead = dift_sw.latency_s / plain_sw.latency_s - 1.0

    table = Table(
        "ben-secure: information flow tracking cost",
        ["implementation", "latency overhead %", "area overhead %"],
    )
    table.add_row("hardware DIFT (TaintHLS)",
                  hw_latency_overhead * 100, hw_area_overhead * 100)
    table.add_row("software shadow tracking",
                  sw_latency_overhead * 100, 0.0)
    table.show()

    # TaintHLS shape: small area, negligible latency; software ~2x
    assert hw_area_overhead < 0.30
    assert hw_latency_overhead < 0.25
    assert sw_latency_overhead > 0.8

    benchmark(lambda: evaluate_variant(
        module, "score", VariantKnobs(target="fpga", dift=True)
    ))


def test_secure_crypto_line_rate(benchmark):
    table = Table(
        "ben-secure: crypto library, hardware core vs software "
        "(1 MiB payload)",
        ["cipher", "hw core us", "hw GB/s", "sw us (3 GHz)",
         "hw/sw speedup"],
    )
    payload = 1 << 20
    clock = 250e6
    for cipher, core in sorted(CRYPTO_LIBRARY.items()):
        hw_seconds = core.cycles_for(payload) / clock
        sw_seconds = (
            SOFTWARE_CYCLES_PER_BYTE[cipher] * payload / 3e9
        )
        table.add_row(
            cipher,
            hw_seconds * 1e6,
            payload / hw_seconds / 1e9,
            sw_seconds * 1e6,
            sw_seconds / hw_seconds,
        )
        # AES-class cores encrypt at multi-GB/s
        if cipher.startswith("aes"):
            assert payload / hw_seconds > 3e9
            assert sw_seconds / hw_seconds > 2.0
    table.show()

    aead = SoftwareAEAD(key=derive_key(b"bench", "crypto"))
    blob = bytes(range(256)) * 16
    benchmark(lambda: aead.decrypt(
        aead.encrypt(blob, b"nonce-42"), b"nonce-42"
    ))


def test_secure_anomaly_detection(benchmark):
    rng = deterministic_rng("ben-secure-anomaly")
    monitor = HardwareMonitor(threshold_sigma=4.5, min_training=32)
    # train on clean behaviour
    for _ in range(256):
        monitor.train("timing", float(rng.normal(100.0, 6.0)))
        monitor.train("stride", float(rng.normal(64.0, 2.0)))
        monitor.train("volume", float(rng.normal(4096.0, 200.0)))
    monitor.freeze()

    # clean traffic: expect no detections
    false_positives = 0
    for _ in range(500):
        if monitor.observe("timing",
                           float(rng.normal(100.0, 6.0))):
            false_positives += 1
        if monitor.observe("stride", float(rng.normal(64.0, 2.0))):
            false_positives += 1
        if monitor.observe("volume",
                           float(rng.normal(4096.0, 200.0))):
            false_positives += 1

    # attacks
    attacks = {
        "timing channel (slow leak)": ("timing", 160.0, 3.0),
        "access scan (stride sweep)": ("stride", 640.0, 30.0),
        "exfiltration (bulk read)": ("volume", 50_000.0, 1_000.0),
    }
    detected = {}
    for name, (metric, mean, std) in attacks.items():
        hits = 0
        for _ in range(50):
            if monitor.observe(metric,
                               float(rng.normal(mean, std))):
                hits += 1
        detected[name] = hits / 50

    table = Table(
        "ben-secure: hardware-monitor detection (z > 4.5 sigma)",
        ["trace", "detection rate"],
    )
    table.add_row("clean traffic (1500 obs, false positives)",
                  false_positives / 1500)
    for name, rate in detected.items():
        table.add_row(name, rate)
    table.show()

    assert false_positives / 1500 < 0.01
    assert all(rate > 0.95 for rate in detected.values())

    benchmark(lambda: monitor.observe("timing", 101.0))


def test_secure_flow_enforcement(benchmark):
    from repro.errors import SecurityError
    from repro.runtime.dataprotection.ift import FlowTracker
    from repro.workflow.graph import (
        DataObject,
        TaskGraph,
        WorkflowTask,
    )

    graph = TaskGraph("pipeline")
    graph.add_object(DataObject("patient-data", size_bytes=1 << 20))
    graph.add_object(DataObject("public-weather", size_bytes=1 << 16))
    graph.add_task(WorkflowTask(
        "train", inputs=["patient-data", "public-weather"],
        outputs=["model"],
    ))
    graph.add_task(WorkflowTask(
        "aggregate", inputs=["model"], outputs=["report"],
        constraints={"declassifies": True},
    ))
    tracker = FlowTracker(graph)
    tracker.taint_source("patient-data", "phi")
    tracker.propagate()

    blocked = 0
    for _ in range(10):
        try:
            tracker.check_egress("model", encrypted=False)
        except SecurityError:
            blocked += 1
    allowed_encrypted = tracker.check_egress("model", encrypted=True)
    allowed_declassified = tracker.check_egress("report")

    print(f"\nben-secure: unencrypted egress of tainted model "
          f"blocked {blocked}/10; encrypted allowed: "
          f"{allowed_encrypted}; declassified report allowed: "
          f"{allowed_declassified}")
    assert blocked == 10
    assert allowed_encrypted and allowed_declassified

    benchmark(lambda: tracker.labels_of("model"))
