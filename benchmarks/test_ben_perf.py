"""Experiment ben-perf — analytic bounds make exploration cheaper.

The static performance analyzer derives per-point latency/energy
lower bounds without running the cost model. Bound-guided exploration
visits points in ascending bound order and skips any point whose
bound already violates a deadline or is dominated by a priced front
member. The claims quantified:

* the bound-guided run reaches the *identical* knee point (and the
  byte-identical Pareto front) as the unpruned run;
* it does so with at least 2x fewer cost-model evaluations, cold;
* deriving the bounds costs under 10% of the cold compile+DSE time.
"""

from __future__ import annotations

import time

import pytest

from repro.core.analysis import perf as perf_module
from repro.core.analysis.cache import configure_analysis_cache
from repro.core.dse.cache import clear_caches, configure
from repro.core.dse.explorer import Explorer
from repro.core.dse.pareto import knee_point
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import Requirement, RequirementKind
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.utils.tables import Table

KERNEL = """
kernel gemm(A: tensor<16x16xf32>, B: tensor<16x16xf32>)
        -> tensor<16x16xf32> {
  C = A @ B
  return C
}
"""

#: Mixed space: the low-clock / low-unroll FPGA corner provably
#: misses the deadline, and dominated CPU thread counts are provably
#: off the front — both prunable from bounds alone.
SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 2, 4, 8, 16),
    unrolls=(1, 2, 4, 8),
    tiles=(0,),
    clocks_hz=(100e6, 150e6, 200e6, 250e6),
)

DEADLINE = Requirement(kind=RequirementKind.LATENCY, value=1.2e-5)

MIN_EVAL_RATIO = 2.0
MAX_ANALYSIS_FRACTION = 0.10


@pytest.fixture
def cold_state():
    """Memory-only caches, emptied, perf memo dropped."""
    configure(cache_dir=None)
    clear_caches()
    configure_analysis_cache(cache_dir=None)
    with perf_module._BOUNDS_LOCK:
        perf_module._BOUNDS_MEMO.clear()
    yield
    configure(cache_dir=None)
    clear_caches()
    configure_analysis_cache(cache_dir=None)


def _explore(module, bound_guided=False):
    explorer = Explorer(
        module, "gemm", space=SPACE, requirements=[DEADLINE],
        bound_guided=bound_guided,
    )
    return explorer, explorer.run("exhaustive")


def test_ben_perf_bound_guided_exploration(cold_state, benchmark):
    """Identical knee, >= 2x fewer evaluations, cheap analysis."""
    start = time.perf_counter()
    module = compile_kernel(KERNEL)
    _, plain = _explore(module)
    cold_seconds = time.perf_counter() - start

    with perf_module._BOUNDS_LOCK:
        perf_module._BOUNDS_MEMO.clear()
    start = time.perf_counter()
    bounds = perf_module.kernel_bounds(module, "gemm")
    analysis_seconds = time.perf_counter() - start
    assert bounds is not None

    # The cost cache is warm now; evaluation *counts* are unaffected
    # by cache state, which is what the pruning claim is about.
    guided_explorer, guided = _explore(module, bound_guided=True)

    assert guided.front_json() == plain.front_json()
    plain_knee = knee_point(plain.front)
    guided_knee = knee_point(guided.front)
    assert (plain_knee.knobs.describe()
            == guided_knee.knobs.describe())
    assert plain_knee.cost.latency_s == guided_knee.cost.latency_s

    ratio = plain.evaluations / max(guided.evaluations, 1)
    fraction = analysis_seconds / max(cold_seconds, 1e-9)

    benchmark(lambda: _explore(module, bound_guided=True))

    table = Table(
        f"ben-perf: bound-guided DSE over {SPACE.size()} points",
        ["quantity", "unpruned", "bound-guided"],
    )
    table.add_row("cost-model evaluations", plain.evaluations,
                  guided.evaluations)
    table.add_row("points pruned by bound", 0,
                  guided_explorer._bound_pruned)
    table.add_row("knee point", plain_knee.knobs.describe(),
                  guided_knee.knobs.describe())
    table.add_row("eval reduction", "1.0x", f"{ratio:.1f}x")
    table.add_row(
        "static analysis share of cold run",
        "-", f"{100.0 * fraction:.1f}%",
    )
    table.show()

    assert ratio >= MIN_EVAL_RATIO, (
        f"bound-guided run priced {guided.evaluations} of "
        f"{plain.evaluations} points: only {ratio:.2f}x reduction"
    )
    assert fraction < MAX_ANALYSIS_FRACTION, (
        f"static analysis took {analysis_seconds:.4f}s, "
        f"{100.0 * fraction:.1f}% of the {cold_seconds:.4f}s cold run"
    )


def test_ben_perf_report_is_fast(cold_state, benchmark):
    """A warm ``repro perf``-style report is microseconds: the memo
    serves it without re-deriving anything."""
    module = compile_kernel(KERNEL)
    first = perf_module.kernel_bounds(module, "gemm")
    assert first is not None

    def warm():
        return perf_module.kernel_bounds(module, "gemm")

    result = benchmark(warm)
    assert result is first
