"""Experiment ben-adapt — §VI-D "dynamic adaptation".

"The combination of code and hardware variants, dynamic autotuning,
and virtualization will enable a transparent use of the hardware
resources even in case of changes to the configurations." Scenario
suite: resource loss, contention drift, data-feature drift. For each,
the cumulative latency of (a) the adaptive decision maker, (b) the
best *static* variant chosen with nominal knowledge, and (c) the
per-round oracle. Adaptive should close most of the static-vs-oracle
gap.
"""

from __future__ import annotations

import pytest

from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.goals import Goal
from repro.runtime.autotuner.knowledge import KnowledgeBase
from repro.runtime.autotuner.manager import (
    ApplicationManager,
    SystemState,
)
from repro.utils.tables import Table


def make_knowledge() -> KnowledgeBase:
    base = KnowledgeBase()
    for target, threads, unroll, latency, energy, dift in (
        ("cpu", 1, 1, 12e-6, 60e-6, False),
        ("cpu", 8, 1, 4e-6, 90e-6, False),
        ("cpu", 8, 1, 8e-6, 120e-6, True),
        ("fpga", 1, 2, 3e-6, 6e-6, False),
        ("fpga", 1, 8, 1.2e-6, 5e-6, True),
    ):
        base.add_variant(Variant(
            kernel="k",
            knobs=VariantKnobs(target=target, threads=threads,
                               unroll=unroll, dift=dift),
            cost=CostEstimate(latency_s=latency, energy_j=energy),
        ))
    return base


def true_latency(point, state: SystemState,
                 features: DataFeatures) -> float:
    """Ground truth with coefficients the prior model gets wrong."""
    latency = point.predicted_latency_s
    latency *= features.latency_factor(point.variant.is_hardware)
    if point.variant.is_hardware:
        if not state.fpga_available:
            latency = 1.0  # effectively unusable (queued forever)
        latency *= 1.0 + 8.0 * state.fpga_contention
    else:
        latency *= 1.0 + 2.5 * state.cpu_load
    return latency


SCENARIOS = {
    "fpga-loss": lambda r: (
        SystemState(fpga_available=r >= 20), DataFeatures()
    ),
    "contention-drift": lambda r: (
        SystemState(fpga_contention=min(1.0, r / 25.0)),
        DataFeatures(),
    ),
    "data-burst": lambda r: (
        SystemState(),
        DataFeatures(burstiness=1.0 if 15 <= r < 35 else 0.0),
    ),
    "sparsity-shift": lambda r: (
        SystemState(),
        DataFeatures(sparsity=0.9 if r >= 20 else 0.0),
    ),
}
ROUNDS = 40


def run_scenario(name, schedule):
    knowledge = make_knowledge()
    manager = ApplicationManager(knowledge, goal=Goal())
    adaptive_total = 0.0
    oracle_total = 0.0
    for round_index in range(ROUNDS):
        state, features = schedule(round_index)
        point = manager.select("k", state, features)
        observed = true_latency(point, state, features)
        manager.report("k", point, observed,
                       point.predicted_energy_j)
        adaptive_total += observed
        oracle_total += min(
            true_latency(p, state, features)
            for p in knowledge.points_for("k")
        )
    # static: the nominal-best variant, frozen
    static_knowledge = make_knowledge()
    static_manager = ApplicationManager(static_knowledge)
    static_point = static_manager.select("k")
    static_total = sum(
        true_latency(static_point, *schedule(r))
        for r in range(ROUNDS)
    )
    return adaptive_total, static_total, oracle_total, \
        manager.switches


def test_benefits_adaptation(benchmark):
    table = Table(
        "ben-adapt: cumulative latency over 40 rounds (us)",
        ["scenario", "adaptive", "static-best", "oracle",
         "gap closed %", "switches"],
    )
    for name, schedule in SCENARIOS.items():
        adaptive, static, oracle, switches = run_scenario(
            name, schedule
        )
        gap = static - oracle
        closed = 100.0 * (static - adaptive) / gap if gap > 0 else 100.0
        table.add_row(
            name, adaptive * 1e6, static * 1e6, oracle * 1e6,
            closed, switches,
        )
        # adaptation never loses to static, and beats it under change
        assert adaptive <= static * 1.02, name
        if name in ("fpga-loss", "contention-drift"):
            assert adaptive < 0.5 * static, name
        assert adaptive >= oracle - 1e-12, name
    table.show()

    knowledge = make_knowledge()
    manager = ApplicationManager(knowledge)
    benchmark(lambda: manager.select("k", SystemState(),
                                     DataFeatures()))


def test_benefits_adaptation_window_ablation(benchmark):
    """Ablation: feedback smoothing. Heavy smoothing reacts slowly to
    a step change; no smoothing chases noise. The default sits between.
    """
    import numpy as np

    from repro.utils.rng import deterministic_rng

    def run_with_smoothing(smoothing: float) -> float:
        knowledge = make_knowledge()
        manager = ApplicationManager(knowledge)
        rng = deterministic_rng("window-ablation", smoothing)
        total = 0.0
        for round_index in range(60):
            state = SystemState(
                fpga_contention=1.0 if round_index >= 20 else 0.0
            )
            point = manager.select("k", state, DataFeatures())
            observed = true_latency(point, state, DataFeatures())
            noisy = observed * float(rng.lognormal(0, 0.25))
            point.observe(noisy, point.predicted_energy_j,
                          smoothing=smoothing)
            manager.monitor.record("k.latency", noisy)
            total += observed
        return total

    table = Table(
        "ben-adapt ablation: feedback smoothing factor",
        ["smoothing", "cumulative latency us"],
    )
    totals = {}
    for smoothing in (0.05, 0.3, 0.95):
        totals[smoothing] = run_with_smoothing(smoothing)
        table.add_row(smoothing, totals[smoothing] * 1e6)
    table.show()
    # the default (0.3) should not be the worst of the three
    assert totals[0.3] <= max(totals.values())

    benchmark(lambda: run_with_smoothing(0.3))
