"""Experiment ben-absint — interval analysis is cheap, caching pays.

Two claims gate the abstract-interpretation layer's place in the
pipeline:

* the cold sweep (value ranges + shape contracts) must stay a small
  fraction (< 20%) of the compile+DSE work it guards, same bar as
  ben-analysis;
* the digest-keyed incremental cache must make a warm re-analysis at
  least 5x faster than a cold one — otherwise ``--incremental`` and
  the compiler's memoized gate are not worth their complexity.
"""

from __future__ import annotations

import time

from repro.core.analysis import analyze_module, analyze_module_cached
from repro.core.analysis.cache import AnalysisCache
from repro.core.compiler import EverestCompiler
from repro.core.ir.digest import module_digest
from repro.utils.tables import Table

from benchmarks.test_fig1_compilation_flow import SPACE, build_application

ABSINT_BUDGET_FRACTION = 0.20
MIN_WARM_SPEEDUP = 5.0


def _time(callable_, repeat=3):
    """Best-of-N wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_ben_absint_cold_overhead(benchmark):
    """Interval + contract sweep < 20% of compile+DSE (fig1 suite)."""
    compiler = EverestCompiler(
        space=SPACE, emit_artifacts=False, static_checks=False,
    )
    compile_seconds, app = _time(
        lambda: compiler.compile(build_application()), repeat=1
    )
    module = app.module

    def run_absint():
        return analyze_module(module, checks=("absint", "shapes"))

    absint_seconds, diagnostics = _time(run_absint)
    benchmark(run_absint)

    table = Table(
        "ben-absint: interval-analysis cost vs compile+DSE (fig1)",
        ["phase", "seconds", "fraction"],
    )
    table.add_row("compile + DSE", f"{compile_seconds:.4f}", "1.00")
    table.add_row(
        "absint + shapes",
        f"{absint_seconds:.4f}",
        f"{absint_seconds / compile_seconds:.3f}",
    )
    table.show()

    assert not diagnostics.has_errors, diagnostics.render_text()
    assert absint_seconds < ABSINT_BUDGET_FRACTION * compile_seconds, (
        f"absint took {absint_seconds:.4f}s, more than "
        f"{ABSINT_BUDGET_FRACTION:.0%} of the {compile_seconds:.4f}s "
        f"compile+DSE time"
    )


def test_ben_absint_warm_cache_speedup(benchmark):
    """A warm digest-keyed hit replays >= 5x faster than a cold run."""
    app = EverestCompiler(
        space=SPACE, emit_artifacts=False, static_checks=False,
    ).compile(build_application())
    module = app.module
    digest = module_digest(module)

    def cold():
        # a fresh cache every repeat: every call is a true miss
        return analyze_module_cached(
            module, digest=digest, cache=AnalysisCache())

    warm_cache = AnalysisCache()
    analyze_module_cached(module, digest=digest, cache=warm_cache)

    def warm():
        return analyze_module_cached(
            module, digest=digest, cache=warm_cache)

    cold_seconds, (_, _, cold_hit) = _time(cold)
    warm_seconds, (_, _, warm_hit) = _time(warm)
    benchmark(warm)
    assert (cold_hit, warm_hit) == (False, True)

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    table = Table(
        "ben-absint: incremental analysis cache",
        ["path", "seconds", "speedup"],
    )
    table.add_row("cold (miss)", f"{cold_seconds:.5f}", "1.0")
    table.add_row("warm (hit)", f"{warm_seconds:.5f}", f"{speedup:.1f}")
    table.show()

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm hit only {speedup:.1f}x faster than the cold sweep; "
        f"the incremental cache must buy at least "
        f"{MIN_WARM_SPEEDUP:.0f}x"
    )
