"""Experiment fig4 — the EVEREST featured system (paper Fig. 4).

The figure combines a POWER9 host with coherent bus-attached FPGAs
(OpenCAPI) and disaggregated network-attached FPGAs (cloudFPGA over
TCP/UDP). Claims examined:

* bus-attached wins per-invocation latency (coherent, sub-us link);
* network-attached wins scale-out: a host takes at most a few cards,
  but stand-alone FPGAs can be added "independently of the number of
  CPU servers";
* UDP (terminated by the shell) beats TCP for the streaming path;
* the crossover: past the host's card limit, aggregate scale-out
  throughput overtakes scale-up.

The workload is a streaming accelerator invocation: 1 MiB in, fixed
0.5 ms of compute, 100 KiB out.
"""

from __future__ import annotations

import pytest

from repro.platform.fpga import Bitstream
from repro.platform.interconnect import EthernetLink, OpenCAPILink
from repro.platform.node import (
    build_cloudfpga_node,
    build_power9_node,
)
from repro.platform.resources import FPGAResources
from repro.platform.simulator import Simulator
from repro.utils.tables import Table
from repro.utils.units import KB, MB

BATCH_IN = 1 * MB
BATCH_OUT = 100 * KB
COMPUTE_S = 0.5e-3
MAX_HOST_CARDS = 4  # slots in one POWER9 chassis


def batch_latency(link) -> float:
    """One invocation: payload in, compute, result back."""
    return (
        link.transfer_time(BATCH_IN)
        + COMPUTE_S
        + link.transfer_time(BATCH_OUT)
    )


def pipelined_throughput(link, devices: int) -> float:
    """Batches/s with transfer/compute overlap across devices."""
    per_device_interval = max(
        link.transfer_time(BATCH_IN), COMPUTE_S,
        link.transfer_time(BATCH_OUT),
    )
    return devices / per_device_interval


def batch_energy(link, fpga_watts: float = 25.0) -> float:
    """Joules per invocation."""
    return (
        link.transfer_energy(BATCH_IN + BATCH_OUT)
        + fpga_watts * COMPUTE_S
    )


def test_fig4_attachment_styles(benchmark):
    capi = OpenCAPILink()
    udp = EthernetLink(gbps=10.0, protocol="udp")
    tcp = EthernetLink(gbps=10.0, protocol="tcp")

    table = Table(
        "fig4: attachment styles (1 MiB in / 0.5 ms compute / "
        "100 KiB out)",
        ["attachment", "coherent", "latency ms", "throughput /s/dev",
         "energy mJ"],
    )
    rows = {}
    for name, link in (("bus (OpenCAPI)", capi),
                       ("network (UDP)", udp),
                       ("network (TCP)", tcp)):
        latency = batch_latency(link)
        throughput = pipelined_throughput(link, 1)
        energy = batch_energy(link)
        rows[name] = (latency, throughput, energy)
        table.add_row(
            name, link.coherent, latency * 1e3, throughput,
            energy * 1e3,
        )
    table.show()

    # bus-attached has the lowest single-invocation latency
    assert rows["bus (OpenCAPI)"][0] < rows["network (UDP)"][0]
    # UDP (shell-terminated) beats TCP
    assert rows["network (UDP)"][0] < rows["network (TCP)"][0]

    benchmark(lambda: batch_latency(capi))


def test_fig4_scale_up_vs_scale_out(benchmark):
    capi = OpenCAPILink()
    udp = EthernetLink(gbps=10.0, protocol="udp")

    table = Table(
        "fig4: scale-up (bus cards in one host) vs scale-out "
        "(network-attached cloudFPGA)",
        ["devices", "scale-up batches/s", "scale-out batches/s"],
    )
    crossover = None
    for devices in (1, 2, 4, 8, 16):
        up = pipelined_throughput(capi, min(devices, MAX_HOST_CARDS))
        out = pipelined_throughput(udp, devices)
        table.add_row(devices, up, out)
        if crossover is None and out > up:
            crossover = devices
    table.show()
    print(f"scale-out overtakes the {MAX_HOST_CARDS}-card host at "
          f"{crossover} network-attached devices")

    # scale-up saturates at the chassis limit...
    assert pipelined_throughput(capi, MAX_HOST_CARDS) == \
        pipelined_throughput(capi, MAX_HOST_CARDS)
    # ...while scale-out keeps growing and eventually overtakes
    assert crossover is not None and crossover <= 16
    assert pipelined_throughput(udp, 16) > \
        pipelined_throughput(capi, MAX_HOST_CARDS)

    benchmark(lambda: pipelined_throughput(udp, 16))


def test_fig4_partial_reconfiguration_and_shell(benchmark):
    """Shell-role architecture: user logic swaps without touching the
    privileged shell, and partial images reconfigure ~3x faster."""
    node = build_cloudfpga_node()
    device = node.fpgas[0]
    image = Bitstream(
        name="role-kernel",
        footprint=FPGAResources(luts=40_000, ffs=60_000,
                                bram_kb=1_000, dsps=200),
        clock_hz=200e6,
        partial=True,
    )
    full = Bitstream(
        name="full-kernel", footprint=image.footprint,
        clock_hz=200e6, partial=False,
    )
    partial_time = device.reconfiguration_time(image)
    full_time = device.reconfiguration_time(full)

    role = device.load(image)
    print(f"\nfig4: partial reconfig {partial_time * 1e3:.1f} ms vs "
          f"full {full_time * 1e3:.1f} ms; shell static power "
          f"{device.shell.static_watts:.1f} W; role hosts "
          f"{role.loaded.name!r}")
    assert partial_time < full_time / 2
    assert device.shell.supports_network  # shell owns the network

    device.unload(role)
    benchmark(lambda: (device.load(image), device.unload(role)))


def test_fig4_queueing_under_contention(benchmark):
    """DES cross-check: batches queue when devices are oversubscribed;
    doubling the devices roughly halves the drain time."""

    def drain_time(devices: int, batches: int = 64) -> float:
        sim = Simulator()
        pool = sim.resource(devices, "fpgas")
        udp = EthernetLink(gbps=10.0, protocol="udp")

        def one_batch():
            yield pool.request()
            yield sim.timeout(batch_latency(udp))
            pool.release()

        for _ in range(batches):
            sim.process(one_batch())
        return sim.run()

    four = drain_time(4)
    eight = drain_time(8)
    print(f"\nfig4: draining 64 batches: 4 devices {four * 1e3:.1f} ms,"
          f" 8 devices {eight * 1e3:.1f} ms")
    assert 1.7 < four / eight < 2.3

    benchmark(lambda: drain_time(8, batches=16))
