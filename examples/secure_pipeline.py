"""End-to-end data protection in the EVEREST SDK (paper §III-A, §IV).

A pipeline processing confidential medical-grade sensor data:

1. security annotations on the source force DIFT-instrumented
   variants at compile time (TaintHLS-style hardware tracking);
2. at run time, inter-task flow tracking labels every derived object
   and blocks unencrypted egress;
3. the AEAD crypto layer protects the one export that is allowed;
4. a timing-channel attack is injected; the hardware monitors detect
   it and auto-protection reacts (forced DIFT, then rekey on a tag
   mismatch).

Run with:  python examples/secure_pipeline.py
"""

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import (
    SecurityAnnotation,
    Sensitivity,
)
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.errors import SecurityError
from repro.runtime.dataprotection.anomaly import HardwareMonitor
from repro.runtime.dataprotection.crypto import (
    SoftwareAEAD,
    derive_key,
)
from repro.runtime.dataprotection.ift import FlowTracker
from repro.runtime.dataprotection.policy import AutoProtection
from repro.utils.rng import deterministic_rng
from repro.workflow.plan import build_task_graph

KERNELS = """
kernel detrend(X: tensor<256xf32>, B: tensor<256xf32>)
        -> tensor<256xf32> {
  Y = X - B
  return Y
}
kernel classify(X: tensor<256xf32>, W: tensor<256xf32>)
        -> tensor<1xf32> {
  S = sum(sigmoid(X * W))
  return S
}
"""


def main() -> None:
    # -- 1. compile with security annotations --------------------------
    pipeline = Pipeline("vitals")
    vitals = pipeline.source(
        "vitals", TensorType((256,), F32),
        security=SecurityAnnotation(
            sensitivity=Sensitivity.SECRET,
            encrypt_in_transit=True,
        ),
    )
    baseline = pipeline.source("baseline", TensorType((256,), F32))
    weights = pipeline.source("weights", TensorType((256,), F32))
    clean = pipeline.task("detrend", KERNELS, inputs=[vitals, baseline])
    score = pipeline.task("classify", KERNELS,
                          inputs=[clean.output(0), weights])
    pipeline.sink("risk-score", score.output(0))

    app = EverestCompiler(space=DesignSpace.small()).compile(pipeline)
    print("=== compile-time protection ===")
    print(f"sensitive kernels: {sorted(app.sensitive_kernels)}")
    for kernel in app.package.kernels():
        variants = app.package.variants_for(kernel)
        print(f"  {kernel}: {len(variants)} variants, "
              f"all DIFT: {all(v.knobs.dift for v in variants)}")

    # -- 2. runtime flow tracking --------------------------------------
    graph = build_task_graph(app)
    tracker = FlowTracker(graph)
    tracker.taint_source("vitals", "patient")
    tracker.propagate()
    print("\n=== flow tracking ===")
    for name, labels in tracker.audit():
        print(f"  {name}: labels {sorted(labels)}")

    leak_blocked = False
    try:
        tracker.check_egress("detrend.out0", encrypted=False,
                             egress="debug-dump")
    except SecurityError as exc:
        leak_blocked = True
        print(f"  BLOCKED unencrypted export: {exc}")
    assert leak_blocked

    # -- 3. the allowed export goes out encrypted ----------------------
    aead = SoftwareAEAD(key=derive_key(b"site-master", "vitals-export"))
    payload = b"risk-score: 0.82"
    ciphertext = aead.encrypt(payload, b"export-0001")
    assert tracker.check_egress("classify.out0", encrypted=True)
    roundtrip = aead.decrypt(ciphertext, b"export-0001")
    print("\n=== encrypted export ===")
    print(f"  payload {payload!r} -> {len(ciphertext)} bytes "
          f"(AEAD), decrypts OK: {roundtrip == payload}")

    # -- 4. attack detection and auto-protection -----------------------
    print("\n=== attack detection ===")
    monitor = HardwareMonitor(threshold_sigma=4.5, min_training=32)
    protection = AutoProtection()
    rng = deterministic_rng("secure-example")
    for _ in range(128):
        monitor.train("classify.timing",
                      float(rng.normal(50.0, 2.0)))
    monitor.freeze()

    # timing-channel attack: a co-tenant modulates our latency
    detections = 0
    for step in range(20):
        latency = float(rng.normal(50.0, 2.0))
        if step >= 10:
            latency += 35.0  # the attack signature
        anomaly = monitor.observe("classify.timing", latency)
        if anomaly is not None:
            detections += 1
            protection.report_anomaly(anomaly, node="power9-0")
    print(f"  detections: {detections}, DIFT forced: "
          f"{protection.dift_forced}")

    # an exfiltration attempt tampers with a stored ciphertext
    tampered = bytearray(ciphertext)
    tampered[3] ^= 0x40
    try:
        aead.decrypt(bytes(tampered), b"export-0001")
    except SecurityError:
        protection.report("tag-mismatch", "stored export tampered")
        print(f"  tampering detected -> key generation now "
              f"{protection.key_generation}")
    print(f"  incident summary: {protection.summary()}")


if __name__ == "__main__":
    main()
