"""Use case 3 (paper §VI-C): traffic modeling and PTDR routing.

Builds the synthetic city, simulates a day of traffic from the O/D
matrix, trains the speed model on floating-car data, and answers a
risk-aware routing query with Monte Carlo PTDR — showing why the
percentile route can differ from the mean-fastest route, and how the
sample count trades accuracy for compute.

Run with:  python examples/traffic_routing.py
"""

import numpy as np

from repro.apps.traffic import (
    FCDGenerator,
    PTDRRouter,
    SpeedModel,
    TrafficSimulator,
    build_city,
    gravity_demand,
)
from repro.apps.traffic.routing import ptdr_flops
from repro.utils.tables import Table


def main() -> None:
    city = build_city(grid=8)
    print(f"city: {city.num_nodes} intersections, "
          f"{city.num_segments} segments")

    demand = gravity_demand(city, zones=12, seed="vienna")
    simulator = TrafficSimulator(city, demand, increments=3)

    # -- simulate the day, collect FCD, train the model ---------------
    model = SpeedModel(city)
    generator = FCDGenerator(city, seed="fleet")
    total_points = 0
    congestion = {}
    for hour in (3, 8, 12, 17, 21):
        state = simulator.simulate_hour(hour)
        congestion[hour] = state.congestion_index(city)
        points = generator.generate_hour(state, vehicles=120)
        model.train(hour, points)
        total_points += len(points)
    print(f"trained on {total_points} FCD probe points")
    print("congestion index by hour: " + ", ".join(
        f"{hour:02d}h={value:.2f}"
        for hour, value in congestion.items()
    ))
    print()

    # -- risk-aware routing query --------------------------------------
    origin, destination = (0, 0), (7, 7)
    router = PTDRRouter(city, model, percentile=0.9, seed="req")
    choices = router.route(
        origin, destination, depart_hour=8.0,
        k_alternatives=3, samples=500,
    )
    table = Table(
        f"PTDR alternatives {origin} -> {destination}, "
        f"departure 08:00 (500 MC samples)",
        ["rank", "segments", "mean s", "p90 s", "std s",
         "P(<= 12 min)"],
    )
    for rank, choice in enumerate(choices):
        table.add_row(
            rank + 1,
            len(choice.path) - 1,
            round(choice.mean_s),
            round(choice.percentile_s),
            round(choice.std_s, 1),
            round(choice.on_time_probability(720.0), 2),
        )
    table.show()

    by_mean = min(choices, key=lambda c: c.mean_s)
    by_p90 = choices[0]
    if by_mean is not by_p90:
        print("note: the mean-fastest route differs from the "
              "p90-safest route — the risk-aware answer.")
    print()

    # -- accuracy vs compute: the acceleration knob --------------------
    path = by_p90.path
    counts = [50, 200, 1000, 5000]
    errors = router.percentile_convergence(
        path, 8.0, counts, reference_samples=20_000
    )
    table = Table(
        "p90 estimate error vs Monte Carlo samples "
        "(the kernel EVEREST offloads)",
        ["samples", "p90 error s", "MFLOP/request"],
    )
    for count in counts:
        table.add_row(
            count,
            round(errors[count], 2),
            round(ptdr_flops(count, len(path) - 1) / 1e6, 2),
        )
    table.show()
    print("server-side routing at city scale multiplies this by "
          "thousands of concurrent requests — the PTDR kernel is "
          "EVEREST's FPGA target.")


if __name__ == "__main__":
    main()
