"""Use case 1 (paper §VI-A): wind-energy day-ahead forecasting.

End-to-end: generate a synthetic day of weather, produce coarse
ensemble forecasts, downscale them, train an MLP correction on
historical days, commit a day-ahead schedule, and settle the imbalance
— comparing the coarse (15 km) baseline against the downscaled
high-resolution pipeline EVEREST accelerates. Finally the MLP is
exported through the SDK frontend and compiled to an accelerator.

Run with:  python examples/energy_forecast.py
"""

import numpy as np

from repro.apps.weather.downscaling import downscale_field
from repro.apps.weather.ensemble import Ensemble, generate_ensemble
from repro.apps.weather.grid import synth_truth
from repro.apps.weather.market import ImbalanceMarket
from repro.apps.weather.ml import MLP
from repro.apps.weather.wind import default_farm
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.frontend import import_model
from repro.core.hls import HLSOptions, synthesize
from repro.core.ir.passes import (
    CanonicalizePass,
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)

HOURS = 24
MEMBERS = 8
COARSE_KM = 15.0
FINE_KM = 2.5


def forecast_day(farm, day_seed: str, resolution_km: float,
                 downscale: bool):
    """Hourly production forecasts and truths for one day."""
    committed = []
    actual = []
    for hour in range(HOURS):
        truth = synth_truth(size_cells=120, hour=hour, seed=day_seed)
        ensemble = generate_ensemble(
            truth, resolution_km, members=MEMBERS,
            lead_hours=hour + 1, seed=f"{day_seed}-{hour}",
        )
        if downscale:
            members = [
                downscale_field(member, FINE_KM, seed=f"d{index}")
                for index, member in enumerate(ensemble.members)
            ]
            ensemble = Ensemble(hour=ensemble.hour, members=members)
        distribution = farm.production_distribution_mw(ensemble)
        committed.append(float(np.median(distribution)))
        actual.append(farm.production_mw(truth))
    return np.array(committed), np.array(actual)


def main() -> None:
    farm = default_farm()
    market = ImbalanceMarket()
    print(f"farm: {farm.name}, {farm.capacity_mw:.0f} MW nameplate")

    # -- train the ML correction on historical days ------------------
    history_x, history_y = [], []
    for day in range(6):
        committed, actual = forecast_day(
            farm, f"hist{day}", COARSE_KM, downscale=True
        )
        for hour in range(HOURS):
            history_x.append([
                committed[hour],
                hour / 24.0,
                committed[max(0, hour - 1)],
                committed[min(HOURS - 1, hour + 1)],
            ])
            history_y.append(actual[hour])
    model = MLP([4, 16, 1], seed="energy")
    model.fit(
        np.array(history_x), np.array(history_y),
        epochs=150, learning_rate=2e-3,
    )
    print(f"MLP trained on {len(history_x)} historical hours")

    # -- forecast the target day under three configurations ----------
    results = {}
    for label, resolution, downscale in (
        ("coarse 15 km", COARSE_KM, False),
        ("downscaled 2.5 km", COARSE_KM, True),
    ):
        committed, actual = forecast_day(
            farm, "target", resolution, downscale
        )
        if downscale:
            features = np.array([
                [
                    committed[hour],
                    hour / 24.0,
                    committed[max(0, hour - 1)],
                    committed[min(HOURS - 1, hour + 1)],
                ]
                for hour in range(HOURS)
            ])
            corrected = model.forward(features)[:, 0]
            corrected = np.clip(corrected, 0, farm.capacity_mw)
        else:
            corrected = committed
        mae = float(np.mean(np.abs(corrected - actual)))
        cost = market.imbalance_cost(corrected, actual)
        results[label] = (mae, cost)
        print(
            f"  {label:20s} forecast MAE {mae:6.2f} MW   "
            f"imbalance cost {cost:8.0f} EUR/day"
        )

    coarse_cost = results["coarse 15 km"][1]
    fine_cost = results["downscaled 2.5 km"][1]
    if coarse_cost > 0:
        saving = 100.0 * (coarse_cost - fine_cost) / coarse_cost
        print(f"  high-resolution pipeline saves {saving:.0f}% of the "
              f"imbalance cost")

    # -- compile the inference kernel with the SDK -------------------
    spec = model.to_exchange_spec("wind_correction", batch=HOURS)
    imported = import_model(spec)
    module = compile_kernel(imported.dsl_source)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=4))
    manager.add(CanonicalizePass())
    manager.run(module)
    design = synthesize(module, "wind_correction", HLSOptions())
    print()
    print("=== accelerator for the MLP correction (via SDK) ===")
    print(design.report())


if __name__ == "__main__":
    main()
