"""Use case 2 (paper §VI-B): air-quality monitoring of an industrial site.

A Plum'air-style day: calibrate the low-cost sensor ring, run the
24-hour probabilistic forecast under the weather ensemble, apply the
recommended production decisions, and show the compute budget that
motivates FPGA acceleration of the exp-heavy plume kernel.

Run with:  python examples/air_quality.py
"""

import math

from repro.apps.airquality.emissions import default_site
from repro.apps.airquality.forecast import (
    AirQualityForecast,
    ForecastDecision,
)
from repro.apps.airquality.plume import (
    StabilityClass,
    concentration_grid,
    plume_flops,
)
from repro.apps.airquality.sensors import SensorNetwork
from repro.utils.tables import Table


def main() -> None:
    site = default_site()
    print(f"site: {site.name}, {len(site.sources)} stacks, "
          f"midday emission "
          f"{site.total_rate_g_per_s(12):.0f} g/s")

    # -- sensor network calibration -----------------------------------
    def reference_field(x, y):
        _gx, _gy, field = concentration_grid(
            site.sources_at_hour(12), wind_ms=4.0,
            wind_dir_rad=math.pi / 4,
            stability=StabilityClass.C, cells=60,
        )
        # nearest-cell lookup into the reference run
        extent = 10_000.0
        col = min(59, max(0, int((x + extent / 2) / extent * 60)))
        row = min(59, max(0, int((y + extent / 2) / extent * 60)))
        return field[row, col]

    network = SensorNetwork.deploy_ring(count=24, radius_m=2500.0)
    before = network.mean_absolute_error(reference_field)
    network.calibrate(reference_field, samples=64)
    after = network.mean_absolute_error(reference_field)
    print(f"sensor MAE before calibration: {before:6.1f} ug/m3, "
          f"after: {after:6.1f} ug/m3")
    print()

    # -- 24 h probabilistic forecast ----------------------------------
    forecast = AirQualityForecast(site, grid_cells=50)
    day = forecast.forecast_day(members_per_hour=8)

    table = Table(
        "24-hour impact forecast (threshold 350 ug/m3, 10 km zone)",
        ["hour", "P(exceed)", "peak ug/m3", "decision"],
    )
    for assessment in day:
        table.add_row(
            assessment.hour,
            assessment.exceedance_probability,
            round(assessment.peak_concentration),
            assessment.decision.value,
        )
    table.show()

    flagged = [
        a for a in day if a.decision is not ForecastDecision.NORMAL
    ]
    avoided, lost = forecast.apply_decisions(day)
    print(f"hours needing action : {len(flagged)}")
    print(f"mitigation effective : {avoided * 100:.0f}% of flagged "
          f"hours improve")
    print(f"production sacrificed: {lost * 100:.0f}% of the day")
    print()

    # -- the compute budget EVEREST accelerates -----------------------
    members, cells = 8, 50
    per_hour = members * plume_flops(len(site.sources), cells)
    print("=== forecast compute budget ===")
    print(f"one day  : {24 * per_hour / 1e9:.2f} GFLOP "
          f"({members} members x 24 h x {cells}x{cells} receptors)")
    print(f"operational grids run 10x finer and refresh hourly -> "
          f"{24 * per_hour * 100 / 1e9:.0f} GFLOP/day, the exp-heavy "
          f"kernel the SDK offloads to the FPGA")


if __name__ == "__main__":
    main()
