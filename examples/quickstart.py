"""EVEREST SDK quickstart.

The full flow on one kernel: write a tensor-expression kernel in the
DSL, assemble a pipeline with data/security annotations, compile it
into hardware/software variants, inspect the variant package, and run
it adaptively on the simulated POWER9 + FPGA node.

Run with:  python examples/quickstart.py
"""

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import (
    DataAnnotation,
    Locality,
    SecurityAnnotation,
    Sensitivity,
)
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.runtime import Goal, GoalKind, RuntimeExecutor
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.manager import SystemState

KERNEL_SRC = """
# Nonlinear scoring of a sensor frame: exp-heavy streaming kernel,
# the shape of workload FPGA dataflow pipelines excel at.
kernel score(X: tensor<256xf32>, G: tensor<256xf32>,
             B: tensor<256xf32> @sensitive) -> tensor<256xf32> {
  Y = sigmoid(exp(X) * G + B)
  return Y
}
"""


def main() -> None:
    # 1. Describe the application as a pipeline with annotations.
    pipeline = Pipeline("quickstart")
    readings = pipeline.source(
        "readings",
        TensorType((256,), F32),
        annotation=DataAnnotation(
            "readings",
            velocity_bytes_per_s=256 * 4 * 10,
            locality=Locality.EDGE,
        ),
    )
    weights = pipeline.source("weights", TensorType((256,), F32))
    bias = pipeline.source(
        "bias",
        TensorType((256,), F32),
        security=SecurityAnnotation(
            sensitivity=Sensitivity.CONFIDENTIAL,
            encrypt_in_transit=True,
        ),
    )
    task = pipeline.task(
        "score", KERNEL_SRC, inputs=[readings, weights, bias]
    )
    pipeline.sink("scores", task.output(0))

    # 2. Compile: DSL -> unified IR -> variants -> signed package.
    compiler = EverestCompiler(space=DesignSpace.small())
    app = compiler.compile(pipeline)
    print("=== compilation ===")
    print(app.summary())
    print()
    for variant in app.package.variants_for("score"):
        artifact = app.package.artifact_for(variant)
        print(
            f"  {variant.name:45s} "
            f"lat={variant.cost.latency_s * 1e6:9.2f} us  "
            f"energy={variant.cost.energy_j * 1e6:9.2f} uJ  "
            f"artifact={artifact.kind if artifact else '-'}"
        )
    print(f"  package integrity verified: "
          f"{app.package.verify_integrity()}")
    print()

    # 3. Run adaptively; shift the workload halfway through.
    executor = RuntimeExecutor(
        app, goal=Goal(GoalKind.PERFORMANCE)
    )

    def schedule(round_index):
        if round_index < 10:
            return SystemState(), DataFeatures()
        # FPGA taken by a co-tenant: the autotuner must fall back.
        return SystemState(fpga_available=False), DataFeatures()

    report = executor.run(20, schedule)
    print("=== adaptive execution (20 rounds, FPGA lost at round 10) "
          "===")
    timeline = report.selections_timeline("score")
    print(f"  round  0 selection: {timeline[0]}")
    print(f"  round 19 selection: {timeline[-1]}")
    print(f"  variant switches  : {report.switches}")
    print(f"  reconfigurations  : {report.reconfigurations}")
    print(f"  mean round latency: "
          f"{report.mean_latency_s() * 1e6:.2f} us")
    print(f"  total energy      : {report.total_energy_j * 1e3:.3f} mJ")


if __name__ == "__main__":
    main()
