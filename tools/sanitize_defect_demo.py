"""Runnable concurrency defect: the sanitizer must catch it.

Builds the tutorial's updates-race workflow (one producer, two
in-place updaters, one reader — statically RACE001/RACE002), executes
it under a seeded chaos schedule, and sanitizes the trace. Exits 1
when the happens-before checker reports findings (the expected
outcome — CI asserts this script does NOT exit 0) and 0 only if the
race somehow failed to manifest.

Usage: PYTHONPATH=src python tools/sanitize_defect_demo.py [fault-seed]
"""

from __future__ import annotations

import sys

from repro.chaos import ChaosConfig, generate_schedule
from repro.obs import observe, session
from repro.sanitize import sanitize_tracer
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.recovery import ResilientServer
from repro.workflow.worker import Worker


def updates_graph() -> TaskGraph:
    graph = TaskGraph("updates-race")
    graph.add_object(DataObject("seed", size_bytes=64))
    graph.add_task(WorkflowTask(
        "produce", inputs=["seed"], outputs=["acc"], duration_s=0.01,
    ))
    graph.add_task(WorkflowTask("upd_a", updates=["acc"],
                                duration_s=0.01))
    graph.add_task(WorkflowTask("upd_b", updates=["acc"],
                                duration_s=0.01))
    graph.add_task(WorkflowTask(
        "read", inputs=["acc"], outputs=["out"], duration_s=0.01,
    ))
    return graph


def main(argv) -> int:
    fault_seed = int(argv[1]) if len(argv) > 1 else 3
    graph = updates_graph()
    pool = [Worker(f"w{index}", node_name=f"n{index}", cpus=2)
            for index in range(3)]
    schedule = generate_schedule(
        graph, [worker.name for worker in pool], fault_seed,
        ChaosConfig(crashes=1, link_faults=0, reconfig_faults=1,
                    stragglers=1, task_faults=1),
    )
    obs = session(deterministic=True)
    with observe(obs):
        ResilientServer(pool).run(graph, chaos=schedule)
    findings = sanitize_tracer(obs.tracer)
    print(f"sanitize: defect demo (fault-seed {fault_seed})")
    if len(findings):
        print(findings.render_text())
        return 1
    print("  no findings — the race did not manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
