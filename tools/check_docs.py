"""Link checker for the repository's Markdown documentation.

Walks every ``*.md`` file in the repository (skipping build/VCS
directories), extracts inline ``[text](target)`` links, and verifies:

* relative file targets exist on disk;
* ``#anchor`` fragments — bare or attached to a file target — match a
  heading in the (target) document, using GitHub's slug rules
  (lowercase, spaces to hyphens, punctuation dropped);
* absolute paths and bare ``http(s)``/``mailto`` URLs are left alone
  (no network access here).

Exit codes mirror ``repro lint``: 0 — every link resolves; 1 — at
least one broken link (each is printed as ``file:line: problem``).

Usage::

    python tools/check_docs.py [ROOT]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

SKIP_DIRS = {".git", ".ruff_cache", "__pycache__", "node_modules",
             ".pytest_cache", "build", "dist"}

#: inline links, excluding images: [text](target)
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> List[Path]:
    """Every ``*.md`` under ``root``, skipping non-source trees."""
    found = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            found.append(path)
    return found


def heading_slugs(path: Path) -> Set[str]:
    """Anchor slugs of every heading in ``path`` (fences ignored)."""
    slugs: Set[str] = set()
    seen: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(path: Path, root: Path) -> List[str]:
    """Problems for every link in ``path`` that fails to resolve."""
    problems: List[str] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part.startswith("/"):
                continue  # absolute: outside the repo's control
            resolved = (
                path if not file_part
                else (path.parent / file_part).resolve()
            )
            where = f"{path.relative_to(root)}:{lineno}"
            if not resolved.exists():
                problems.append(
                    f"{where}: broken link {target!r} "
                    f"(no such file {file_part!r})"
                )
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_slugs(resolved):
                    problems.append(
                        f"{where}: broken anchor {target!r} "
                        f"(no heading #{anchor} in "
                        f"{resolved.relative_to(root)})"
                    )
    return problems


def main(argv: List[str]) -> int:
    """Check every Markdown file; print problems; return exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent
    )
    files = markdown_files(root)
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    print(
        f"check_docs: {len(files)} files, "
        f"{len(problems)} broken link(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
